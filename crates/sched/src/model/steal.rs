//! The Figure 3 steal/adoption protocol as a checkable state machine.
//!
//! The model mirrors `capsules.rs` **capsule by capsule**: every
//! [`Pc`] variant is one capsule of the real decomposition (same names,
//! same latched registers, same CAM targets), and one [`StealAction::Step`]
//! runs exactly one capsule atomically. That granularity matches the
//! paper's proof structure — capsules with at most one CAM are idempotent,
//! so interleavings *between* persist boundaries are the complete race
//! space — and [`StealAction::Crash`] transitions at every boundary model
//! hard faults at each persist boundary. A dead processor's program
//! counter freezes in place: it *is* the restart pointer (the real engine
//! persists the active capsule handle at every boundary), and the
//! dead-owner local-steal path adopts it verbatim, which reproduces the
//! Lemma A.10 situation exactly (an adopting thief re-running the dead
//! owner's `popBottom/check` capsule observes its own `Taken` with tag
//! `+1` and claims the thread).
//!
//! Scope: two processors, two seeded jobs, no forks (`pushBottom` is
//! exercised against the *real* code by `sim::SimSched`, which drives
//! actual fork-join computations through scripted interleavings).
//!
//! **Injector extension** ([`StealModel::with_injector`]): a third task
//! lives in a one-slot durable injector ring ([`Inj`], mirroring
//! `ppm_pm::service::SlotPhase`), and `Steal` consults it before the
//! deque probe, exactly like `steal_attempt`'s published-slot scan. The
//! claim chain (`service/pull/read → cam → check`), the entry frame's
//! `CLAIMED → RUNNING` CAM with its dead-claimant re-claim arm, and the
//! exactly-once `RUNNING → DONE` completion CAM are each one [`Pc`]
//! capsule; [`StealAction::Rescue`] models the service handle's lease
//! sweep republishing a dead claimant's slot at epoch + 1. The checksum
//! verification and ticket guards of the real capsules are elided: the
//! model's single job is published in the initial state (no torn
//! two-phase submit) and its slot is never reclaimed for reuse.
//!
//! Invariants (TLA+ twins in `specs/tla/FrontierAdoption.tla`):
//!
//! * **NoDoubleExecution** (W2): each task completes at most once, and at
//!   most one live processor is ever committed to a task. At capsule
//!   granularity this is *strict* — replay-after-crash resumes before the
//!   effect, never after, so not even a crash justifies a second
//!   completion.
//! * **NoLostTask** (W1), as a conservation law: every unexecuted task is
//!   always *referenced* — by a `Job` entry above `top`, by a live
//!   processor's latched capsule registers, or by a dead processor's
//!   frozen restart pointer that is still adoptable. A transition that
//!   drops the last reference is the bug, and BFS pins it at minimal
//!   depth. (Checked while at most one crash has occurred; a second
//!   crash mid-adoption degrades to process-level recovery in the real
//!   system and is out of the model's scope.)

use ppm_check::Model;

/// Deque slots per processor (no forks, so 4 is enough headroom for the
/// two seeded jobs plus the clear-above slot).
pub const NSLOTS: usize = 4;
/// Processors in the model: one owner with seeded work, one thief.
pub const NPROCS: usize = 2;
/// Seeded tasks, both initially jobs in processor 0's deque.
pub const NTASKS: usize = 2;

/// An entry value — the four states of Figure 4.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Val {
    /// Nothing here.
    Empty,
    /// The owning thread's (or an adopted thread's) local entry.
    Local,
    /// A stealable job (the task id stands in for the frame handle).
    Job(u8),
    /// A steal in progress: the thief's identity and where its local
    /// entry will materialize.
    Taken {
        /// Thief processor.
        proc: u8,
        /// Slot in the thief's deque (its `bot` at steal time).
        slot: u8,
        /// Tag the thief's slot had at steal time.
        tag: u8,
    },
}

/// A tagged deque entry (`⟨tag, value⟩` of Figure 4).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Entry {
    /// ABA-prevention tag, bumped by every transition of this slot.
    pub tag: u8,
    /// The entry value.
    pub val: Val,
}

impl Entry {
    fn new(tag: u8, val: Val) -> Self {
        Entry { tag, val }
    }
}

/// One processor's WS-deque.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Deque {
    /// The tagged entries.
    pub entries: [Entry; NSLOTS],
    /// Steal end (grows upward past consumed entries).
    pub top: u8,
    /// Owner end (the running thread's local entry lives at `bot`).
    pub bot: u8,
}

/// The injector ring's one slot: the control-word states of
/// `ppm_pm::service::SlotPhase`, with the claim epoch and claimant
/// identity that the real packed word carries. `STAGING` is absent —
/// the model's job is already published (a torn submit is a pm-layer
/// concern, covered by the `service` proptests, not an interleaving).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Inj {
    /// The model runs without an injector (the default configuration).
    Absent,
    /// Published and claimable at `epoch`.
    Published {
        /// Claim epoch (bumped by every rescue).
        epoch: u8,
    },
    /// The claim CAM won: `proc` owns the slot at `epoch`.
    Claimed {
        /// The claimant.
        proc: u8,
        /// Claim epoch.
        epoch: u8,
    },
    /// The entry frame advanced the claim; the job body is running.
    Running {
        /// The claimant.
        proc: u8,
        /// Claim epoch.
        epoch: u8,
    },
    /// The completion CAM won: the job finished exactly once.
    Done {
        /// The completing claimant.
        proc: u8,
        /// Claim epoch at completion.
        epoch: u8,
    },
}

/// What follows a `helpPopTop` interlude (the `then` continuation the
/// real capsules thread through `help_pop_top`). The victim deque is the
/// enclosing help's — the real code always helps on the deque it is
/// about to operate on.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Then {
    /// Enter `popTop/read` with the thief's latched `(bot, tag)`.
    PtRead {
        /// Thief's `bot` at steal entry.
        b: u8,
        /// Tag of the thief's `entry(bot)` at steal entry.
        c: u8,
    },
    /// `popTop/check` after the job-steal CAM.
    CheckJob {
        /// Victim slot the CAM targeted.
        i: u8,
        /// The CAM's intended new entry.
        new: Entry,
        /// The stolen task.
        f: u8,
    },
    /// `popTop/checkLocal` after the local-steal CAM.
    CheckLocal {
        /// Victim slot the CAM targeted.
        i: u8,
        /// The CAM's intended new entry.
        new: Entry,
    },
    /// Give up and try another steal.
    Steal,
}

/// One capsule of the Figure 3 decomposition — the model's program
/// counter, with the capsule's latched (boundary-committed) registers.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Pc {
    /// `sched/popBottom/read` (also the scheduler's findWork entry).
    FindWork,
    /// `sched/popBottom/cam` on deque `d`.
    PbCam {
        /// Deque the popBottom chain was entered on (latched: an adopter
        /// re-runs it against the *dead owner's* deque).
        d: u8,
        /// Latched `bot`.
        b: u8,
        /// Entry read below `bot`.
        old: Entry,
        /// The job's task id.
        f: u8,
    },
    /// `sched/popBottom/check`.
    PbCheck {
        /// Deque the chain runs on.
        d: u8,
        /// Latched `bot`.
        b: u8,
        /// The CAM's intended new entry.
        new: Entry,
        /// The job's task id.
        f: u8,
    },
    /// `sched/steal`: termination check, victim pick, own-bottom read.
    Steal,
    /// `sched/help/read` on deque `v`, then `then`.
    HelpRead {
        /// Deque being helped.
        v: u8,
        /// Continuation after the help.
        then: Then,
    },
    /// `sched/help/camThief`.
    HelpCamThief {
        /// Deque being helped.
        v: u8,
        /// `top` at help-read time.
        t: u8,
        /// Thief named by the `Taken` entry.
        tproc: u8,
        /// Thief slot named by the `Taken` entry.
        tslot: u8,
        /// Tag named by the `Taken` entry.
        itag: u8,
        /// Continuation after the help.
        then: Then,
    },
    /// `sched/help/camTop`.
    HelpCamTop {
        /// Deque being helped.
        v: u8,
        /// `top` value to advance from.
        t: u8,
        /// Continuation after the help.
        then: Then,
    },
    /// `sched/popTop/read` on victim `v`.
    PtRead {
        /// Victim deque.
        v: u8,
        /// Thief's latched `bot`.
        b: u8,
        /// Tag of thief's `entry(bot)`.
        c: u8,
    },
    /// `sched/popTop/cam` (job steal).
    PtCam {
        /// Victim deque.
        v: u8,
        /// Victim slot.
        i: u8,
        /// Expected entry.
        old: Entry,
        /// Intended entry.
        new: Entry,
        /// The stolen task.
        f: u8,
    },
    /// `sched/popTop/check` (job steal).
    PtCheckJob {
        /// Victim deque.
        v: u8,
        /// Victim slot.
        i: u8,
        /// The CAM's intended entry.
        new: Entry,
        /// The stolen task.
        f: u8,
    },
    /// `sched/popTop/clearAboveRead` (local steal, dead owner).
    PtClearAboveRead {
        /// Victim deque.
        v: u8,
        /// Victim slot holding the local.
        i: u8,
        /// The local entry read.
        old: Entry,
        /// Intended `Taken` entry.
        new: Entry,
    },
    /// `sched/popTop/clearAboveWrite`.
    PtClearAboveWrite {
        /// Victim deque.
        v: u8,
        /// Victim slot holding the local.
        i: u8,
        /// The local entry read.
        old: Entry,
        /// Intended `Taken` entry.
        new: Entry,
        /// Tag of the entry above, latched for the clearing write.
        above_tag: u8,
    },
    /// `sched/popTop/camLocal`.
    PtCamLocal {
        /// Victim deque.
        v: u8,
        /// Victim slot holding the local.
        i: u8,
        /// Expected entry.
        old: Entry,
        /// Intended `Taken` entry.
        new: Entry,
    },
    /// `sched/popTop/checkLocal`: on a win, read the dead owner's
    /// restart pointer and adopt it.
    PtCheckLocal {
        /// Victim deque (owned by a dead processor).
        v: u8,
        /// Victim slot the CAM targeted.
        i: u8,
        /// The CAM's intended entry.
        new: Entry,
    },
    /// The thread body: one capsule that commits the task's effect.
    Exec {
        /// The task being executed.
        f: u8,
    },
    /// `service/pull/read`: re-read the injector slot (the scan in
    /// `Steal` was an uncosted peek) and enter the claim CAM.
    InjPullRead,
    /// `service/pull/cam`: the claim CAM. The claimant-distinct payload
    /// keeps racing pullers' CAMs non-identical (§5 exactly-once).
    InjPullCam {
        /// Expected slot word.
        old: Inj,
        /// Intended `CLAIMED` word.
        new: Inj,
    },
    /// `service/pull/check`: won → the slot's entry frame; lost → steal.
    InjPullCheck {
        /// The CAM's intended word.
        new: Inj,
    },
    /// `service/entry`: read the slot and branch — advance our own
    /// claim, resume our own run, or re-claim a dead claimant's slot at
    /// epoch + 1 (the bump fences its stale CAMs).
    InjEntry,
    /// `service/entry/cam`: the `CLAIMED → RUNNING` CAM.
    InjEntryCam {
        /// Expected slot word.
        old: Inj,
        /// Intended `RUNNING` word.
        new: Inj,
    },
    /// `service/entry/check`: won → the job frame; lost to a rescue
    /// (we were declared dead) → back to the steal loop.
    InjEntryCheck {
        /// The CAM's intended word.
        new: Inj,
    },
    /// The service job's body — one capsule standing in for the job
    /// frame (its internal effects are idempotent capsules, elided).
    InjBody,
    /// `service/done`: read the slot; still `RUNNING` → the done CAM.
    InjDoneRead,
    /// `service/done/cam`: the exactly-once `RUNNING → DONE` completion
    /// CAM — the commit point the model counts as the job's resolution.
    InjDoneCam {
        /// Expected slot word.
        old: Inj,
        /// Intended `DONE` word.
        new: Inj,
    },
    /// `service/done/check`: telemetry only (counts the completion in
    /// the real code); ends the thread either way.
    InjDoneCheck,
    /// `sched/clearBottom` after a thread ends.
    ClearBottom,
    /// Saw the done flag in `steal`; this processor is finished.
    Halted,
}

impl Then {
    fn into_pc(self, v: u8) -> Pc {
        match self {
            Then::PtRead { b, c } => Pc::PtRead { v, b, c },
            Then::CheckJob { i, new, f } => Pc::PtCheckJob { v, i, new, f },
            Then::CheckLocal { i, new } => Pc::PtCheckLocal { v, i, new },
            Then::Steal => Pc::Steal,
        }
    }
}

/// The global protocol state.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct StealSt {
    /// Per-processor deques.
    pub deq: [Deque; NPROCS],
    /// Per-processor program counters. A dead processor's pc freezes and
    /// doubles as its persistent restart pointer.
    pub pc: [Pc; NPROCS],
    /// Liveness oracle (`isLive`).
    pub alive: [bool; NPROCS],
    /// Completion count per task — the committed effect.
    pub runs: [u8; NTASKS],
    /// The injector ring's one slot ([`Inj::Absent`] when disabled).
    pub inj: Inj,
    /// Completion count for the injector job — done CAMs won.
    pub inj_runs: u8,
    /// Hard faults injected so far.
    pub crashes: u8,
}

impl StealSt {
    fn done(&self) -> bool {
        self.runs.iter().all(|r| *r >= 1) && matches!(self.inj, Inj::Absent | Inj::Done { .. })
    }
}

/// One transition: run one capsule on a processor, or hard-fault it at
/// the current persist boundary.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StealAction {
    /// Run processor `p`'s current capsule atomically.
    Step(u8),
    /// Hard-fault processor `p` (its pc freezes as the restart pointer).
    Crash(u8),
    /// The service handle's lease sweep republishes the injector slot
    /// at epoch + 1 (`InjectorQueue::rescue`). Enabled while the slot's
    /// claimant is dead (or, under [`StealMutation::RescueCompleted`],
    /// whenever the slot is `DONE`).
    Rescue,
}

/// Deliberate protocol bugs, reintroduced one at a time so the test
/// suite can demonstrate the explorer catches each with a minimal trace.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum StealMutation {
    /// The faithful protocol.
    #[default]
    None,
    /// Drop the Lemma A.10 arm of `popBottom/check`: an adopting thief
    /// whose CAM won no longer recognizes its own `Taken` and abandons
    /// the thread — a lost task.
    DropLemmaA10,
    /// Skip the `isLive` gate on local steals: thieves adopt the local
    /// entry of a *live* owner — the owner and the adopter both run the
    /// thread, a double execution.
    AdoptLiveLocal,
    /// Drop the rescue sweep entirely: a claimant that hard-faults
    /// mid-job leaves the injector slot `CLAIMED`/`RUNNING` forever —
    /// a lost job (no surviving reference can reach it).
    DropRescue,
    /// Drop the rescue sweep's phase guard: a `DONE` slot is
    /// republished as if its claimant had died mid-job, and the
    /// completed job runs — and resolves — a second time.
    RescueCompleted,
}

/// The model: configuration plus the [`Model`] implementation.
#[derive(Clone, Copy, Debug)]
pub struct StealModel {
    /// Maximum hard faults to inject (default 1; the conservation
    /// invariant is checked while `crashes <= 1`).
    pub crash_budget: u8,
    /// Which deliberate bug (if any) to reintroduce.
    pub mutation: StealMutation,
    /// Seed the injector ring with a third, service-submitted job
    /// (default off — the deque-only space keeps its pinned diameter).
    pub injector: bool,
}

impl Default for StealModel {
    fn default() -> Self {
        StealModel {
            crash_budget: 1,
            mutation: StealMutation::None,
            injector: false,
        }
    }
}

impl StealModel {
    /// The faithful protocol with `crash_budget` hard faults.
    pub fn with_crashes(crash_budget: u8) -> Self {
        StealModel {
            crash_budget,
            ..Default::default()
        }
    }

    /// The faithful protocol with the injector ring seeded (the
    /// service-mode pull/claim/rescue protocol joins the race space).
    pub fn with_injector() -> Self {
        StealModel {
            injector: true,
            ..Default::default()
        }
    }

    /// A mutated protocol (for counterexample demonstrations). The
    /// injector mutations imply an injector-enabled model.
    pub fn mutated(mutation: StealMutation) -> Self {
        StealModel {
            crash_budget: 1,
            mutation,
            injector: matches!(
                mutation,
                StealMutation::DropRescue | StealMutation::RescueCompleted
            ),
        }
    }

    /// The rescue sweep's verdict on the current slot: the republished
    /// word, if the sweep would fire.
    fn rescue_target(&self, s: &StealSt) -> Option<Inj> {
        match s.inj {
            Inj::Claimed { proc, epoch } | Inj::Running { proc, epoch }
                if !s.alive[proc as usize] && self.mutation != StealMutation::DropRescue =>
            {
                Some(Inj::Published {
                    epoch: epoch.wrapping_add(1),
                })
            }
            Inj::Done { epoch, .. } if self.mutation == StealMutation::RescueCompleted => {
                Some(Inj::Published {
                    epoch: epoch.wrapping_add(1),
                })
            }
            _ => None,
        }
    }

    /// The W1 conservation law for the injector job: `PUBLISHED` is
    /// claimable by anyone; a claimed/running slot is driven by its
    /// live claimant (a live claimant never abandons a won claim — every
    /// check in the chain re-routes to `Steal` only when the slot word
    /// moved, which requires the claimant to be dead) or recoverable by
    /// the rescue sweep once the claimant dies.
    fn inj_referenced(&self, s: &StealSt) -> bool {
        match s.inj {
            Inj::Absent | Inj::Published { .. } | Inj::Done { .. } => true,
            Inj::Claimed { proc, .. } | Inj::Running { proc, .. } => {
                s.alive[proc as usize] || self.rescue_target(s).is_some()
            }
        }
    }

    /// Does this frozen pc hold task `t` in a latched register (i.e. is
    /// the capsule committed to delivering `t` if re-run)?
    fn pc_owns(pc: &Pc, t: u8) -> bool {
        match pc {
            Pc::PbCam { f, .. }
            | Pc::PbCheck { f, .. }
            | Pc::PtCam { f, .. }
            | Pc::PtCheckJob { f, .. }
            | Pc::Exec { f } => *f == t,
            // The latched handle also rides a help interlude's
            // continuation (popTop/cam jumps to help-then-check).
            Pc::HelpRead {
                then: Then::CheckJob { f, .. },
                ..
            }
            | Pc::HelpCamThief {
                then: Then::CheckJob { f, .. },
                ..
            }
            | Pc::HelpCamTop {
                then: Then::CheckJob { f, .. },
                ..
            } => *f == t,
            _ => false,
        }
    }

    /// If this pc is mid-way through a dead-owner local steal, the owner
    /// whose restart pointer it will adopt.
    fn adoption_target(pc: &Pc) -> Option<u8> {
        match pc {
            Pc::PtClearAboveRead { v, .. }
            | Pc::PtClearAboveWrite { v, .. }
            | Pc::PtCamLocal { v, .. }
            | Pc::PtCheckLocal { v, .. } => Some(*v),
            Pc::HelpRead {
                v,
                then: Then::CheckLocal { .. },
            }
            | Pc::HelpCamThief {
                v,
                then: Then::CheckLocal { .. },
                ..
            }
            | Pc::HelpCamTop {
                v,
                then: Then::CheckLocal { .. },
                ..
            } => Some(*v),
            _ => None,
        }
    }

    /// Whether dead processor `p`'s frozen restart pointer can still be
    /// reached by an adopter: a `Local` at or above its `top` (the
    /// local-steal path takes it), or an `Empty` slot that a pending
    /// `helpPopTop` will convert to `Local` (a `Taken` entry somewhere
    /// names it).
    fn adoptable(s: &StealSt, p: usize) -> bool {
        let d = &s.deq[p];
        ((d.top as usize)..NSLOTS).any(|i| {
            let e = d.entries[i];
            match e.val {
                Val::Local => true,
                Val::Empty => s.deq.iter().any(|q| {
                    ((q.top as usize)..NSLOTS).any(|u| {
                        q.entries[u].val
                            == Val::Taken {
                                proc: p as u8,
                                slot: i as u8,
                                tag: e.tag,
                            }
                    })
                }),
                _ => false,
            }
        })
    }

    /// The W1 conservation law: is unexecuted task `t` still referenced?
    fn referenced(s: &StealSt, t: u8) -> bool {
        // r1: a Job entry at or above top in any deque.
        for d in &s.deq {
            for i in (d.top as usize)..NSLOTS {
                if d.entries[i].val == Val::Job(t) {
                    return true;
                }
            }
        }
        for p in 0..NPROCS {
            if s.alive[p] {
                // r2: a live processor's latched registers carry t.
                if Self::pc_owns(&s.pc[p], t) {
                    return true;
                }
                // r2b: a live processor is adopting a dead owner whose
                // frozen restart pointer carries t.
                if let Some(v) = Self::adoption_target(&s.pc[p]) {
                    if !s.alive[v as usize] && Self::pc_owns(&s.pc[v as usize], t) {
                        return true;
                    }
                }
            } else {
                // r3: a dead processor's frozen restart pointer carries t
                // and is still adoptable.
                if Self::pc_owns(&s.pc[p], t) && Self::adoptable(s, p) {
                    return true;
                }
            }
        }
        false
    }

    /// Runs one capsule on processor `p`. Mirrors `capsules.rs` arm for
    /// arm; `n` suffixes and backoff are elided (they steer timing, not
    /// logical order).
    fn run_capsule(&self, s: &StealSt, p: usize) -> StealSt {
        let mut n = *s;
        let me = p as u8;
        match s.pc[p] {
            Pc::FindWork => {
                let d = &s.deq[p];
                let b = d.bot as usize;
                if b == 0 {
                    n.pc[p] = Pc::Steal;
                } else {
                    let old = d.entries[b - 1];
                    match old.val {
                        Val::Job(f) => {
                            n.pc[p] = Pc::PbCam {
                                d: me,
                                b: b as u8,
                                old,
                                f,
                            }
                        }
                        _ => n.pc[p] = Pc::Steal,
                    }
                }
            }
            Pc::PbCam { d, b, old, f } => {
                let new = Entry::new(old.tag.wrapping_add(1), Val::Local);
                let slot = &mut n.deq[d as usize].entries[b as usize - 1];
                if *slot == old {
                    *slot = new;
                }
                n.pc[p] = Pc::PbCheck { d, b, new, f };
            }
            Pc::PbCheck { d, b, new, f } => {
                let cur = s.deq[d as usize].entries[b as usize - 1];
                if cur == new {
                    n.deq[d as usize].bot = b - 1;
                    n.pc[p] = Pc::Exec { f };
                } else if matches!(cur.val, Val::Taken { .. })
                    && cur.tag == new.tag.wrapping_add(1)
                    && self.mutation != StealMutation::DropLemmaA10
                {
                    // Lemma A.10: our CAM succeeded, the owner died, and
                    // we (the uniquely successful adopting thief) already
                    // turned the local entry into taken.
                    n.pc[p] = Pc::Exec { f };
                } else {
                    n.pc[p] = Pc::Steal;
                }
            }
            Pc::Steal => {
                if s.done() {
                    n.pc[p] = Pc::Halted;
                } else if matches!(s.inj, Inj::Published { .. }) {
                    // steal_attempt consults the injector's published-
                    // slot scan before the deque probe; the scan is an
                    // uncosted peek, so the chain re-reads in pull/read.
                    n.pc[p] = Pc::InjPullRead;
                } else {
                    let v = 1 - me; // two processors: the other one
                    let d = &s.deq[p];
                    let b = d.bot;
                    let c = d.entries[b as usize].tag;
                    n.pc[p] = Pc::HelpRead {
                        v,
                        then: Then::PtRead { b, c },
                    };
                }
            }
            Pc::HelpRead { v, then } => {
                let t = s.deq[v as usize].top;
                let e = s.deq[v as usize].entries[t as usize];
                if let Val::Taken { proc, slot, tag } = e.val {
                    n.pc[p] = Pc::HelpCamThief {
                        v,
                        t,
                        tproc: proc,
                        tslot: slot,
                        itag: tag,
                        then,
                    };
                } else {
                    n.pc[p] = then.into_pc(v);
                }
            }
            Pc::HelpCamThief {
                v,
                t,
                tproc,
                tslot,
                itag,
                then,
            } => {
                let slot = &mut n.deq[tproc as usize].entries[tslot as usize];
                if *slot == Entry::new(itag, Val::Empty) {
                    *slot = Entry::new(itag.wrapping_add(1), Val::Local);
                }
                n.pc[p] = Pc::HelpCamTop { v, t, then };
            }
            Pc::HelpCamTop { v, t, then } => {
                if n.deq[v as usize].top == t {
                    n.deq[v as usize].top = t + 1;
                }
                n.pc[p] = then.into_pc(v);
            }
            Pc::PtRead { v, b, c } => {
                let i = s.deq[v as usize].top;
                let old = s.deq[v as usize].entries[i as usize];
                match old.val {
                    Val::Empty => n.pc[p] = Pc::Steal,
                    Val::Taken { .. } => {
                        n.pc[p] = Pc::HelpRead {
                            v,
                            then: Then::Steal,
                        }
                    }
                    Val::Job(f) => {
                        let new = Entry::new(
                            old.tag.wrapping_add(1),
                            Val::Taken {
                                proc: me,
                                slot: b,
                                tag: c,
                            },
                        );
                        n.pc[p] = Pc::PtCam { v, i, old, new, f };
                    }
                    Val::Local => {
                        let owner_dead = !s.alive[v as usize];
                        if owner_dead || self.mutation == StealMutation::AdoptLiveLocal {
                            // The recheck read (line 52-53) is atomic here
                            // because the whole capsule is one transition.
                            let new = Entry::new(
                                old.tag.wrapping_add(1),
                                Val::Taken {
                                    proc: me,
                                    slot: b,
                                    tag: c,
                                },
                            );
                            n.pc[p] = Pc::PtClearAboveRead { v, i, old, new };
                        } else {
                            n.pc[p] = Pc::Steal;
                        }
                    }
                }
            }
            Pc::PtCam { v, i, old, new, f } => {
                let slot = &mut n.deq[v as usize].entries[i as usize];
                if *slot == old {
                    *slot = new;
                }
                n.pc[p] = Pc::HelpRead {
                    v,
                    then: Then::CheckJob { i, new, f },
                };
            }
            Pc::PtCheckJob { v, i, new, f } => {
                let cur = s.deq[v as usize].entries[i as usize];
                if cur == new {
                    n.pc[p] = Pc::Exec { f };
                } else {
                    n.pc[p] = Pc::Steal;
                }
            }
            Pc::PtClearAboveRead { v, i, old, new } => {
                let above_tag = s.deq[v as usize].entries[i as usize + 1].tag;
                n.pc[p] = Pc::PtClearAboveWrite {
                    v,
                    i,
                    old,
                    new,
                    above_tag,
                };
            }
            Pc::PtClearAboveWrite {
                v,
                i,
                old,
                new,
                above_tag,
            } => {
                n.deq[v as usize].entries[i as usize + 1] =
                    Entry::new(above_tag.wrapping_add(1), Val::Empty);
                n.pc[p] = Pc::PtCamLocal { v, i, old, new };
            }
            Pc::PtCamLocal { v, i, old, new } => {
                let slot = &mut n.deq[v as usize].entries[i as usize];
                if *slot == old {
                    *slot = new;
                }
                n.pc[p] = Pc::HelpRead {
                    v,
                    then: Then::CheckLocal { i, new },
                };
            }
            Pc::PtCheckLocal { v, i, new } => {
                let cur = s.deq[v as usize].entries[i as usize];
                if cur != new {
                    n.pc[p] = Pc::Steal;
                } else {
                    // getActiveCapsule: the dead owner's frozen pc *is*
                    // its restart pointer; adopt it verbatim (in-process
                    // adoption resolves any capsule — Lemma A.10's
                    // situation arises when it is `PbCheck`).
                    n.pc[p] = s.pc[v as usize];
                }
            }
            Pc::Exec { f } => {
                n.runs[f as usize] = n.runs[f as usize].saturating_add(1);
                n.pc[p] = Pc::ClearBottom;
            }
            Pc::InjPullRead => {
                if let Inj::Published { epoch } = s.inj {
                    n.pc[p] = Pc::InjPullCam {
                        old: s.inj,
                        new: Inj::Claimed { proc: me, epoch },
                    };
                } else {
                    n.pc[p] = Pc::Steal;
                }
            }
            Pc::InjPullCam { old, new } => {
                if n.inj == old {
                    n.inj = new;
                }
                n.pc[p] = Pc::InjPullCheck { new };
            }
            Pc::InjPullCheck { new } => {
                n.pc[p] = if s.inj == new {
                    Pc::InjEntry
                } else {
                    Pc::Steal
                };
            }
            Pc::InjEntry => {
                n.pc[p] = match s.inj {
                    // Our own claim: advance to RUNNING, then the job.
                    Inj::Claimed { proc, epoch } if proc == me => Pc::InjEntryCam {
                        old: s.inj,
                        new: Inj::Running { proc: me, epoch },
                    },
                    // We already advanced it and crashed before the
                    // jump: just run the job.
                    Inj::Running { proc, .. } if proc == me => Pc::InjBody,
                    // Adoption: re-claim a dead claimant's slot at
                    // epoch + 1, fencing its stale CAMs. (Unreachable
                    // here — a puller holds no adoptable deque entry —
                    // but mirrored from the entry frame, which any
                    // process with the restart pointer can rehydrate.)
                    Inj::Claimed { proc, epoch } | Inj::Running { proc, epoch }
                        if !s.alive[proc as usize] =>
                    {
                        Pc::InjEntryCam {
                            old: s.inj,
                            new: Inj::Running {
                                proc: me,
                                epoch: epoch.wrapping_add(1),
                            },
                        }
                    }
                    // Someone else legitimately owns (or finished) the
                    // slot: nothing for this thread.
                    _ => Pc::Steal,
                };
            }
            Pc::InjEntryCam { old, new } => {
                if n.inj == old {
                    n.inj = new;
                }
                n.pc[p] = Pc::InjEntryCheck { new };
            }
            Pc::InjEntryCheck { new } => {
                // Losing means a rescue republished the slot out from
                // under us (we were declared dead) — the re-claimed run
                // owns the job now.
                n.pc[p] = if s.inj == new { Pc::InjBody } else { Pc::Steal };
            }
            Pc::InjBody => {
                // The job frame's effects are idempotent capsules; its
                // final continuation is the slot's done frame.
                n.pc[p] = Pc::InjDoneRead;
            }
            Pc::InjDoneRead => {
                n.pc[p] = match s.inj {
                    Inj::Running { proc, epoch } => Pc::InjDoneCam {
                        old: s.inj,
                        new: Inj::Done { proc, epoch },
                    },
                    // DONE already (benign re-run) or republished out
                    // from under us: the re-claimed run completes it.
                    _ => Pc::Steal,
                };
            }
            Pc::InjDoneCam { old, new } => {
                if n.inj == old {
                    n.inj = new;
                    // The winning RUNNING → DONE transition is the
                    // job's exactly-once resolution.
                    n.inj_runs = n.inj_runs.saturating_add(1);
                }
                n.pc[p] = Pc::InjDoneCheck;
            }
            Pc::InjDoneCheck => {
                // Counts and traces in the real code; no protocol state.
                n.pc[p] = Pc::Steal;
            }
            Pc::ClearBottom => {
                let b = s.deq[p].bot as usize;
                let cur = s.deq[p].entries[b];
                n.deq[p].entries[b] = Entry::new(cur.tag.wrapping_add(1), Val::Empty);
                n.pc[p] = Pc::FindWork;
            }
            Pc::Halted => {}
        }
        n
    }
}

impl Model for StealModel {
    type State = StealSt;
    type Action = StealAction;

    fn initial(&self) -> Vec<StealSt> {
        let empty = Entry::new(0, Val::Empty);
        let mut owner = Deque {
            entries: [empty; NSLOTS],
            top: 0,
            bot: 2,
        };
        owner.entries[0] = Entry::new(0, Val::Job(0));
        owner.entries[1] = Entry::new(0, Val::Job(1));
        let thief = Deque {
            entries: [empty; NSLOTS],
            top: 0,
            bot: 0,
        };
        vec![StealSt {
            deq: [owner, thief],
            pc: [Pc::FindWork, Pc::Steal],
            alive: [true; NPROCS],
            runs: [0; NTASKS],
            inj: if self.injector {
                // The two-phase submit already completed: persist-then-
                // publish means a claimable slot is never torn.
                Inj::Published { epoch: 0 }
            } else {
                Inj::Absent
            },
            inj_runs: 0,
            crashes: 0,
        }]
    }

    fn actions(&self, s: &StealSt) -> Vec<StealAction> {
        let mut acts = Vec::new();
        for p in 0..NPROCS {
            if s.alive[p] && s.pc[p] != Pc::Halted {
                acts.push(StealAction::Step(p as u8));
                if s.crashes < self.crash_budget {
                    acts.push(StealAction::Crash(p as u8));
                }
            }
        }
        if self.rescue_target(s).is_some() {
            acts.push(StealAction::Rescue);
        }
        acts
    }

    fn step(&self, s: &StealSt, a: &StealAction) -> StealSt {
        match a {
            StealAction::Step(p) => self.run_capsule(s, *p as usize),
            StealAction::Crash(p) => {
                let mut n = *s;
                n.alive[*p as usize] = false;
                n.crashes += 1;
                n
            }
            StealAction::Rescue => {
                let mut n = *s;
                n.inj = self
                    .rescue_target(s)
                    .expect("Rescue only enabled when the sweep fires");
                n
            }
        }
    }

    fn invariant(&self, s: &StealSt) -> Result<(), String> {
        // NoDoubleExecution (W2), strict at capsule granularity.
        for (t, r) in s.runs.iter().enumerate() {
            if *r > 1 {
                return Err(format!("NoDoubleExecution: task {t} completed {r} times"));
            }
        }
        for t in 0..NTASKS as u8 {
            let live_owners = (0..NPROCS)
                .filter(|&p| s.alive[p] && s.pc[p] == Pc::Exec { f: t })
                .count();
            if live_owners > 1 {
                return Err(format!(
                    "NoDoubleExecution: {live_owners} live processors executing task {t}"
                ));
            }
        }
        if s.inj_runs > 1 {
            return Err(format!(
                "NoDoubleExecution: the service job resolved {} times",
                s.inj_runs
            ));
        }
        // NoLostTask (W1) conservation, in the single-fault regime.
        if s.crashes <= 1 {
            for t in 0..NTASKS as u8 {
                if s.runs[t as usize] == 0 && !Self::referenced(s, t) {
                    return Err(format!("NoLostTask: task {t} is no longer referenced"));
                }
            }
            if s.inj_runs == 0 && !self.inj_referenced(s) {
                return Err("NoLostTask: the service job is no longer referenced".to_string());
            }
        }
        Ok(())
    }

    fn on_terminal(&self, s: &StealSt) -> Result<(), String> {
        // Terminal means every processor halted or died. A halted
        // processor saw the done flag, so a survivor implies completion.
        if (0..NPROCS).any(|p| s.alive[p]) {
            for t in 0..NTASKS {
                if s.runs[t] == 0 {
                    return Err(format!(
                        "NoLostTask: terminated with a live processor but task {t} never ran"
                    ));
                }
            }
            if self.injector && s.inj_runs == 0 {
                return Err(
                    "NoLostTask: terminated with a live processor but the service job never ran"
                        .to_string(),
                );
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppm_check::{Explorer, ExplorerConfig};

    #[test]
    fn faithful_protocol_is_clean_and_exhaustible() {
        // Depth 40 exhausts the whole space (diameter 35 at this
        // configuration): every interleaving with up to one hard fault.
        let report = Explorer::new(ExplorerConfig::depth(40)).run(&StealModel::default());
        assert!(
            report.violation.is_none(),
            "unexpected violation:\n{}",
            report.violation.unwrap().render()
        );
        assert!(!report.truncated, "space should be exhaustible at depth 40");
        assert!(report.states > 800, "explored {} states", report.states);
    }

    #[test]
    fn crash_free_run_terminates_cleanly() {
        let report = Explorer::new(ExplorerConfig::depth(30)).run(&StealModel::with_crashes(0));
        assert!(
            report.violation.is_none(),
            "unexpected violation:\n{}",
            report.violation.unwrap().render()
        );
        assert!(!report.truncated, "crash-free space should be exhaustible");
    }

    #[test]
    fn adopting_a_live_owners_local_double_executes() {
        let report = Explorer::new(ExplorerConfig::depth(20))
            .run(&StealModel::mutated(StealMutation::AdoptLiveLocal));
        let cex = report.violation.expect("mutation must be caught");
        assert!(
            cex.reason.contains("NoDoubleExecution") || cex.reason.contains("NoLostTask"),
            "unexpected reason: {}",
            cex.reason
        );
    }

    #[test]
    fn dropping_lemma_a10_loses_the_thread() {
        let report = Explorer::new(ExplorerConfig::depth(20))
            .run(&StealModel::mutated(StealMutation::DropLemmaA10));
        let cex = report.violation.expect("mutation must be caught");
        assert!(
            cex.reason.contains("NoLostTask"),
            "unexpected reason: {}",
            cex.reason
        );
    }

    #[test]
    fn injector_protocol_is_clean_and_exhaustible() {
        // The service-mode pull/claim/rescue chain joins the race space:
        // every interleaving of two deque tasks plus one injected job,
        // with up to one hard fault and the rescue sweep interleaved at
        // every boundary.
        let report = Explorer::new(ExplorerConfig::depth(60)).run(&StealModel::with_injector());
        assert!(
            report.violation.is_none(),
            "unexpected violation:\n{}",
            report.violation.unwrap().render()
        );
        assert!(!report.truncated, "space should be exhaustible at depth 60");
        assert!(report.states > 1_500, "explored {} states", report.states);
    }

    #[test]
    fn dropping_the_rescue_sweep_loses_the_service_job() {
        let report = Explorer::new(ExplorerConfig::depth(20))
            .run(&StealModel::mutated(StealMutation::DropRescue));
        let cex = report.violation.expect("mutation must be caught");
        assert!(
            cex.reason.contains("NoLostTask"),
            "unexpected reason: {}",
            cex.reason
        );
    }

    #[test]
    fn rescuing_a_completed_slot_double_resolves() {
        let report = Explorer::new(ExplorerConfig::depth(30))
            .run(&StealModel::mutated(StealMutation::RescueCompleted));
        let cex = report.violation.expect("mutation must be caught");
        assert!(
            cex.reason.contains("NoDoubleExecution"),
            "unexpected reason: {}",
            cex.reason
        );
    }
}
