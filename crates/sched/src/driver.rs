//! Running computations on the fault-tolerant scheduler.
//!
//! One OS thread per model processor. Each thread drives the capsule
//! engine: run the active capsule (restarting on soft faults), install the
//! successor, repeat — with `fork` wrapped into the scheduler's
//! `pushBottom` sequence and thread-`End` wrapped into `scheduler()`. A
//! hard fault ends the thread; the processor's deque and restart pointer
//! stay in persistent memory for thieves.
//!
//! Setup follows §6.3: "Each process is initialized with an empty WS-Deque
//! ... One process is assigned the root thread. This process installs the
//! first capsule of this thread, and sets its first entry to local. All
//! other processes install the findWork capsule."
//!
//! ## Crash recovery across process lifetimes
//!
//! [`recover_computation`] extends the paper's hard-fault story to the
//! death of the *whole process*: a machine whose words live in a durable
//! backend is reopened by a fresh process, fresh OS threads re-attach to
//! the persisted WS-deques and restart pointers, and the computation is
//! driven to completion with every effect applied exactly once. See the
//! function docs for what is resumed directly and what is re-derived.

use std::sync::Arc;
use std::time::{Duration, Instant};

use ppm_core::{run_capsule, Comp, Cont, DoneFlag, InstallCtx, Machine, Step};
use ppm_pm::{StatsSnapshot, Word};

use crate::capsules::{Sched, SchedConfig};
use crate::deque::check_invariant;
use crate::entry::{kind_of, pack, EntryKind, EntryVal};

/// How one processor's loop ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcOutcome {
    /// Saw the completion flag and halted.
    Halted,
    /// Hard-faulted.
    Dead,
}

/// The result of running a computation under the scheduler.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Whether the computation's completion flag was set (always true
    /// unless every processor hard-faulted first).
    pub completed: bool,
    /// Per-processor outcomes.
    pub outcomes: Vec<ProcOutcome>,
    /// Machine statistics for the run (total work `W_f`, faults, capsule
    /// counts, max capsule work `C`, ...).
    pub stats: StatsSnapshot,
    /// Wall-clock duration of the parallel section.
    pub elapsed: Duration,
    /// A rendered snapshot of every WS-deque at the end of the run
    /// (compact form: `T` taken, `J` job, `L` local, `.` empty).
    pub deque_dump: Vec<String>,
}

impl RunReport {
    /// Processors that hard-faulted.
    pub fn dead_procs(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| **o == ProcOutcome::Dead)
            .count()
    }
}

/// Runs a fork-join computation to completion on `machine`'s processors.
///
/// Allocates a completion flag, plants the root thread on processor 0, and
/// drives all processors until the flag is set (or everyone is dead).
pub fn run_computation(machine: &Machine, comp: &Comp, cfg: &SchedConfig) -> RunReport {
    let done = DoneFlag::new(machine);
    let root = comp(done.finale());
    run_root_thread(machine, root, done, cfg)
}

/// Runs an explicit root thread (its last capsule must set `done`, e.g. by
/// ending with [`DoneFlag::finale`]'s chain) on a freshly built scheduler.
pub fn run_root_thread(
    machine: &Machine,
    root: Cont,
    done: DoneFlag,
    cfg: &SchedConfig,
) -> RunReport {
    let sched = Sched::new(machine, done, cfg);
    run_root_on(machine, &sched, root, done)
}

/// Runs a root thread on a *prebuilt* scheduler (so callers can inspect or
/// instrument its deques — e.g. the Figure 4 transition experiment).
pub fn run_root_on(machine: &Machine, sched: &Arc<Sched>, root: Cont, done: DoneFlag) -> RunReport {
    // §6.3 initialization. The root processor's first deque entry is local
    // (it is running the root thread) and its restart pointer resolves to
    // the root capsule so the thread survives an immediate hard fault.
    let root_slot = machine.alloc_region(1).start;
    machine.arena().preregister(root_slot, root.clone());
    machine
        .mem()
        .store(machine.proc_meta(0).active, root_slot as Word);
    machine
        .mem()
        .store(sched.deques()[0].entry(0), pack(1, EntryVal::Local));

    let start = Instant::now();
    let outcomes: Vec<ProcOutcome> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..machine.procs())
            .map(|p| {
                let sched = sched.clone();
                let root = root.clone();
                s.spawn(move || {
                    let first: Cont = if p == 0 { root } else { sched.find_work() };
                    proc_loop(machine, &sched, p, first)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("processor thread panicked"))
            .collect()
    });
    let elapsed = start.elapsed();

    // Post-run structural check (quiescent, so exact).
    let mut deque_dump = Vec::with_capacity(sched.deques().len());
    for d in sched.deques() {
        if let Err(e) = check_invariant(machine.mem(), d) {
            panic!("WS-deque invariant violated after run: {e}");
        }
        deque_dump.push(crate::deque::render(machine.mem(), d));
    }
    // Detach the transition observer (if any) so later setup stores by
    // other runs on this machine are not checked.
    machine.mem().set_observer(None);

    RunReport {
        completed: done.is_set(machine.mem()),
        outcomes,
        stats: machine.stats().snapshot(),
        elapsed,
        deque_dump,
    }
}

/// What [`recover_computation`] found and did.
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// Run epoch of the recovering machine (0 for volatile machines).
    pub epoch: u64,
    /// The persisted completion flag was already set: the previous run
    /// finished and nothing was re-driven.
    pub already_complete: bool,
    /// In-flight `job` entries found across the persisted deques.
    pub found_jobs: usize,
    /// `local` entries (threads that were running when the crash hit).
    pub found_locals: usize,
    /// `taken` entries (completed or in-progress steals).
    pub found_taken: usize,
    /// Processors whose persisted restart pointer was non-null.
    pub live_restart_pointers: usize,
    /// The re-driven run's report (`None` when `already_complete`).
    pub run: Option<RunReport>,
}

impl RecoveryReport {
    /// Whether the computation is complete after recovery.
    pub fn completed(&self) -> bool {
        self.already_complete || self.run.as_ref().map(|r| r.completed).unwrap_or(false)
    }

    /// Total in-flight deque entries found at reopen.
    pub fn found_in_flight(&self) -> usize {
        self.found_jobs + self.found_locals + self.found_taken
    }
}

/// Resumes a computation whose machine came back from [`Machine::reopen`]
/// after the previous process died mid-run (the `kill -9` analogue of the
/// paper's all-processors-hard-fault scenario).
///
/// The caller must rebuild the machine-setup sequence of the crashed run
/// deterministically before calling this: the same user
/// [`Machine::alloc_region`] calls in the same order, the same `comp`, and
/// the same `cfg` (deque sizing). Region allocation is deterministic, so
/// every address — markers, completion flag, deques, restart pointers —
/// lines up with the persisted words.
///
/// Recovery then re-attaches fresh OS threads to the persisted scheduler
/// state:
///
/// 1. If the persisted completion flag is set, the previous run finished;
///    nothing is re-driven.
/// 2. Otherwise the persisted deques and restart pointers are *inspected*
///    (the counts are reported) and then scrubbed back to the §6.3 initial
///    state. They cannot be resumed entry-by-entry: a deque `job` entry or
///    restart pointer holds a continuation *handle*, and the closure it
///    denotes was an object of the dead process (the continuation arena is
///    rebuilt per process — see `ppm_core::arena`). Making closures
///    re-materializable from persistent words alone is the open
///    "persistent closure serialization" item in the ROADMAP.
/// 3. The computation re-runs from its root on the persisted memory.
///    Because capsules are idempotent (write-after-read conflict free,
///    with CAM test-and-set for every once-only effect — the §5
///    discipline), effects already applied by the dead run are *not*
///    applied again: a completed task's CAM fails silently, join cells are
///    re-allocated from the replayed pools, and data already computed
///    stays exactly as the dead run left it. Work, not effects, is what
///    replay costs.
///
/// The machine is flushed before this returns, so a second crash during
/// recovery recovers the same way.
pub fn recover_computation(machine: &Machine, comp: &Comp, cfg: &SchedConfig) -> RecoveryReport {
    // Replay the allocation order of `run_computation`: completion flag
    // first, then the scheduler's deques.
    let done = DoneFlag::new(machine);
    // Build the scheduler with the Figure 4 transition checker deferred:
    // the scrub below rewrites stale entries (e.g. taken → empty), which
    // is machine maintenance, not an entry transition. The checker is
    // installed after the scrub if `cfg` asks for it.
    let sched = Sched::new(
        machine,
        done,
        &SchedConfig {
            check_transitions: false,
            ..cfg.clone()
        },
    );

    // Forensics: what did the dead run leave behind?
    let (mut jobs, mut locals, mut taken) = (0usize, 0usize, 0usize);
    for d in sched.deques() {
        for i in 0..d.slots {
            match kind_of(machine.mem().load(d.entry(i))) {
                EntryKind::Job => jobs += 1,
                EntryKind::Local => locals += 1,
                EntryKind::Taken => taken += 1,
                EntryKind::Empty => {}
            }
        }
    }
    let live_restart_pointers = (0..machine.procs())
        .filter(|p| machine.active_handle(*p) != 0)
        .count();

    if done.is_set(machine.mem()) {
        return RecoveryReport {
            epoch: machine.epoch(),
            already_complete: true,
            found_jobs: jobs,
            found_locals: locals,
            found_taken: taken,
            live_restart_pointers,
            run: None,
        };
    }

    // Scrub the scheduler state back to §6.3 initial: all entries empty
    // with tag 0, top = bot = 0, restart pointers and swap slots null.
    for d in sched.deques() {
        for i in 0..d.slots {
            if machine.mem().load(d.entry(i)) != 0 {
                machine.mem().store(d.entry(i), 0);
            }
        }
        machine.mem().store(d.top, 0);
        machine.mem().store(d.bot, 0);
    }
    for p in 0..machine.procs() {
        let meta = machine.proc_meta(p);
        machine.mem().store(meta.active, 0);
        machine.mem().store(meta.slot_a, 0);
        machine.mem().store(meta.slot_b, 0);
    }

    if cfg.check_transitions {
        crate::capsules::install_transition_checker(machine, sched.deques());
    }

    let root = comp(done.finale());
    let run = run_root_on(machine, &sched, root, done);
    machine
        .flush()
        .expect("flushing recovered machine to stable storage");
    RecoveryReport {
        epoch: machine.epoch(),
        already_complete: false,
        found_jobs: jobs,
        found_locals: locals,
        found_taken: taken,
        live_restart_pointers,
        run: Some(run),
    }
}

fn proc_loop(machine: &Machine, sched: &Arc<Sched>, p: usize, first: Cont) -> ProcOutcome {
    let mut ctx = machine.ctx(p);
    let mut install = InstallCtx::new(machine.proc_meta(p));
    let on_end = sched.scheduler_entry();
    let sched_for_fork = sched.clone();
    let fork_wrap = move |handle: Word, cont: Cont| sched_for_fork.push_bottom(handle, cont);

    let mut cur = first;
    loop {
        match run_capsule(
            &mut ctx,
            machine.arena(),
            &mut install,
            &cur,
            Some(&fork_wrap),
            Some(&on_end),
        ) {
            Ok(Step::Next(c)) => cur = c,
            Ok(Step::Done) => return ProcOutcome::Halted,
            Err(_) => return ProcOutcome::Dead,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppm_core::{comp_fork2, comp_step, par_all, Comp};
    use ppm_pm::{FaultConfig, PmConfig, ProcCtx, Region};

    fn write_marker(r: Region, i: usize) -> Comp {
        comp_step("mark", move |ctx: &mut ProcCtx| {
            ctx.pwrite(r.at(i), i as u64 + 1)
        })
    }

    fn machine(p: usize, f: FaultConfig) -> Machine {
        Machine::new(PmConfig::parallel(p, 1 << 21).with_fault(f))
    }

    #[test]
    fn single_proc_runs_flat_computation() {
        let m = machine(1, FaultConfig::none());
        let r = m.alloc_region(64);
        let comp = par_all((0..8).map(|i| write_marker(r, i)).collect());
        let rep = run_computation(&m, &comp, &SchedConfig::with_slots(256));
        assert!(rep.completed);
        assert_eq!(rep.outcomes, vec![ProcOutcome::Halted]);
        for i in 0..8 {
            assert_eq!(m.mem().load(r.at(i)), i as u64 + 1);
        }
    }

    #[test]
    fn two_procs_share_forked_work() {
        let m = machine(2, FaultConfig::none());
        let r = m.alloc_region(64);
        let comp = comp_fork2(write_marker(r, 0), write_marker(r, 1));
        let rep = run_computation(&m, &comp, &SchedConfig::with_slots(256));
        assert!(rep.completed);
        assert_eq!(m.mem().load(r.at(0)), 1);
        assert_eq!(m.mem().load(r.at(1)), 2);
    }

    #[test]
    fn wide_fanout_on_four_procs_all_tasks_run_exactly_once() {
        let m = machine(4, FaultConfig::none());
        let n = 64;
        let r = m.alloc_region(n);
        let comp = par_all((0..n).map(|i| write_marker(r, i)).collect());
        let mut cfg = SchedConfig::with_slots(1024);
        cfg.check_transitions = true;
        let rep = run_computation(&m, &comp, &cfg);
        assert!(rep.completed);
        for i in 0..n {
            assert_eq!(m.mem().load(r.at(i)), i as u64 + 1, "task {i}");
        }
    }

    #[test]
    fn soft_faults_do_not_lose_or_duplicate_work() {
        for seed in 0..5 {
            let m = machine(4, FaultConfig::soft(0.02, seed));
            let n = 48;
            let r = m.alloc_region(n);
            let comp = par_all((0..n).map(|i| write_marker(r, i)).collect());
            let rep = run_computation(&m, &comp, &SchedConfig::with_slots(1024));
            assert!(rep.completed, "seed {seed}");
            assert!(rep.stats.soft_faults > 0, "seed {seed} should see faults");
            for i in 0..n {
                assert_eq!(m.mem().load(r.at(i)), i as u64 + 1, "seed {seed} task {i}");
            }
        }
    }

    #[test]
    fn hard_fault_on_root_proc_is_recovered_by_thieves() {
        // Proc 0 dies early; the root thread must be stolen and finished.
        let m = machine(4, FaultConfig::none().with_scheduled_hard_fault(0, 40));
        let n = 32;
        let r = m.alloc_region(n);
        let comp = par_all((0..n).map(|i| write_marker(r, i)).collect());
        let rep = run_computation(&m, &comp, &SchedConfig::with_slots(1024));
        assert!(rep.completed);
        assert_eq!(rep.dead_procs(), 1);
        assert_eq!(rep.outcomes[0], ProcOutcome::Dead);
        for i in 0..n {
            assert_eq!(m.mem().load(r.at(i)), i as u64 + 1, "task {i}");
        }
    }

    #[test]
    fn all_but_one_proc_dying_still_completes() {
        let m = machine(4, {
            FaultConfig::none()
                .with_scheduled_hard_fault(0, 60)
                .with_scheduled_hard_fault(1, 45)
                .with_scheduled_hard_fault(2, 80)
        });
        let n = 32;
        let r = m.alloc_region(n);
        let comp = par_all((0..n).map(|i| write_marker(r, i)).collect());
        let rep = run_computation(&m, &comp, &SchedConfig::with_slots(1024));
        assert!(rep.completed);
        assert_eq!(rep.dead_procs(), 3);
        for i in 0..n {
            assert_eq!(m.mem().load(r.at(i)), i as u64 + 1, "task {i}");
        }
    }

    #[test]
    fn all_procs_dying_reports_incomplete() {
        let m = machine(2, {
            FaultConfig::none()
                .with_scheduled_hard_fault(0, 10)
                .with_scheduled_hard_fault(1, 10)
        });
        let r = m.alloc_region(64);
        let comp = par_all((0..16).map(|i| write_marker(r, i)).collect());
        let rep = run_computation(&m, &comp, &SchedConfig::with_slots(512));
        assert!(!rep.completed);
        assert_eq!(rep.dead_procs(), 2);
    }
}
