//! Running computations on the fault-tolerant scheduler.
//!
//! One OS thread per model processor. Each thread drives the capsule
//! engine: run the active capsule (restarting on soft faults), install the
//! successor, repeat — with `fork` wrapped into the scheduler's
//! `pushBottom` sequence and thread-`End` wrapped into `scheduler()`. A
//! hard fault ends the thread; the processor's deque and restart pointer
//! stay in persistent memory for thieves.
//!
//! Setup follows §6.3: "Each process is initialized with an empty WS-Deque
//! ... One process is assigned the root thread. This process installs the
//! first capsule of this thread, and sets its first entry to local. All
//! other processes install the findWork capsule."
//!
//! ## Entry points
//!
//! The session object [`crate::Runtime`] is the one public entry point:
//! `Runtime::run_or_recover` (registered persistent computations) and
//! `Runtime::run_or_replay` (legacy closure computations) dispatch to the
//! fresh-run, persistent-resume, checkpoint-resume, or replay-fallback
//! paths in this module and return a unified [`SessionReport`]. (The four
//! deprecated free functions of the pre-session API — `run_computation`,
//! `run_persistent`, `recover_computation`, `recover_persistent` — have
//! been removed; [`run_root_thread`] / [`run_root_on`] remain for callers
//! that instrument a prebuilt scheduler.)
//!
//! ## Crash recovery across process lifetimes
//!
//! Recovery extends the paper's hard-fault story to the death of the
//! *whole process*: a machine whose words live in a durable backend is
//! reopened by a fresh process, and fresh OS threads re-attach to the
//! persisted WS-deques and restart pointers.
//!
//! Two recovery paths exist, differing in what a deque entry's handle
//! *means* to the new process:
//!
//! * **Resume** (for computations built from registered persistent
//!   capsules): every persisted `job` entry and every running thread's
//!   restart pointer is a frame address ([`ppm_pm::frame`]), so the
//!   recovering process rehydrates each one through the machine's
//!   [`ppm_core::CapsuleRegistry`] and re-plants them as jobs on fresh
//!   deques. Only in-flight work is re-driven; recovery cost is bounded
//!   by what was lost, not by total work.
//! * **Replay** (legacy closure computations, and the fallback whenever
//!   the persisted state is not fully rehydratable — see
//!   [`FallbackReason`]): the deques are scrubbed back to the §6.3
//!   initial state and the computation re-runs from its root. Idempotence
//!   (write-after-read conflict freedom plus CAM test-and-set for
//!   once-only effects — the §5 discipline) guarantees effects already
//!   applied by the dead run are not applied again; replay costs work,
//!   never correctness.
//!
//! Either way the machine is flushed before recovery returns, so a second
//! crash during recovery recovers the same way.

use std::sync::Arc;
use std::time::{Duration, Instant};

use ppm_core::persist::FrameDecodeError;
pub use ppm_core::registry::PComp;
use ppm_core::registry::RehydrateError;
use ppm_core::{run_capsule, Comp, Cont, DoneFlag, InstallCtx, Machine, Step, CORE_ID_FINALE};
use ppm_pm::{StatsSnapshot, Word};

use crate::capsules::{Sched, SchedConfig};
use crate::checkpoint::{checkpoint_seeds, CheckpointCtl, CheckpointSummary};
use crate::deque::check_invariant;
use crate::entry::{kind_of, pack, unpack, EntryKind, EntryVal};

/// How one processor's loop ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcOutcome {
    /// Saw the completion flag and halted.
    Halted,
    /// Hard-faulted.
    Dead,
}

/// The result of one parallel section (the inner run of a session).
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Whether the computation's completion flag was set (always true
    /// unless every processor hard-faulted first).
    pub completed: bool,
    /// Per-processor outcomes.
    pub outcomes: Vec<ProcOutcome>,
    /// Machine statistics for the run (total work `W_f`, faults, capsule
    /// counts, max capsule work `C`, ...).
    pub stats: StatsSnapshot,
    /// Wall-clock duration of the parallel section.
    pub elapsed: Duration,
    /// A rendered snapshot of every WS-deque at the end of the run
    /// (compact form: `T` taken, `J` job, `L` local, `.` empty).
    pub deque_dump: Vec<String>,
    /// What the run's checkpointing did (all zeros when the policy is
    /// disabled or the run is legacy-closure).
    pub checkpoints: CheckpointSummary,
}

impl RunReport {
    /// Processors that hard-faulted.
    pub fn dead_procs(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| **o == ProcOutcome::Dead)
            .count()
    }
}

/// How a session re-drove (or first drove) its computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionMode {
    /// A fresh run on a machine with no crashed predecessor.
    FreshRun,
    /// The persisted completion flag was already set; nothing re-ran.
    AlreadyComplete,
    /// Persisted deque entries and restart pointers were rehydrated
    /// through the capsule registry and re-planted: the run resumed from
    /// the crash frontier.
    Resumed,
    /// State was scrubbed and the computation replayed from its root
    /// (legacy closures, or an ambiguous crash window — see
    /// [`SessionReport::fallback_reason`]).
    Replayed,
}

/// Why a recovery could not resume the crash frontier and fell back to
/// replay-from-root. Carries the structured rehydration failure — down to
/// the typed [`FrameDecodeError`] — when decoding is what failed.
#[derive(Debug, Clone, PartialEq)]
pub enum FallbackReason {
    /// No in-flight entries were found; the computation restarts from the
    /// root (it had barely begun, or its frontier died with its thieves).
    NoFrontier,
    /// The computation is built from process-local Rust closures, which
    /// cannot be rehydrated by construction.
    LegacyClosures,
    /// A persisted handle did not rehydrate through the capsule registry.
    Rehydrate {
        /// Which persisted handle failed (deque entry or restart
        /// pointer, with its location).
        what: String,
        /// The rehydration failure, carrying the typed decode error when
        /// a constructor rejected the argument words.
        error: RehydrateError,
    },
    /// A `taken` entry references a thief coordinate outside the machine
    /// (corrupt state).
    InvalidTakenRef {
        /// Victim deque owner.
        victim: usize,
        /// Victim slot index.
        slot: usize,
        /// Referenced thief processor.
        thief: usize,
        /// Referenced thief slot.
        thief_slot: usize,
    },
    /// The crash caught a steal between the victim-entry CAM and the
    /// thief-entry CAM; the stolen thread's handle lived only in the dead
    /// thief's ephemeral closure.
    StealInFlight {
        /// Victim deque owner.
        victim: usize,
        /// Victim slot index.
        slot: usize,
        /// Thief processor.
        thief: usize,
        /// Thief slot the steal was transferring into.
        thief_slot: usize,
    },
    /// A deque held two `local` entries: the crash landed mid-`pushBottom`.
    MidPush {
        /// The deque's owner.
        deque: usize,
    },
}

impl FallbackReason {
    /// The typed frame-argument decode error, when the fallback was a
    /// constructor rejecting a frame's words.
    pub fn decode_error(&self) -> Option<&FrameDecodeError> {
        match self {
            FallbackReason::Rehydrate { error, .. } => error.decode_error(),
            _ => None,
        }
    }
}

impl std::fmt::Display for FallbackReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FallbackReason::NoFrontier => {
                write!(f, "no in-flight entries found; restarting from the root")
            }
            FallbackReason::LegacyClosures => {
                write!(f, "legacy closure computation (no persistent frames)")
            }
            FallbackReason::Rehydrate { what, error } => write!(f, "{what}: {error}"),
            FallbackReason::InvalidTakenRef {
                victim,
                slot,
                thief,
                thief_slot,
            } => write!(
                f,
                "taken entry {slot} of deque {victim} references invalid thief \
                 ({thief}, {thief_slot})"
            ),
            FallbackReason::StealInFlight {
                victim,
                slot,
                thief,
                thief_slot,
            } => write!(
                f,
                "steal of entry {slot} of deque {victim} was in flight (thief {thief} \
                 slot {thief_slot} not yet claimed)"
            ),
            FallbackReason::MidPush { deque } => {
                write!(f, "deque {deque} was mid-pushBottom (two local entries)")
            }
        }
    }
}

/// The unified report of a [`crate::Runtime`] session: what the session
/// found on the machine, how it drove the computation, and the inner
/// run's statistics. Subsumes the pre-session `RunReport`-plus-
/// `RecoveryReport` pair.
#[derive(Debug, Clone)]
pub struct SessionReport {
    /// Durable run epoch of the machine (0 volatile, 1 creating run,
    /// +1 per reopen).
    pub epoch: u64,
    /// How the computation was driven.
    pub mode: SessionMode,
    /// In-flight `job` entries found across the persisted deques (0 on a
    /// fresh run).
    pub found_jobs: usize,
    /// `local` entries (threads that were running when the crash hit).
    pub found_locals: usize,
    /// `taken` entries (completed or in-progress steals).
    pub found_taken: usize,
    /// Processors whose persisted restart pointer was non-null.
    pub live_restart_pointers: usize,
    /// Continuations rehydrated from persistent frames and re-planted as
    /// jobs (0 unless [`SessionMode::Resumed`]); the resumed run executes
    /// only these threads' remaining work plus their joins.
    pub resumed: usize,
    /// Why resume was not possible, when `mode` is
    /// [`SessionMode::Replayed`].
    pub fallback_reason: Option<FallbackReason>,
    /// Present when the crash frontier was unharvestable but the session
    /// resumed from a durable checkpoint record instead of replaying from
    /// the root (`mode` is [`SessionMode::Resumed`]). Replay distance is
    /// bounded by the work done after that checkpoint.
    pub checkpoint_resume: Option<CheckpointResume>,
    /// Present when this session coordinated (or served one shard of) a
    /// multi-process sharded run — see [`crate::cluster`]. Carries the
    /// per-shard outcomes, adoption counts, and which fault domains died.
    pub cluster: Option<crate::cluster::ClusterSummary>,
    /// Summary of the machine's structured event trace over this session
    /// (see [`ppm_obs::Tracer`]): per-kind event counts, ring occupancy,
    /// and whether tracing was enabled at all (`PPM_TRACE_FILE`). Filled
    /// by every `Runtime` and cluster entry point.
    pub trace: Option<ppm_obs::TraceSummary>,
    /// The driven run's report (`None` only when
    /// [`SessionMode::AlreadyComplete`]).
    pub run: Option<RunReport>,
}

/// How a session resumed from an epoch checkpoint (see
/// [`crate::checkpoint`]): which record, how far the dead run had
/// progressed when it was written, and why the crash frontier itself was
/// not resumable.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointResume {
    /// Sequence number of the checkpoint record resumed from.
    pub seq: u64,
    /// Capsules the dead run had completed when the record was written
    /// (replay-distance accounting: the resumed run re-drives everything
    /// after this point).
    pub capsules_at_checkpoint: u64,
    /// Why the crash frontier could not be resumed directly.
    pub crash_frontier: FallbackReason,
}

impl SessionReport {
    pub(crate) fn fresh_run(epoch: u64, run: RunReport) -> Self {
        SessionReport {
            epoch,
            mode: SessionMode::FreshRun,
            found_jobs: 0,
            found_locals: 0,
            found_taken: 0,
            live_restart_pointers: 0,
            resumed: 0,
            fallback_reason: None,
            checkpoint_resume: None,
            cluster: None,
            trace: None,
            run: Some(run),
        }
    }

    /// Whether the computation is complete after this session.
    pub fn completed(&self) -> bool {
        self.mode == SessionMode::AlreadyComplete
            || self.run.as_ref().map(|r| r.completed).unwrap_or(false)
    }

    /// Total frontier entries adopted from dead shards, cluster-wide
    /// (0 for single-process sessions). Same accessor shape as
    /// [`crate::service::JobReport::adopted`], so batch and service
    /// reporting read alike.
    pub fn adopted(&self) -> u64 {
        self.cluster.as_ref().map(|c| c.adopted()).unwrap_or(0)
    }

    /// Total refused adoptions, cluster-wide (0 for single-process
    /// sessions).
    pub fn blocked(&self) -> u64 {
        self.cluster.as_ref().map(|c| c.blocked()).unwrap_or(0)
    }

    /// Per-shard outcome rows, empty for single-process sessions.
    pub fn shard_reports(&self) -> &[crate::cluster::ShardReport] {
        self.cluster
            .as_ref()
            .map(|c| c.shard_reports.as_slice())
            .unwrap_or(&[])
    }

    /// The persisted completion flag was already set when the session
    /// started: the previous run finished and nothing was re-driven.
    pub fn already_complete(&self) -> bool {
        self.mode == SessionMode::AlreadyComplete
    }

    /// Whether this session resumed a crash frontier instead of running
    /// or replaying from the root.
    pub fn resumed_run(&self) -> bool {
        self.mode == SessionMode::Resumed
    }

    /// Total in-flight deque entries found at session start.
    pub fn found_in_flight(&self) -> usize {
        self.found_jobs + self.found_locals + self.found_taken
    }

    /// The inner run's report.
    ///
    /// # Panics
    /// Panics when the session was [`SessionMode::AlreadyComplete`] (no
    /// run happened); check [`SessionReport::run`] first in that case.
    pub fn run_report(&self) -> &RunReport {
        self.run
            .as_ref()
            .expect("session was AlreadyComplete: no run to report")
    }

    /// The inner run's statistics (see [`SessionReport::run_report`] for
    /// the panic condition).
    pub fn stats(&self) -> &StatsSnapshot {
        &self.run_report().stats
    }

    /// The inner run's wall-clock duration (zero when already complete).
    pub fn elapsed(&self) -> Duration {
        self.run
            .as_ref()
            .map(|r| r.elapsed)
            .unwrap_or(Duration::ZERO)
    }

    /// Processors that hard-faulted during the inner run.
    pub fn dead_procs(&self) -> usize {
        self.run.as_ref().map(|r| r.dead_procs()).unwrap_or(0)
    }
}

// ====================================================================
// Fresh runs
// ====================================================================

/// Fresh run of a legacy-closure computation: allocates a completion
/// flag, plants the root thread on processor 0, and drives all processors
/// until the flag is set (or everyone is dead).
pub(crate) fn run_computation_impl(machine: &Machine, comp: &Comp, cfg: &SchedConfig) -> RunReport {
    let done = DoneFlag::new(machine);
    let root = comp(done.finale());
    run_root_thread(machine, root, done, cfg)
}

/// Runs an explicit root thread (its last capsule must set `done`, e.g. by
/// ending with [`DoneFlag::finale`]'s chain) on a freshly built scheduler.
pub fn run_root_thread(
    machine: &Machine,
    root: Cont,
    done: DoneFlag,
    cfg: &SchedConfig,
) -> RunReport {
    let sched = Sched::new(machine, done, cfg);
    run_root_on(machine, &sched, root, done)
}

/// Fresh run of a persistent-capsule computation: the root thread — and
/// every continuation it forks — is denoted by persistent frame
/// addresses, so a crash of the whole process leaves a machine file that
/// a recovering session can *resume* instead of replaying from the root.
/// Checkpoints per `cfg.checkpoint`.
pub(crate) fn run_persistent_impl(
    machine: &Machine,
    pcomp: &PComp,
    cfg: &SchedConfig,
) -> RunReport {
    let done = DoneFlag::new(machine);
    let sched = Sched::new(machine, done, cfg);
    let finale = machine.setup_frame(CORE_ID_FINALE, &[done.addr() as Word]);
    let root_handle = pcomp(machine, finale);
    let ctl = CheckpointCtl::new(machine, sched.clone(), cfg.checkpoint.clone());
    run_root_handle_on(machine, &sched, root_handle, done, &ctl)
}

/// Runs a root thread on a *prebuilt* scheduler (so callers can inspect or
/// instrument its deques — e.g. the Figure 4 transition experiment).
/// Closure roots cannot checkpoint (their continuations are untraceable),
/// so no checkpoint policy applies here.
pub fn run_root_on(machine: &Machine, sched: &Arc<Sched>, root: Cont, done: DoneFlag) -> RunReport {
    // Legacy closure root: park it at a fresh address so the restart
    // pointer resolves (in this process only).
    let root_slot = machine.alloc_region(1).start;
    machine.arena().preregister(root_slot, root.clone());
    let ctl = CheckpointCtl::disabled(machine, sched.clone());
    launch_root(machine, sched, root, root_slot as Word, done, &ctl)
}

/// Runs a frame-denoted root thread on a prebuilt scheduler: the restart
/// pointer of processor 0 is the root *frame address* itself, meaningful
/// to any future process.
fn run_root_handle_on(
    machine: &Machine,
    sched: &Arc<Sched>,
    root_handle: Word,
    done: DoneFlag,
    ctl: &Arc<CheckpointCtl>,
) -> RunReport {
    let root = machine.arena().resolve(root_handle).unwrap_or_else(|| {
        panic!(
            "root frame handle {root_handle} does not rehydrate — the PComp must \
             register its capsule constructors before returning"
        )
    });
    launch_root(machine, sched, root, root_handle, done, ctl)
}

/// §6.3 initialization shared by both root forms: the root processor's
/// first deque entry is local (it is running the root thread) and its
/// restart pointer is `root_handle`, so the thread survives an immediate
/// hard fault; all other processors start at `findWork`.
fn launch_root(
    machine: &Machine,
    sched: &Arc<Sched>,
    root: Cont,
    root_handle: Word,
    done: DoneFlag,
    ctl: &Arc<CheckpointCtl>,
) -> RunReport {
    machine
        .mem()
        .store(machine.proc_meta(0).active, root_handle);
    machine
        .mem()
        .store(sched.deques()[0].entry(0), pack(1, EntryVal::Local));

    let first: Vec<Cont> = (0..machine.procs())
        .map(|p| {
            if p == 0 {
                root.clone()
            } else {
                sched.find_work()
            }
        })
        .collect();
    run_attached(machine, sched, first, done, vec![0; machine.procs()], ctl)
}

/// One processor's seat in a parallel section: which model processor to
/// drive, its first capsule, and its starting pool cursor.
pub(crate) struct ProcSeat {
    /// The model processor index this OS thread embodies.
    pub proc: usize,
    /// First capsule of the thread's driver loop.
    pub first: Cont,
    /// Starting pool-allocation cursor (0 fresh, the persisted watermark
    /// on resume).
    pub cursor: usize,
}

/// The shared parallel section: spawns one OS thread per processor with
/// the given first capsule and pool cursor, joins them, checks the deque
/// invariant, and assembles the report.
fn run_attached(
    machine: &Machine,
    sched: &Arc<Sched>,
    first: Vec<Cont>,
    done: DoneFlag,
    pool_cursors: Vec<usize>,
    ctl: &Arc<CheckpointCtl>,
) -> RunReport {
    let seats = first
        .into_iter()
        .zip(pool_cursors)
        .enumerate()
        .map(|(proc, (first, cursor))| ProcSeat {
            proc,
            first,
            cursor,
        })
        .collect();
    run_attached_seats(machine, sched, seats, done, ctl)
}

/// [`run_attached`] over an explicit seat list — the general form. A
/// single-process session seats every model processor; a cluster worker
/// seats only its own shard's processors (its fault domain) while the
/// sibling processors are driven by other OS processes attached to the
/// same machine file. Only the seated processors' deques are
/// invariant-checked and rendered: remote deques are live in other
/// processes, so reading them here would race their owners.
pub(crate) fn run_attached_seats(
    machine: &Machine,
    sched: &Arc<Sched>,
    seats: Vec<ProcSeat>,
    done: DoneFlag,
    ctl: &Arc<CheckpointCtl>,
) -> RunReport {
    let seated: Vec<usize> = seats.iter().map(|s| s.proc).collect();
    let start = Instant::now();
    let outcomes: Vec<ProcOutcome> = std::thread::scope(|s| {
        let handles: Vec<_> = seats
            .into_iter()
            .map(|seat| {
                let sched = sched.clone();
                let ctl = ctl.clone();
                s.spawn(move || {
                    proc_loop(machine, &sched, seat.proc, seat.first, seat.cursor, &ctl)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("processor thread panicked"))
            .collect()
    });
    let elapsed = start.elapsed();

    // Post-run structural check (quiescent among the seated processors,
    // so exact for their deques).
    let mut deque_dump = Vec::with_capacity(seated.len());
    for p in &seated {
        let d = &sched.deques()[*p];
        if let Err(e) = check_invariant(machine.mem(), d) {
            panic!("WS-deque invariant violated after run: {e}");
        }
        deque_dump.push(crate::deque::render(machine.mem(), d));
    }
    // Detach the transition observer (if any) so later setup stores by
    // other runs on this machine are not checked.
    machine.mem().set_observer(None);

    RunReport {
        completed: done.is_set(machine.mem()),
        outcomes,
        stats: machine.stats().snapshot(),
        elapsed,
        deque_dump,
        checkpoints: ctl.summary(),
    }
}

// ====================================================================
// Recovery
// ====================================================================

/// Entry counts found in the persisted deques, plus live restart pointers.
pub(crate) fn crash_forensics(
    machine: &Machine,
    sched: &Arc<Sched>,
) -> (usize, usize, usize, usize) {
    let (mut jobs, mut locals, mut taken) = (0usize, 0usize, 0usize);
    for d in sched.deques() {
        for i in 0..d.slots {
            match kind_of(machine.mem().load(d.entry(i))) {
                EntryKind::Job => jobs += 1,
                EntryKind::Local => locals += 1,
                EntryKind::Taken => taken += 1,
                EntryKind::Empty => {}
            }
        }
    }
    let live = (0..machine.procs())
        .filter(|p| machine.active_handle(*p) != 0)
        .count();
    (jobs, locals, taken, live)
}

/// Scrubs scheduler state back to the §6.3 initial shape: all entries
/// empty with tag 0, `top = bot = 0`, restart pointers and swap slots
/// null. Pool watermarks are zeroed only when replaying from the root —
/// a resumed run keeps allocating above the dead run's live frames.
pub(crate) fn scrub_scheduler_state(machine: &Machine, sched: &Arc<Sched>, keep_watermarks: bool) {
    for d in sched.deques() {
        for i in 0..d.slots {
            if machine.mem().load(d.entry(i)) != 0 {
                machine.mem().store(d.entry(i), 0);
            }
        }
        machine.mem().store(d.top, 0);
        machine.mem().store(d.bot, 0);
    }
    for p in 0..machine.procs() {
        let meta = machine.proc_meta(p);
        machine.mem().store(meta.active, 0);
        machine.mem().store(meta.slot_a, 0);
        machine.mem().store(meta.slot_b, 0);
        if !keep_watermarks {
            machine.mem().store(meta.watermark, 0);
        }
    }
}

/// Harvests the crash frontier for resume: every persisted `job` entry's
/// handle, plus — for every deque holding a `local` entry — the owning
/// processor's restart pointer. Errors with a structured
/// [`FallbackReason`] if any handle does not rehydrate through the
/// registry or if the crash caught a steal mid-transfer, in which case
/// the caller falls back to root replay.
pub(crate) fn harvest_frontier(
    machine: &Machine,
    sched: &Arc<Sched>,
) -> Result<Vec<Word>, FallbackReason> {
    let mem = machine.mem();
    // Validate through the registry directly, NOT through the arena: the
    // arena would cache each rehydrated capsule under its frame address,
    // and if this harvest later aborts into the replay-from-root path —
    // which resets pool cursors to 0 and reuses those addresses for
    // different frames — the stale cache entries would shadow the
    // replay's own frames. The resumed run re-decodes the (intact,
    // watermark-protected) frames lazily instead.
    let registry = machine.registry();
    let mut seeds = Vec::new();
    for d in sched.deques() {
        let mut locals = 0usize;
        for i in 0..d.slots {
            let word = mem.load(d.entry(i));
            match unpack(word) {
                (_, EntryVal::Empty) => {}
                (_, EntryVal::Job { handle }) => {
                    registry
                        .rehydrate(mem, handle)
                        .map_err(|error| FallbackReason::Rehydrate {
                            what: format!("job entry {i} of deque {}", d.owner),
                            error,
                        })?;
                    seeds.push(handle);
                }
                (_, EntryVal::Local) => locals += 1,
                (_, EntryVal::Taken { proc, slot, tag }) => {
                    // A completed steal's thread is accounted at the thief
                    // side (as a local or later state). A steal caught
                    // between the victim-entry CAM and the thief-entry CAM
                    // holds the thread's handle only in the dead thief's
                    // ephemeral closure — unresumable.
                    if proc >= machine.procs() || slot >= sched.deques()[proc].slots {
                        return Err(FallbackReason::InvalidTakenRef {
                            victim: d.owner,
                            slot: i,
                            thief: proc,
                            thief_slot: slot,
                        });
                    }
                    let thief_word = mem.load(sched.deques()[proc].entry(slot));
                    if thief_word == pack(tag, EntryVal::Empty) {
                        return Err(FallbackReason::StealInFlight {
                            victim: d.owner,
                            slot: i,
                            thief: proc,
                            thief_slot: slot,
                        });
                    }
                }
            }
        }
        match locals {
            0 => {}
            1 => {
                // The thread running on this deque's processor at crash
                // time; its state is the persisted restart pointer.
                let handle = machine.active_handle(d.owner);
                registry
                    .rehydrate(mem, handle)
                    .map_err(|error| FallbackReason::Rehydrate {
                        what: format!(
                            "local entry of deque {} (restart pointer {handle})",
                            d.owner
                        ),
                        error,
                    })?;
                seeds.push(handle);
            }
            _ => return Err(FallbackReason::MidPush { deque: d.owner }),
        }
    }
    Ok(seeds)
}

/// Plants rehydrated frontier handles as `job` entries, round-robin
/// across the (scrubbed) deques, so every processor's ordinary `findWork`
/// picks them up.
pub(crate) fn plant_seeds(machine: &Machine, sched: &Arc<Sched>, seeds: &[Word]) {
    let procs = machine.procs();
    let mut counts = vec![0usize; procs];
    for (i, handle) in seeds.iter().enumerate() {
        let p = i % procs;
        let d = sched.deques()[p];
        machine.mem().store(
            d.entry(counts[p]),
            pack(1, EntryVal::Job { handle: *handle }),
        );
        counts[p] += 1;
    }
    for (p, d) in sched.deques().iter().enumerate() {
        machine.mem().store(d.bot, counts[p] as Word);
        machine.mem().store(d.top, 0);
    }
}

/// Resumes a crashed run of a persistent-capsule computation from a
/// machine that came back from [`Machine::reopen`].
///
/// The caller must rebuild the machine-setup sequence of the crashed run
/// deterministically before/within `pcomp`: the same user
/// [`Machine::alloc_region`] calls in the same order, the same capsule
/// constructors registered under the same ids, and the same `cfg`.
///
/// Recovery then:
///
/// 1. Returns immediately if the persisted completion flag is set.
/// 2. Otherwise harvests the crash frontier — every persisted `job` entry
///    and every running thread's restart pointer — rehydrating each
///    handle through the capsule registry, and re-plants the frontier as
///    jobs on freshly scrubbed deques. Processor pool cursors resume from
///    the persisted watermarks, above the dead run's live frames. The
///    resumed run executes only the threads that were in flight (plus
///    their joins up the spine), so recovery cost is proportional to
///    lost work, not total work.
/// 3. When the crash frontier is *not* fully resumable — a handle that
///    does not rehydrate, or one of the narrow ambiguous windows (a steal
///    mid-transfer, a fork mid-push, a restart pointer parked on a
///    scheduler-internal capsule) — resumes instead from the newest valid
///    **checkpoint record** (see [`crate::checkpoint`]): the record's
///    frontier is planted, pool cursors return to the recorded
///    watermarks, and replay distance is bounded by one checkpoint epoch.
///    [`SessionReport::checkpoint_resume`] carries the record identity
///    and the structured reason the crash frontier was rejected.
/// 4. Falls back to scrub-and-replay from the root only when no valid
///    checkpoint exists either (and then invalidates any stale records,
///    since the replay resets the pool cursors their frontiers live
///    above). [`SessionReport::fallback_reason`] says why, as a
///    structured [`FallbackReason`].
///
/// Either way every effect is applied exactly once: rehydrated capsules
/// are the same idempotent bodies, and replay relies on the §5 CAM
/// discipline. The machine is flushed before this returns.
pub(crate) fn recover_persistent_impl(
    machine: &Machine,
    pcomp: &PComp,
    cfg: &SchedConfig,
) -> SessionReport {
    // Replay the construction order of a fresh persistent run: completion
    // flag, scheduler deques, finale frame, then the computation's own
    // frames (all deterministic, all rewriting identical words).
    let done = DoneFlag::new(machine);
    let sched = Sched::new(
        machine,
        done,
        &SchedConfig {
            check_transitions: false,
            ..cfg.clone()
        },
    );
    let (found_jobs, found_locals, found_taken, live_restart_pointers) =
        crash_forensics(machine, &sched);
    machine
        .obs()
        .tracer()
        .record_with(ppm_obs::TraceKind::Recovery, None, None, || {
            format!(
                "persistent recovery, epoch {}: {found_jobs} jobs, {found_locals} locals, \
                 {found_taken} taken, {live_restart_pointers} live restart pointers",
                machine.epoch()
            )
        });
    let finale = machine.setup_frame(CORE_ID_FINALE, &[done.addr() as Word]);
    let root_handle = pcomp(machine, finale);

    if done.is_set(machine.mem()) {
        return SessionReport {
            epoch: machine.epoch(),
            mode: SessionMode::AlreadyComplete,
            found_jobs,
            found_locals,
            found_taken,
            live_restart_pointers,
            resumed: 0,
            fallback_reason: None,
            checkpoint_resume: None,
            cluster: None,
            trace: None,
            run: None,
        };
    }

    let harvest = harvest_frontier(machine, &sched);
    let mut checkpoint_resume = None;
    let (seeds, fallback_reason) = match harvest {
        Ok(seeds) if !seeds.is_empty() => (seeds, None),
        other => {
            let reason = match other {
                Ok(_) => FallbackReason::NoFrontier,
                Err(r) => r,
            };
            // The crash frontier is unresumable; try the newest durable
            // checkpoint before degrading to replay-from-root.
            match machine
                .latest_checkpoint_record()
                .and_then(|rec| checkpoint_seeds(machine, &rec).map(|s| (rec, s)))
            {
                Some((rec, seeds)) => {
                    // Pool cursors return to the checkpoint's stable
                    // watermarks; the resumed run re-allocates (and
                    // re-drives) only the span after the checkpoint.
                    for (p, wm) in rec.watermarks.iter().enumerate() {
                        machine.mem().store(machine.proc_meta(p).watermark, *wm);
                    }
                    checkpoint_resume = Some(CheckpointResume {
                        seq: rec.seq,
                        capsules_at_checkpoint: rec.capsules,
                        crash_frontier: reason,
                    });
                    (seeds, None)
                }
                None => (Vec::new(), Some(reason)),
            }
        }
    };
    let resume = fallback_reason.is_none();
    if !resume {
        // A root replay resets pool cursors to 0, so any stored
        // checkpoint frontier would dangle above reused words.
        let _ = machine.clear_checkpoint_records();
    }

    scrub_scheduler_state(machine, &sched, resume);
    if cfg.check_transitions {
        crate::capsules::install_transition_checker(machine, sched.deques());
    }

    let ctl = CheckpointCtl::new(machine, sched.clone(), cfg.checkpoint.clone());
    let run = if resume {
        plant_seeds(machine, &sched, &seeds);
        let first: Vec<Cont> = (0..machine.procs()).map(|_| sched.find_work()).collect();
        let cursors: Vec<usize> = (0..machine.procs())
            .map(|p| machine.pool_watermark(p))
            .collect();
        run_attached(machine, &sched, first, done, cursors, &ctl)
    } else {
        run_root_handle_on(machine, &sched, root_handle, done, &ctl)
    };
    machine
        .flush()
        .expect("flushing recovered machine to stable storage");
    SessionReport {
        epoch: machine.epoch(),
        mode: if resume {
            SessionMode::Resumed
        } else {
            SessionMode::Replayed
        },
        found_jobs,
        found_locals,
        found_taken,
        live_restart_pointers,
        resumed: if resume { seeds.len() } else { 0 },
        fallback_reason,
        checkpoint_resume,
        cluster: None,
        trace: None,
        run: Some(run),
    }
}

/// Resumes a *legacy-closure* computation whose machine came back from
/// [`Machine::reopen`] after the previous process died mid-run (the
/// `kill -9` analogue of the paper's all-processors-hard-fault scenario).
///
/// The caller must rebuild the machine-setup sequence of the crashed run
/// deterministically before calling this: the same user
/// [`Machine::alloc_region`] calls in the same order, the same `comp`, and
/// the same `cfg` (deque sizing).
///
/// Because `comp` capsules are process-local Rust closures (not
/// registered persistent frames), the persisted deque entries cannot be
/// rehydrated: they are inspected (the counts are reported), scrubbed,
/// and the computation replays from its root. Capsule idempotence (the §5
/// CAM discipline) makes the replay apply each effect exactly once —
/// work, not effects, is what replay costs. Computations built from
/// registered capsules resume through [`recover_persistent_impl`]'s path
/// instead.
pub(crate) fn recover_computation_impl(
    machine: &Machine,
    comp: &Comp,
    cfg: &SchedConfig,
) -> SessionReport {
    // Replay the allocation order of a fresh closure run: completion flag
    // first, then the scheduler's deques. The Figure 4 transition checker
    // is deferred past the scrub (scrub stores are machine maintenance,
    // not entry transitions).
    let done = DoneFlag::new(machine);
    let sched = Sched::new(
        machine,
        done,
        &SchedConfig {
            check_transitions: false,
            ..cfg.clone()
        },
    );
    let (found_jobs, found_locals, found_taken, live_restart_pointers) =
        crash_forensics(machine, &sched);
    machine
        .obs()
        .tracer()
        .record_with(ppm_obs::TraceKind::Recovery, None, None, || {
            format!(
                "legacy-closure recovery, epoch {}: replay from root \
                 ({found_jobs} jobs, {found_locals} locals found)",
                machine.epoch()
            )
        });

    if done.is_set(machine.mem()) {
        return SessionReport {
            epoch: machine.epoch(),
            mode: SessionMode::AlreadyComplete,
            found_jobs,
            found_locals,
            found_taken,
            live_restart_pointers,
            resumed: 0,
            fallback_reason: None,
            checkpoint_resume: None,
            cluster: None,
            trace: None,
            run: None,
        };
    }

    // Legacy runs write no checkpoints, but a registered run may have on
    // an earlier epoch of this file; the replay resets cursors, so any
    // such records are now stale.
    let _ = machine.clear_checkpoint_records();
    scrub_scheduler_state(machine, &sched, false);
    if cfg.check_transitions {
        crate::capsules::install_transition_checker(machine, sched.deques());
    }

    let root = comp(done.finale());
    let run = run_root_on(machine, &sched, root, done);
    machine
        .flush()
        .expect("flushing recovered machine to stable storage");
    SessionReport {
        epoch: machine.epoch(),
        mode: SessionMode::Replayed,
        found_jobs,
        found_locals,
        found_taken,
        live_restart_pointers,
        resumed: 0,
        fallback_reason: Some(FallbackReason::LegacyClosures),
        checkpoint_resume: None,
        cluster: None,
        trace: None,
        run: Some(run),
    }
}

fn proc_loop(
    machine: &Machine,
    sched: &Arc<Sched>,
    p: usize,
    first: Cont,
    pool_cursor: usize,
    ctl: &Arc<CheckpointCtl>,
) -> ProcOutcome {
    let mut ctx = machine.ctx_with_pool_cursor(p, pool_cursor);
    let mut install = InstallCtx::new(machine.proc_meta(p));
    let on_end = sched.scheduler_entry();
    let sched_for_fork = sched.clone();
    let fork_wrap = move |handle: Word, cont: Cont, cont_handle: Option<Word>| {
        sched_for_fork.push_bottom(handle, cont, cont_handle)
    };

    let mut cur = first;
    let outcome = loop {
        match run_capsule(
            &mut ctx,
            machine.arena(),
            &mut install,
            &cur,
            Some(&fork_wrap),
            Some(&on_end),
        ) {
            Ok(Step::Next(c)) => cur = c,
            Ok(Step::Done) => break ProcOutcome::Halted,
            Err(_) => break ProcOutcome::Dead,
        }
        // Capsule boundary: the committed state is self-consistent here,
        // so this is where checkpoint quiesces park.
        ctl.at_boundary(machine, p, &mut ctx);
    };
    ctl.proc_exit();
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppm_core::{comp_fork2, comp_step, par_all, Comp};
    use ppm_pm::{FaultConfig, PmConfig, ProcCtx, Region};

    fn write_marker(r: Region, i: usize) -> Comp {
        comp_step("mark", move |ctx: &mut ProcCtx| {
            ctx.pwrite(r.at(i), i as u64 + 1)
        })
    }

    fn machine(p: usize, f: FaultConfig) -> Machine {
        Machine::new(PmConfig::parallel(p, 1 << 21).with_fault(f))
    }

    #[test]
    fn single_proc_runs_flat_computation() {
        let m = machine(1, FaultConfig::none());
        let r = m.alloc_region(64);
        let comp = par_all((0..8).map(|i| write_marker(r, i)).collect());
        let rep = run_computation_impl(&m, &comp, &SchedConfig::with_slots(256));
        assert!(rep.completed);
        assert_eq!(rep.outcomes, vec![ProcOutcome::Halted]);
        for i in 0..8 {
            assert_eq!(m.mem().load(r.at(i)), i as u64 + 1);
        }
    }

    #[test]
    fn two_procs_share_forked_work() {
        let m = machine(2, FaultConfig::none());
        let r = m.alloc_region(64);
        let comp = comp_fork2(write_marker(r, 0), write_marker(r, 1));
        let rep = run_computation_impl(&m, &comp, &SchedConfig::with_slots(256));
        assert!(rep.completed);
        assert_eq!(m.mem().load(r.at(0)), 1);
        assert_eq!(m.mem().load(r.at(1)), 2);
    }

    #[test]
    fn wide_fanout_on_four_procs_all_tasks_run_exactly_once() {
        let m = machine(4, FaultConfig::none());
        let n = 64;
        let r = m.alloc_region(n);
        let comp = par_all((0..n).map(|i| write_marker(r, i)).collect());
        let mut cfg = SchedConfig::with_slots(1024);
        cfg.check_transitions = true;
        let rep = run_computation_impl(&m, &comp, &cfg);
        assert!(rep.completed);
        for i in 0..n {
            assert_eq!(m.mem().load(r.at(i)), i as u64 + 1, "task {i}");
        }
    }

    #[test]
    fn soft_faults_do_not_lose_or_duplicate_work() {
        for seed in 0..5 {
            let m = machine(4, FaultConfig::soft(0.02, seed));
            let n = 48;
            let r = m.alloc_region(n);
            let comp = par_all((0..n).map(|i| write_marker(r, i)).collect());
            let rep = run_computation_impl(&m, &comp, &SchedConfig::with_slots(1024));
            assert!(rep.completed, "seed {seed}");
            assert!(rep.stats.soft_faults > 0, "seed {seed} should see faults");
            for i in 0..n {
                assert_eq!(m.mem().load(r.at(i)), i as u64 + 1, "seed {seed} task {i}");
            }
        }
    }

    #[test]
    fn hard_fault_on_root_proc_is_recovered_by_thieves() {
        // Proc 0 dies early; the root thread must be stolen and finished.
        let m = machine(4, FaultConfig::none().with_scheduled_hard_fault(0, 40));
        let n = 32;
        let r = m.alloc_region(n);
        let comp = par_all((0..n).map(|i| write_marker(r, i)).collect());
        let rep = run_computation_impl(&m, &comp, &SchedConfig::with_slots(1024));
        assert!(rep.completed);
        assert_eq!(rep.dead_procs(), 1);
        assert_eq!(rep.outcomes[0], ProcOutcome::Dead);
        for i in 0..n {
            assert_eq!(m.mem().load(r.at(i)), i as u64 + 1, "task {i}");
        }
    }

    #[test]
    fn all_but_one_proc_dying_still_completes() {
        let m = machine(4, {
            FaultConfig::none()
                .with_scheduled_hard_fault(0, 60)
                .with_scheduled_hard_fault(1, 45)
                .with_scheduled_hard_fault(2, 80)
        });
        let n = 32;
        let r = m.alloc_region(n);
        let comp = par_all((0..n).map(|i| write_marker(r, i)).collect());
        let rep = run_computation_impl(&m, &comp, &SchedConfig::with_slots(1024));
        assert!(rep.completed);
        assert_eq!(rep.dead_procs(), 3);
        for i in 0..n {
            assert_eq!(m.mem().load(r.at(i)), i as u64 + 1, "task {i}");
        }
    }

    #[test]
    fn all_procs_dying_reports_incomplete() {
        let m = machine(2, {
            FaultConfig::none()
                .with_scheduled_hard_fault(0, 10)
                .with_scheduled_hard_fault(1, 10)
        });
        let r = m.alloc_region(64);
        let comp = par_all((0..16).map(|i| write_marker(r, i)).collect());
        let rep = run_computation_impl(&m, &comp, &SchedConfig::with_slots(512));
        assert!(!rep.completed);
        assert_eq!(rep.dead_procs(), 2);
    }

    #[test]
    fn fallback_reasons_render_and_expose_decode_errors() {
        let reasons = [
            FallbackReason::NoFrontier,
            FallbackReason::LegacyClosures,
            FallbackReason::StealInFlight {
                victim: 0,
                slot: 3,
                thief: 1,
                thief_slot: 2,
            },
            FallbackReason::InvalidTakenRef {
                victim: 1,
                slot: 0,
                thief: 9,
                thief_slot: 9,
            },
            FallbackReason::MidPush { deque: 2 },
        ];
        for r in &reasons {
            assert!(!r.to_string().is_empty());
            assert!(r.decode_error().is_none());
        }
        let decode = ppm_core::persist::FrameDecodeError {
            capsule: "prefix/up",
            kind: ppm_core::persist::FrameDecodeKind::Arity {
                expected: 12,
                got: 3,
            },
        };
        let r = FallbackReason::Rehydrate {
            what: "job entry 0 of deque 1".into(),
            error: RehydrateError::BadArgs {
                addr: 64,
                capsule_id: 0x100,
                error: decode,
            },
        };
        assert_eq!(r.decode_error().unwrap().capsule, "prefix/up");
        let msg = r.to_string();
        assert!(msg.contains("prefix/up"), "{msg}");
        assert!(msg.contains("job entry 0"), "{msg}");
    }
}
