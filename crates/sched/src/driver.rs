//! Running computations on the fault-tolerant scheduler.
//!
//! One OS thread per model processor. Each thread drives the capsule
//! engine: run the active capsule (restarting on soft faults), install the
//! successor, repeat — with `fork` wrapped into the scheduler's
//! `pushBottom` sequence and thread-`End` wrapped into `scheduler()`. A
//! hard fault ends the thread; the processor's deque and restart pointer
//! stay in persistent memory for thieves.
//!
//! Setup follows §6.3: "Each process is initialized with an empty WS-Deque
//! ... One process is assigned the root thread. This process installs the
//! first capsule of this thread, and sets its first entry to local. All
//! other processes install the findWork capsule."

use std::sync::Arc;
use std::time::{Duration, Instant};

use ppm_core::{run_capsule, Comp, Cont, DoneFlag, InstallCtx, Machine, Step};
use ppm_pm::{StatsSnapshot, Word};

use crate::capsules::{Sched, SchedConfig};
use crate::deque::check_invariant;
use crate::entry::{pack, EntryVal};

/// How one processor's loop ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcOutcome {
    /// Saw the completion flag and halted.
    Halted,
    /// Hard-faulted.
    Dead,
}

/// The result of running a computation under the scheduler.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Whether the computation's completion flag was set (always true
    /// unless every processor hard-faulted first).
    pub completed: bool,
    /// Per-processor outcomes.
    pub outcomes: Vec<ProcOutcome>,
    /// Machine statistics for the run (total work `W_f`, faults, capsule
    /// counts, max capsule work `C`, ...).
    pub stats: StatsSnapshot,
    /// Wall-clock duration of the parallel section.
    pub elapsed: Duration,
    /// A rendered snapshot of every WS-deque at the end of the run
    /// (compact form: `T` taken, `J` job, `L` local, `.` empty).
    pub deque_dump: Vec<String>,
}

impl RunReport {
    /// Processors that hard-faulted.
    pub fn dead_procs(&self) -> usize {
        self.outcomes.iter().filter(|o| **o == ProcOutcome::Dead).count()
    }
}

/// Runs a fork-join computation to completion on `machine`'s processors.
///
/// Allocates a completion flag, plants the root thread on processor 0, and
/// drives all processors until the flag is set (or everyone is dead).
pub fn run_computation(machine: &Machine, comp: &Comp, cfg: &SchedConfig) -> RunReport {
    let done = DoneFlag::new(machine);
    let root = comp(done.finale());
    run_root_thread(machine, root, done, cfg)
}

/// Runs an explicit root thread (its last capsule must set `done`, e.g. by
/// ending with [`DoneFlag::finale`]'s chain) on a freshly built scheduler.
pub fn run_root_thread(machine: &Machine, root: Cont, done: DoneFlag, cfg: &SchedConfig) -> RunReport {
    let sched = Sched::new(machine, done, cfg);
    run_root_on(machine, &sched, root, done)
}

/// Runs a root thread on a *prebuilt* scheduler (so callers can inspect or
/// instrument its deques — e.g. the Figure 4 transition experiment).
pub fn run_root_on(machine: &Machine, sched: &Arc<Sched>, root: Cont, done: DoneFlag) -> RunReport {
    // §6.3 initialization. The root processor's first deque entry is local
    // (it is running the root thread) and its restart pointer resolves to
    // the root capsule so the thread survives an immediate hard fault.
    let root_slot = machine.alloc_region(1).start;
    machine.arena().preregister(root_slot, root.clone());
    machine
        .mem()
        .store(machine.proc_meta(0).active, root_slot as Word);
    machine
        .mem()
        .store(sched.deques()[0].entry(0), pack(1, EntryVal::Local));

    let start = Instant::now();
    let outcomes: Vec<ProcOutcome> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..machine.procs())
            .map(|p| {
                let sched = sched.clone();
                let root = root.clone();
                s.spawn(move || {
                    let first: Cont = if p == 0 { root } else { sched.find_work() };
                    proc_loop(machine, &sched, p, first)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("processor thread panicked")).collect()
    });
    let elapsed = start.elapsed();

    // Post-run structural check (quiescent, so exact).
    let mut deque_dump = Vec::with_capacity(sched.deques().len());
    for d in sched.deques() {
        if let Err(e) = check_invariant(machine.mem(), d) {
            panic!("WS-deque invariant violated after run: {e}");
        }
        deque_dump.push(crate::deque::render(machine.mem(), d));
    }
    // Detach the transition observer (if any) so later setup stores by
    // other runs on this machine are not checked.
    machine.mem().set_observer(None);

    RunReport {
        completed: done.is_set(machine.mem()),
        outcomes,
        stats: machine.stats().snapshot(),
        elapsed,
        deque_dump,
    }
}

fn proc_loop(machine: &Machine, sched: &Arc<Sched>, p: usize, first: Cont) -> ProcOutcome {
    let mut ctx = machine.ctx(p);
    let mut install = InstallCtx::new(machine.proc_meta(p));
    let on_end = sched.scheduler_entry();
    let sched_for_fork = sched.clone();
    let fork_wrap = move |handle: Word, cont: Cont| sched_for_fork.push_bottom(handle, cont);

    let mut cur = first;
    loop {
        match run_capsule(
            &mut ctx,
            machine.arena(),
            &mut install,
            &cur,
            Some(&fork_wrap),
            Some(&on_end),
        ) {
            Ok(Step::Next(c)) => cur = c,
            Ok(Step::Done) => return ProcOutcome::Halted,
            Err(_) => return ProcOutcome::Dead,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppm_core::{comp_fork2, comp_step, par_all, Comp};
    use ppm_pm::{FaultConfig, PmConfig, ProcCtx, Region};

    fn write_marker(r: Region, i: usize) -> Comp {
        comp_step("mark", move |ctx: &mut ProcCtx| ctx.pwrite(r.at(i), i as u64 + 1))
    }

    fn machine(p: usize, f: FaultConfig) -> Machine {
        Machine::new(PmConfig::parallel(p, 1 << 21).with_fault(f))
    }

    #[test]
    fn single_proc_runs_flat_computation() {
        let m = machine(1, FaultConfig::none());
        let r = m.alloc_region(64);
        let comp = par_all((0..8).map(|i| write_marker(r, i)).collect());
        let rep = run_computation(&m, &comp, &SchedConfig::with_slots(256));
        assert!(rep.completed);
        assert_eq!(rep.outcomes, vec![ProcOutcome::Halted]);
        for i in 0..8 {
            assert_eq!(m.mem().load(r.at(i)), i as u64 + 1);
        }
    }

    #[test]
    fn two_procs_share_forked_work() {
        let m = machine(2, FaultConfig::none());
        let r = m.alloc_region(64);
        let comp = comp_fork2(write_marker(r, 0), write_marker(r, 1));
        let rep = run_computation(&m, &comp, &SchedConfig::with_slots(256));
        assert!(rep.completed);
        assert_eq!(m.mem().load(r.at(0)), 1);
        assert_eq!(m.mem().load(r.at(1)), 2);
    }

    #[test]
    fn wide_fanout_on_four_procs_all_tasks_run_exactly_once() {
        let m = machine(4, FaultConfig::none());
        let n = 64;
        let r = m.alloc_region(n);
        let comp = par_all((0..n).map(|i| write_marker(r, i)).collect());
        let mut cfg = SchedConfig::with_slots(1024);
        cfg.check_transitions = true;
        let rep = run_computation(&m, &comp, &cfg);
        assert!(rep.completed);
        for i in 0..n {
            assert_eq!(m.mem().load(r.at(i)), i as u64 + 1, "task {i}");
        }
    }

    #[test]
    fn soft_faults_do_not_lose_or_duplicate_work() {
        for seed in 0..5 {
            let m = machine(4, FaultConfig::soft(0.02, seed));
            let n = 48;
            let r = m.alloc_region(n);
            let comp = par_all((0..n).map(|i| write_marker(r, i)).collect());
            let rep = run_computation(&m, &comp, &SchedConfig::with_slots(1024));
            assert!(rep.completed, "seed {seed}");
            assert!(rep.stats.soft_faults > 0, "seed {seed} should see faults");
            for i in 0..n {
                assert_eq!(m.mem().load(r.at(i)), i as u64 + 1, "seed {seed} task {i}");
            }
        }
    }

    #[test]
    fn hard_fault_on_root_proc_is_recovered_by_thieves() {
        // Proc 0 dies early; the root thread must be stolen and finished.
        let m = machine(4, FaultConfig::none().with_scheduled_hard_fault(0, 40));
        let n = 32;
        let r = m.alloc_region(n);
        let comp = par_all((0..n).map(|i| write_marker(r, i)).collect());
        let rep = run_computation(&m, &comp, &SchedConfig::with_slots(1024));
        assert!(rep.completed);
        assert_eq!(rep.dead_procs(), 1);
        assert_eq!(rep.outcomes[0], ProcOutcome::Dead);
        for i in 0..n {
            assert_eq!(m.mem().load(r.at(i)), i as u64 + 1, "task {i}");
        }
    }

    #[test]
    fn all_but_one_proc_dying_still_completes() {
        let m = machine(4, {
            FaultConfig::none()
                .with_scheduled_hard_fault(0, 60)
                .with_scheduled_hard_fault(1, 45)
                .with_scheduled_hard_fault(2, 80)
        });
        let n = 32;
        let r = m.alloc_region(n);
        let comp = par_all((0..n).map(|i| write_marker(r, i)).collect());
        let rep = run_computation(&m, &comp, &SchedConfig::with_slots(1024));
        assert!(rep.completed);
        assert_eq!(rep.dead_procs(), 3);
        for i in 0..n {
            assert_eq!(m.mem().load(r.at(i)), i as u64 + 1, "task {i}");
        }
    }

    #[test]
    fn all_procs_dying_reports_incomplete() {
        let m = machine(2, {
            FaultConfig::none()
                .with_scheduled_hard_fault(0, 10)
                .with_scheduled_hard_fault(1, 10)
        });
        let r = m.alloc_region(64);
        let comp = par_all((0..16).map(|i| write_marker(r, i)).collect());
        let rep = run_computation(&m, &comp, &SchedConfig::with_slots(512));
        assert!(!rep.completed);
        assert_eq!(rep.dead_procs(), 2);
    }
}
