//! The fault-tolerant work-stealing scheduler of Figure 3, as capsules.
//!
//! Every scheduler operation is decomposed into capsules exactly at the
//! paper's `commit` boundaries, with "all CAM instructions ... in separate
//! capsules" (Figure 3's caption). Locals that cross a boundary are carried
//! in the next capsule's closure, which is how the paper persists them.
//! Each capsule is one of §5's atomically idempotent forms — racy-read,
//! racy-write, or CAM capsules — except `pushBottom`'s conditional push and
//! `clearBottom`, which the paper deliberately keeps as single capsules and
//! proves idempotent via the entry tags (Lemmas A.6, A.12); those two are
//! built with [`capsule_unchecked`].
//!
//! Processor identity is *dynamic*, exactly like Figure 3's `getProcNum()`:
//! a capsule body evaluates `ctx.proc()` when it runs, so a capsule resumed
//! by an adopting thief (after the original processor hard-faulted) pushes
//! to and pops from the *thief's* deque, while in-progress operations keep
//! targeting the deque captured in their closure — the paper's semantics
//! for `states[getProcNum()]` versus a method already executing on a
//! `procState`.
//!
//! ## One deviation from Figure 3 as written (documented in DESIGN.md)
//!
//! In `popBottom`, if the owner hard-faults between the successful CAM
//! (job → local) and the jump to the claimed thread, the local entry is
//! stolen and the adopting thief resumes the check capsule — which then
//! finds the entry `taken` (the thief's own steal) rather than `local`,
//! and Figure 3 as written would return NULL, dropping the thread. Lemma
//! A.10's prose states the intent: the resumed capsule's closure still
//! holds the continuation, "which will then be jumped to". We therefore
//! also jump to the claimed thread when the entry is observed `taken`; only
//! the uniquely-successful adopting thief can observe that state (gated by
//! `popTop`'s `stack[i] == new` check), so the thread still runs exactly
//! once.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use ppm_core::{capsule_unchecked, sched_capsule, Cont, DoneFlag, Machine, Next, ProcMeta};
use ppm_obs::{Counter, Histogram, Obs, TraceKind};
use ppm_pm::{PersistentMemory, Word};

use crate::cluster::ShardDomain;
use crate::deque::{build_deques, DequeAddrs};
use crate::entry::{kind_of, pack, tag_of, unpack, EntryKind, EntryVal, MAX_PROCS};

/// How a spinning processor picks its next steal victim.
///
/// Figure 3 leaves victim selection unspecified ("a randomly selected
/// victim"); these are the standard policies, pluggable per run. All
/// three are ephemeral heuristics — they steer which deque is *probed*,
/// never whether a probe is *correct* — so a capsule re-run drawing a
/// different victim is harmless.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VictimStrategy {
    /// Independent uniform draws (splitmix64 over a per-attempt stream):
    /// the classic randomized work stealing the paper's bounds assume.
    #[default]
    Random,
    /// Cycle through the other processors in index order. Deterministic
    /// probe spacing: no victim is hit twice before every other victim
    /// has been probed once — the simplest contention spreader.
    RoundRobin,
    /// Probe the processor whose deque is currently deepest (an
    /// uncosted ephemeral peek at the other deques' `bot` words): the
    /// idle — least-loaded — thief aims where the most work sits, which
    /// both rebalances fastest and spreads thieves across distinct
    /// deep deques instead of hammering one victim at high P.
    LeastLoaded,
    /// Prefer victims in the thief's own shard (same process — steals
    /// resolve through the shared continuation arena, no frame
    /// rehydration), escalating to sibling shards only when no own-shard
    /// deque shows depth. Meaningful under live-shard stealing
    /// ([`crate::cluster::ShardDomain::set_live_stealing`]); without a
    /// domain every processor is equally local and this degrades to
    /// [`VictimStrategy::LeastLoaded`].
    LocalityFirst,
}

impl VictimStrategy {
    /// Packs the strategy into the top two bits of a seed word. The
    /// sharded cluster header persists exactly one victim-selection seed
    /// word; riding in its top bits lets every attaching worker agree on
    /// the strategy without a machine-file format change.
    pub fn pack_into_seed(self, seed: u64) -> u64 {
        let code = match self {
            VictimStrategy::Random => 0u64,
            VictimStrategy::RoundRobin => 1,
            VictimStrategy::LeastLoaded => 2,
            VictimStrategy::LocalityFirst => 3,
        };
        (seed & !(0b11 << 62)) | (code << 62)
    }

    /// Inverse of [`VictimStrategy::pack_into_seed`] (unknown codes read
    /// as `Random`).
    pub fn unpack_from_seed(seed: u64) -> VictimStrategy {
        match seed >> 62 {
            1 => VictimStrategy::RoundRobin,
            2 => VictimStrategy::LeastLoaded,
            3 => VictimStrategy::LocalityFirst,
            _ => VictimStrategy::Random,
        }
    }

    /// Stable label for per-strategy metrics.
    pub fn name(self) -> &'static str {
        match self {
            VictimStrategy::Random => "random",
            VictimStrategy::RoundRobin => "round_robin",
            VictimStrategy::LeastLoaded => "least_loaded",
            VictimStrategy::LocalityFirst => "locality_first",
        }
    }
}

/// Scheduler configuration.
#[derive(Debug, Clone)]
pub struct SchedConfig {
    /// Deque slots per processor. The WS-deque never deletes entries, so
    /// this must cover the computation's forks-per-processor plus steals
    /// (§6.3: "enough empty entries to complete the computation").
    pub deque_slots: usize,
    /// Seed for deterministic victim selection.
    pub seed: u64,
    /// Victim-selection policy for the steal loop.
    pub victim_strategy: VictimStrategy,
    /// Install a write observer asserting the Figure 4 entry-transition
    /// table on every deque mutation (tests and the E11 experiment).
    pub check_transitions: bool,
    /// Checkpoint cadence for registered persistent runs (see
    /// [`crate::checkpoint`]): periodic quiesced boundaries that flush
    /// dirty pages, write a resume record (durable machines), and reclaim
    /// dead frame-pool words. Defaults to every
    /// [`crate::checkpoint::DEFAULT_CHECKPOINT_CAPSULES`] capsules;
    /// ignored by legacy-closure runs, whose continuations cannot be
    /// traced or re-planted.
    pub checkpoint: crate::checkpoint::CheckpointPolicy,
}

impl Default for SchedConfig {
    fn default() -> Self {
        SchedConfig {
            deque_slots: 1 << 14,
            seed: 0x5EED_CAFE,
            victim_strategy: VictimStrategy::default(),
            check_transitions: false,
            checkpoint: crate::checkpoint::CheckpointPolicy::default(),
        }
    }
}

impl SchedConfig {
    /// Config with a given deque size.
    pub fn with_slots(slots: usize) -> Self {
        SchedConfig {
            deque_slots: slots,
            ..Default::default()
        }
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Shared scheduler state: deque addresses, processor metadata, the
/// continuation arena, and the computation's completion flag.
pub struct Sched {
    p: usize,
    deques: Vec<DequeAddrs>,
    metas: Vec<ProcMeta>,
    arena: Arc<ppm_core::ContArena>,
    mem: Arc<PersistentMemory>,
    registry: Arc<ppm_core::CapsuleRegistry>,
    done: DoneFlag,
    seed: u64,
    /// Per-processor steal-attempt epochs (victim-selection stream state;
    /// ephemeral, affects only which victim is probed next).
    epochs: Vec<AtomicU64>,
    /// Sharded-mode steal domain (see [`crate::cluster`]): restricts
    /// victim selection to this process's own shard plus the shards the
    /// cross-process liveness oracle has declared dead, and hardens the
    /// dead-owner adoption path for remote processors (whose ephemeral
    /// closures died with their process). `None` for ordinary
    /// single-process schedulers — every path below behaves exactly as
    /// before.
    domain: Option<Arc<ShardDomain>>,
    /// The machine's observability handle (steal trace events flow here).
    obs: Arc<Obs>,
    /// Steal attempts entered (registered as `ppm_steal_attempts_total`).
    steal_attempts: Counter,
    /// Steals that won their CAM (registered as `ppm_steals_total`).
    steals: Counter,
    /// Time from entering the steal loop to winning a steal, µs
    /// (registered as `ppm_steal_latency_us`).
    steal_latency: Histogram,
    /// The same latency, labeled by the active victim-selection policy
    /// (registered as `ppm_steal_latency_by_strategy_us`), so runs
    /// comparing strategies can read each policy's curve from one scrape.
    steal_latency_by_strategy: Histogram,
    /// Per-processor µs timestamp of the current steal-loop entry
    /// (0 = not in the loop). Ephemeral: only feeds the latency metric.
    steal_since: Vec<AtomicU64>,
    /// Victim-selection policy.
    strategy: VictimStrategy,
    /// Per-processor round-robin cursors (ephemeral probe-stream state).
    rr: Vec<AtomicU64>,
    /// Per-processor consecutive failed `popTop` CAMs since the last won
    /// steal or uncontended probe. Ephemeral: drives only the backoff
    /// window, never correctness.
    contention: Vec<AtomicU64>,
    /// Backoff sleeps actually applied, µs (registered as
    /// `ppm_steal_backoff_us`; p99 surfaces as
    /// `ppm_steal_backoff_p99_us`).
    steal_backoff: Histogram,
    /// Service-mode injector queue (see [`crate::service`]): an external
    /// durable work source the steal loop consults before probing victim
    /// deques. `None` for batch runs — the steal loop is unchanged.
    injector: std::sync::OnceLock<Arc<crate::service::InjectorQueue>>,
}

/// Longest single backoff sleep, µs. Small enough that a saturated
/// spinner still polls the done flag promptly; large enough that a
/// contended `popTop` CAM stops being re-fired back-to-back.
const BACKOFF_CAP_US: u64 = 64;

impl Sched {
    /// Builds scheduler state on a machine: carves the deques and captures
    /// the shared handles.
    pub fn new(machine: &Machine, done: DoneFlag, cfg: &SchedConfig) -> Arc<Self> {
        Self::new_inner(machine, done, cfg, None)
    }

    /// [`Sched::new`] for one shard of a multi-process cluster: victim
    /// selection spans only `domain`'s own processors until the liveness
    /// oracle marks sibling shards dead and adoptable.
    pub fn new_sharded(
        machine: &Machine,
        done: DoneFlag,
        cfg: &SchedConfig,
        domain: Arc<ShardDomain>,
    ) -> Arc<Self> {
        assert_eq!(
            domain.map().procs(),
            machine.procs(),
            "shard map must partition exactly the machine's processors"
        );
        Self::new_inner(machine, done, cfg, Some(domain))
    }

    fn new_inner(
        machine: &Machine,
        done: DoneFlag,
        cfg: &SchedConfig,
        domain: Option<Arc<ShardDomain>>,
    ) -> Arc<Self> {
        let p = machine.procs();
        assert!((1..=MAX_PROCS).contains(&p), "P must be in 1..={MAX_PROCS}");
        assert!(
            cfg.deque_slots < crate::entry::MAX_SLOTS,
            "deque_slots exceeds taken-payload capacity"
        );
        let deques = build_deques(machine, cfg.deque_slots);
        if cfg.check_transitions {
            install_transition_checker(machine, &deques);
        }
        let obs = machine.obs().clone();
        let reg = obs.registry();
        let steal_attempts = reg.counter("ppm_steal_attempts_total", "steal attempts entered");
        let steals = reg.counter("ppm_steals_total", "steals that won their CAM");
        let steal_latency = reg.histogram(
            "ppm_steal_latency_us",
            "time from entering the steal loop to winning a steal (microseconds)",
        );
        let steal_latency_by_strategy = reg.histogram_with(
            "ppm_steal_latency_by_strategy_us",
            "steal-loop-entry-to-win latency per victim-selection policy (microseconds)",
            &[("strategy", cfg.victim_strategy.name())],
        );
        let steal_backoff = reg.histogram(
            "ppm_steal_backoff_us",
            "contention backoff sleeps applied before steal attempts (microseconds)",
        );
        {
            let h = steal_backoff.clone();
            reg.gauge_fn(
                "ppm_steal_backoff_p99_us",
                "99th-percentile contention backoff sleep (microseconds)",
                &[],
                move || h.quantile(0.99).unwrap_or(0) as f64,
            );
        }
        if let Some(d) = &domain {
            d.register_into(reg);
        }
        Arc::new(Sched {
            p,
            metas: (0..p).map(|i| machine.proc_meta(i)).collect(),
            arena: machine.arena().clone(),
            mem: machine.mem().clone(),
            registry: machine.registry().clone(),
            done,
            seed: cfg.seed,
            epochs: (0..p).map(|_| AtomicU64::new(0)).collect(),
            domain,
            deques,
            obs,
            steal_attempts,
            steals,
            steal_latency,
            steal_latency_by_strategy,
            steal_since: (0..p).map(|_| AtomicU64::new(0)).collect(),
            strategy: cfg.victim_strategy,
            rr: (0..p).map(|_| AtomicU64::new(0)).collect(),
            contention: (0..p).map(|_| AtomicU64::new(0)).collect(),
            steal_backoff,
            injector: std::sync::OnceLock::new(),
        })
    }

    /// Attaches a service-mode injector queue. The steal loop consults it
    /// (before probing victim deques) from the next attempt on; at most
    /// one queue per scheduler, installed during session construction.
    pub(crate) fn set_injector(&self, queue: Arc<crate::service::InjectorQueue>) {
        self.injector
            .set(queue)
            .expect("injector queue installed twice");
    }

    /// The installed injector queue, if this is a service-mode scheduler.
    pub(crate) fn injector(&self) -> Option<&Arc<crate::service::InjectorQueue>> {
        self.injector.get()
    }

    /// The persistent word store this scheduler drives.
    pub(crate) fn mem(&self) -> &Arc<PersistentMemory> {
        &self.mem
    }

    /// Marks `me` as inside the steal loop (first attempt only), so a
    /// later win can report the loop-entry-to-steal latency.
    fn note_steal_enter(&self, me: usize) {
        self.steal_attempts.inc();
        if self.steal_since[me].load(Ordering::Relaxed) == 0 {
            self.steal_since[me].store(self.obs.tracer().now_us().max(1), Ordering::Relaxed);
        }
    }

    /// Reports a won steal: latency histogram, counter, sampled trace
    /// event. `what` distinguishes job steals from dead-owner local
    /// adoption in the trace.
    fn note_steal_win(&self, me: usize, victim: usize, what: &'static str) {
        self.steals.inc();
        self.note_calm(me);
        let since = self.steal_since[me].swap(0, Ordering::Relaxed);
        if since != 0 {
            let lat = self.obs.tracer().now_us().saturating_sub(since);
            self.steal_latency.observe(lat);
            self.steal_latency_by_strategy.observe(lat);
        }
        self.obs
            .tracer()
            .record_with(TraceKind::Steal, None, Some(me as u32), || {
                format!("{what} from proc {victim}")
            });
    }

    /// Reports a cross-shard adoption of a dead sibling's frontier entry
    /// (always traced — these are the recovery-timeline events).
    fn note_adoption_event(&self, me: usize, owner: usize, what: &'static str) {
        let shard = self.domain.as_ref().map(|d| d.shard_of(owner) as u32);
        self.obs
            .tracer()
            .record_with(TraceKind::Adoption, shard, Some(me as u32), || {
                format!("{what} entry of dead proc {owner}")
            });
    }

    /// The sharded-mode steal domain, if this scheduler drives one shard
    /// of a cluster.
    pub fn domain(&self) -> Option<&Arc<ShardDomain>> {
        self.domain.as_ref()
    }

    /// The deque addresses (read-only; used by the driver and tests).
    pub fn deques(&self) -> &[DequeAddrs] {
        &self.deques
    }

    /// The completion flag.
    pub fn done(&self) -> DoneFlag {
        self.done
    }

    fn d(&self, p: usize) -> DequeAddrs {
        self.deques[p]
    }

    fn pick_victim(&self, thief: usize, n: u64) -> Option<usize> {
        let r = match self.strategy {
            VictimStrategy::Random => splitmix64(self.seed ^ ((thief as u64) << 40) ^ n),
            // A per-processor cursor: candidate index advances by one per
            // probe, cycling every other processor before repeating.
            VictimStrategy::RoundRobin => self.rr[thief].fetch_add(1, Ordering::Relaxed),
            VictimStrategy::LeastLoaded => {
                if let Some(v) = self.deepest_victim(thief, false) {
                    return Some(v);
                }
                // No candidate showed any depth (or sharded candidates are
                // all remote): fall back to rotation so probes still cover
                // everyone.
                self.rr[thief].fetch_add(1, Ordering::Relaxed)
            }
            VictimStrategy::LocalityFirst => {
                // Own-shard work first: shared-arena steals, no frame
                // rehydration. Only when the home shard shows no depth
                // does the rotation fall through to the domain walk,
                // which spreads probes across sibling shards.
                if let Some(v) = self.deepest_victim(thief, true) {
                    return Some(v);
                }
                self.rr[thief].fetch_add(1, Ordering::Relaxed)
            }
        };
        if let Some(domain) = &self.domain {
            return domain.pick_victim(thief, r);
        }
        if self.p <= 1 {
            return None;
        }
        let v = r as usize % (self.p - 1);
        Some(if v >= thief { v + 1 } else { v })
    }

    /// The candidate whose deque is deepest right now, by an uncosted
    /// ephemeral peek at the `bot` words (victim selection is a probe
    /// heuristic, not part of the costed computation — like the paper's
    /// uncosted random draw). Sharded candidates span the own shard only
    /// (`own_only`, the locality-first home pass, or any domain without
    /// live stealing); with live stealing enabled the peek widens to
    /// every processor, remote deque words being plainly readable through
    /// the shared mapping. `None` when every candidate is empty or
    /// `P = 1`.
    fn deepest_victim(&self, thief: usize, own_only: bool) -> Option<usize> {
        let candidates: Box<dyn Iterator<Item = usize>> = match &self.domain {
            Some(d) if own_only || !d.live_stealing() => Box::new(d.own_procs()),
            _ => Box::new(0..self.p),
        };
        let mut best: Option<(u64, usize)> = None;
        for v in candidates {
            if v == thief {
                continue;
            }
            let depth = self.mem.load(self.deques[v].bot);
            if depth > 0 && best.map(|(d, _)| depth > d).unwrap_or(true) {
                best = Some((depth, v));
            }
        }
        best.map(|(_, v)| v)
    }

    /// Exponential-backoff sleep before a steal attempt, engaged only
    /// after consecutive failed `popTop` CAMs. The base window is seeded
    /// from the live steal-latency histogram (median loop-entry-to-win
    /// time, clamped to `[1, 8]` µs), doubles per consecutive failure up
    /// to [`BACKOFF_CAP_US`], and the actual sleep is drawn uniformly
    /// from the window — randomized exponential backoff, so colliding
    /// thieves decorrelate instead of re-firing their CAMs in lockstep.
    fn backoff(&self, me: usize, n: u64) {
        let fails = self.contention[me].load(Ordering::Relaxed);
        if fails == 0 {
            return;
        }
        let base = self.steal_latency.quantile(0.5).unwrap_or(1).clamp(1, 8);
        let window = (base << fails.min(16)).min(BACKOFF_CAP_US);
        let jitter = splitmix64(self.seed ^ n ^ ((me as u64) << 52)) % window + 1;
        self.steal_backoff.observe(jitter);
        std::thread::sleep(std::time::Duration::from_micros(jitter));
    }

    /// A failed `popTop` CAM: someone else won the entry — contention.
    fn note_contention(&self, me: usize) {
        self.contention[me].fetch_add(1, Ordering::Relaxed);
    }

    /// An uncontended probe outcome (empty deque, won steal): clear the
    /// backoff window.
    fn note_calm(&self, me: usize) {
        self.contention[me].store(0, Ordering::Relaxed);
    }

    /// Bench/diagnostic hook: drive the backoff policy as if `rounds`
    /// consecutive `popTop` CAMs had failed, observing every sleep into
    /// `ppm_steal_backoff_us`. Real runs engage the identical path from
    /// the CAM-loss arms; this exists so hosts where the OS serializes
    /// the worker threads (and genuine CAM races are vanishingly rare)
    /// can still pin the policy curve — window growth and cap — in a
    /// deterministic benchmark.
    pub fn contention_probe(&self, me: usize, rounds: u64) {
        for n in 0..rounds {
            self.note_contention(me);
            self.backoff(me, n);
        }
        self.note_calm(me);
    }

    /// Whether `handle` (the restart pointer of dead processor `owner`)
    /// can actually be resumed by *this* process. In-process adoption
    /// accepts anything the arena resolves — including closures in the
    /// shared swap slots. Cross-shard adoption must be stricter: a remote
    /// processor's closures died with its process, and only persistent
    /// *frames* (fully described by shared words) are meaningful here.
    fn adoptable_handle(&self, owner: usize, handle: Word) -> bool {
        match &self.domain {
            Some(d) if d.is_remote(owner) => {
                handle != 0
                    && ppm_pm::is_frame_at(&self.mem, handle as usize)
                    && self.registry.rehydrate(&self.mem, handle).is_ok()
            }
            _ => self.resolvable(handle),
        }
    }

    /// Pre-steal guard for `local` entries of dead *remote* processors:
    /// committing the steal (the CAM sequence of lines 54-60) is only
    /// safe when the frozen restart pointer will rehydrate, because a
    /// taken local entry whose thread cannot be resumed is a lost thread.
    /// A dead remote owner's words are frozen, so the verdict is stable;
    /// a blocked window is recorded (the cluster degrades to
    /// process-level recovery rather than hanging silently). In-process
    /// owners always pass — their swap-slot closures are in the shared
    /// arena, which is exactly the Lemma A.10 situation.
    fn remote_local_adoptable(&self, owner: usize) -> bool {
        match &self.domain {
            Some(d) if d.is_remote(owner) => {
                let handle = self.mem.load(self.metas[owner].active);
                if self.adoptable_handle(owner, handle) {
                    true
                } else {
                    d.note_blocked_adoption(owner);
                    self.obs.tracer().record_with(
                        TraceKind::BlockedAdoption,
                        Some(d.shard_of(owner) as u32),
                        None,
                        || format!("unresumable local entry of dead proc {owner}"),
                    );
                    false
                }
            }
            _ => true,
        }
    }

    // ==================================================================
    // scheduler() — entry after a thread finishes (Figure 3 lines 117-122)
    // ==================================================================

    /// The capsule installed when a thread ends: `clearBottom` on the
    /// executing processor's deque, then `findWork`. Unchecked: clearBottom
    /// reads the bottom entry's tag and rewrites it (Lemma A.12's
    /// idempotence argument).
    pub fn scheduler_entry(self: &Arc<Self>) -> Cont {
        let s = self.clone();
        capsule_unchecked("sched/clearBottom", move |ctx| {
            let me = ctx.proc();
            let d = s.d(me);
            let b = ctx.pread(d.bot)? as usize;
            let cur = ctx.pread(d.entry(b))?;
            ctx.pwrite(
                d.entry(b),
                pack(tag_of(cur).wrapping_add(1), EntryVal::Empty),
            )?;
            Ok(Next::Jump(s.find_work()))
        })
    }

    // ==================================================================
    // findWork / popBottom (Figure 3 lines 81-93, 95-98)
    // ==================================================================

    /// `findWork`: try `popBottom`, then steal. Shared across processors
    /// (processor identity is dynamic). This is also the initial capsule of
    /// every non-root processor.
    pub fn find_work(self: &Arc<Self>) -> Cont {
        let s = self.clone();
        // popBottom capsule 1 (lines 82-84): read bot and the entry below
        // it, then commit.
        sched_capsule("sched/popBottom/read", move |ctx| {
            let me = ctx.proc();
            let d = s.d(me);
            let b = ctx.pread(d.bot)? as usize;
            if b == 0 {
                // Deque empty (nothing was ever pushed, or everything below
                // was consumed): no local work.
                return Ok(Next::Jump(s.steal_attempt(s.next_epoch(me))));
            }
            let old = ctx.pread(d.entry(b - 1))?;
            match unpack(old) {
                (_, EntryVal::Job { handle }) => {
                    Ok(Next::Jump(s.pop_bottom_cam(d, b, old, handle)))
                }
                _ => Ok(Next::Jump(s.steal_attempt(s.next_epoch(me)))),
            }
        })
    }

    /// Resolvability probe used by recovery and the adoption path: whether
    /// `handle` denotes a capsule this process can run (cached closure or
    /// rehydratable frame).
    pub(crate) fn resolvable(&self, handle: Word) -> bool {
        self.arena.resolve(handle).is_some()
    }

    fn next_epoch(&self, me: usize) -> u64 {
        // A fresh victim-selection stream index per findWork entry. Only
        // steers randomness; re-running the creating capsule may draw a new
        // stream, which is harmless (see module docs).
        self.epochs[me].fetch_add(1 << 32, Ordering::Relaxed)
    }

    /// popBottom capsule 2 (line 86): the CAM, alone in its capsule.
    fn pop_bottom_cam(self: &Arc<Self>, d: DequeAddrs, b: usize, old: Word, f: Word) -> Cont {
        let s = self.clone();
        sched_capsule("sched/popBottom/cam", move |ctx| {
            let new = pack(tag_of(old).wrapping_add(1), EntryVal::Local);
            ctx.pcam(d.entry(b - 1), old, new)?;
            Ok(Next::Jump(s.pop_bottom_check(d, b, new, f)))
        })
    }

    /// popBottom capsule 3 (lines 87-92): observe the CAM, take the job or
    /// give up. Includes the Lemma A.10 adoption case (module docs).
    fn pop_bottom_check(self: &Arc<Self>, d: DequeAddrs, b: usize, new: Word, f: Word) -> Cont {
        let s = self.clone();
        sched_capsule("sched/popBottom/check", move |ctx| {
            let cur = ctx.pread(d.entry(b - 1))?;
            if cur == new {
                ctx.pwrite(d.bot, (b - 1) as Word)?;
                // Jump by handle: the engine resolves `f` through the
                // arena (rehydrating a frame on first touch) and installs
                // the handle itself as the restart pointer.
                return Ok(Next::JumpHandle(f));
            }
            if kind_of(cur) == EntryKind::Taken && tag_of(cur) == tag_of(new).wrapping_add(1) {
                // Our CAM succeeded, the owner died, and we (the uniquely
                // successful adopting thief) already turned the local entry
                // into taken. Run the claimed thread (Lemma A.10).
                return Ok(Next::JumpHandle(f));
            }
            let me = ctx.proc();
            Ok(Next::Jump(s.steal_attempt(s.next_epoch(me))))
        })
    }

    // ==================================================================
    // Steal loop (findWork lines 100-107)
    // ==================================================================

    /// One steal attempt: check for termination, pick a victim, read our
    /// own bottom entry reference, and enter the victim's `popTop`.
    /// `pub(crate)` so the service-mode pull capsules can fall back into
    /// the steal loop when a claim CAM loses.
    pub(crate) fn steal_attempt(self: &Arc<Self>, n: u64) -> Cont {
        let s = self.clone();
        sched_capsule("sched/steal", move |ctx| {
            if s.done.read(ctx)? {
                return Ok(Next::Halt);
            }
            let me = ctx.proc();
            s.note_steal_enter(me);
            // Service mode: published injector jobs are root work — drain
            // the durable queue before probing victim deques. The scan is
            // an uncosted ephemeral peek (like victim selection); the
            // claim itself is the costed read/CAM/check capsule chain in
            // `crate::service`.
            if let Some(inj) = s.injector.get() {
                if let Some(slot) = inj.scan_published(me, n) {
                    return Ok(Next::Jump(crate::service::pull_read(&s, slot, n)));
                }
            }
            s.backoff(me, n);
            let victim = match s.pick_victim(me, n) {
                Some(v) => v,
                None => {
                    // P = 1: nothing to steal; keep polling the flag.
                    return Ok(Next::Jump(s.steal_attempt(n + 1)));
                }
            };
            // yield (Figure 3 line 101): give processors holding work the
            // processor before probing. ABP's yield-to-all keeps steal
            // attempts from starving workers in multiprogrammed settings —
            // essential when model processors outnumber cores.
            std::thread::yield_now();
            let my = s.d(me);
            let b = ctx.pread(my.bot)? as usize;
            let c = tag_of(ctx.pread(my.entry(b))?);
            // popTop begins with helpPopTop (line 33).
            let t1 = s.pop_top_read(s.d(victim), me, b, c, n);
            Ok(Next::Jump(s.help_pop_top(s.d(victim), t1)))
        })
    }

    // ==================================================================
    // helpPopTop (Figure 3 lines 20-27) — three capsules
    // ==================================================================

    /// `helpPopTop` on deque `d`, then continue with `then`. Capsule 1:
    /// read `top` and the entry there.
    fn help_pop_top(self: &Arc<Self>, d: DequeAddrs, then: Cont) -> Cont {
        let s = self.clone();
        sched_capsule("sched/help/read", move |ctx| {
            let t = ctx.pread(d.top)? as usize;
            let w = ctx.pread(d.entry(t))?;
            match unpack(w) {
                (_, EntryVal::Taken { proc, slot, tag }) => {
                    let ps = s.d(proc).entry(slot);
                    Ok(Next::Jump(s.help_cam_thief(d, t, ps, tag, then.clone())))
                }
                _ => Ok(Next::Jump(then.clone())),
            }
        })
    }

    /// helpPopTop capsule 2 (line 25): set the thief's entry to local.
    fn help_cam_thief(
        self: &Arc<Self>,
        d: DequeAddrs,
        t: usize,
        ps: ppm_pm::Addr,
        i: u16,
        then: Cont,
    ) -> Cont {
        let s = self.clone();
        sched_capsule("sched/help/camThief", move |ctx| {
            ctx.pcam(
                ps,
                pack(i, EntryVal::Empty),
                pack(i.wrapping_add(1), EntryVal::Local),
            )?;
            Ok(Next::Jump(s.help_cam_top(d, t, then.clone())))
        })
    }

    /// helpPopTop capsule 3 (line 26): advance `top`.
    fn help_cam_top(self: &Arc<Self>, d: DequeAddrs, t: usize, then: Cont) -> Cont {
        let _ = self;
        sched_capsule("sched/help/camTop", move |ctx| {
            ctx.pcam(d.top, t as Word, (t + 1) as Word)?;
            Ok(Next::Jump(then.clone()))
        })
    }

    // ==================================================================
    // popTop (Figure 3 lines 32-64)
    // ==================================================================

    /// popTop capsule 1 (lines 34-36): read `top` and the entry, commit,
    /// then branch. `(thief, e_slot, c)` identify where the stolen thread's
    /// local entry will live — the thief's bottom entry and its tag.
    fn pop_top_read(
        self: &Arc<Self>,
        v: DequeAddrs,
        thief: usize,
        e_slot: usize,
        c: u16,
        n: u64,
    ) -> Cont {
        let s = self.clone();
        sched_capsule("sched/popTop/read", move |ctx| {
            let i = ctx.pread(v.top)? as usize;
            let old = ctx.pread(v.entry(i))?;
            match unpack(old) {
                // Line 39: nothing to steal — an uncontended outcome, so
                // any backoff window collapses.
                (_, EntryVal::Empty) => {
                    s.note_calm(ctx.proc());
                    Ok(Next::Jump(s.steal_attempt(n + 1)))
                }
                // Lines 41-42: a steal is in progress; help it, then give up.
                (_, EntryVal::Taken { .. }) => {
                    Ok(Next::Jump(s.help_pop_top(v, s.steal_attempt(n + 1))))
                }
                // Lines 44-49: a job; try to take it. A remote owner's
                // job must be a rehydratable frame — its closures (live
                // or dead) belong to another process — so the steal is
                // gated exactly like local-entry adoption.
                (tag, EntryVal::Job { handle }) => {
                    if matches!(&s.domain, Some(d) if d.is_remote(v.owner))
                        && !s.adoptable_handle(v.owner, handle)
                    {
                        return Ok(Next::Jump(s.steal_attempt(n + 1)));
                    }
                    let new = pack(
                        tag.wrapping_add(1),
                        EntryVal::Taken {
                            proc: thief,
                            slot: e_slot,
                            tag: c,
                        },
                    );
                    Ok(Next::Jump(s.pop_top_cam(v, i, old, new, handle, n)))
                }
                // Lines 51-63: local work; steal it only from a dead owner.
                (tag, EntryVal::Local) => {
                    if !ctx.is_live(v.owner) && s.remote_local_adoptable(v.owner) {
                        let recheck = ctx.pread(v.entry(i))?;
                        if recheck == old {
                            // commit (line 54), then lines 55-60.
                            let new = pack(
                                tag.wrapping_add(1),
                                EntryVal::Taken {
                                    proc: thief,
                                    slot: e_slot,
                                    tag: c,
                                },
                            );
                            return Ok(Next::Jump(s.pop_top_clear_above_read(v, i, old, new, n)));
                        }
                    }
                    Ok(Next::Jump(s.steal_attempt(n + 1)))
                }
            }
        })
    }

    /// popTop job-steal CAM (line 46), alone in its capsule; then help,
    /// then check.
    fn pop_top_cam(
        self: &Arc<Self>,
        v: DequeAddrs,
        i: usize,
        old: Word,
        new: Word,
        f: Word,
        n: u64,
    ) -> Cont {
        let s = self.clone();
        sched_capsule("sched/popTop/cam", move |ctx| {
            ctx.pcam(v.entry(i), old, new)?;
            let check = s.pop_top_check_job(v, i, new, f, n);
            Ok(Next::Jump(s.help_pop_top(v, check)))
        })
    }

    /// popTop job-steal check (lines 48-49): did our CAM win?
    fn pop_top_check_job(
        self: &Arc<Self>,
        v: DequeAddrs,
        i: usize,
        new: Word,
        f: Word,
        n: u64,
    ) -> Cont {
        let s = self.clone();
        sched_capsule("sched/popTop/check", move |ctx| {
            let cur = ctx.pread(v.entry(i))?;
            if cur == new {
                let me = ctx.proc();
                s.note_steal_win(me, v.owner, "job");
                if let Some(d) = &s.domain {
                    if d.is_remote(v.owner) {
                        if d.is_adoptable(d.shard_of(v.owner)) {
                            // The owner's shard is dead: this is adoption
                            // of an orphaned entry, the recovery path.
                            d.note_adopted_job();
                            s.note_adoption_event(me, v.owner, "job");
                        } else {
                            // The owner's shard is alive: a live-shard
                            // steal — ordinary load balancing that
                            // happens to cross a process boundary.
                            d.note_live_steal();
                        }
                    }
                }
                Ok(Next::JumpHandle(f))
            } else {
                // Our CAM lost to another thief: contention — widen the
                // backoff window for the next attempt.
                s.note_contention(ctx.proc());
                Ok(Next::Jump(s.steal_attempt(n + 1)))
            }
        })
    }

    /// Local steal, step 1 of line 56: read the tag of the entry *above*
    /// the local entry (it will be cleared so it can never be stolen).
    fn pop_top_clear_above_read(
        self: &Arc<Self>,
        v: DequeAddrs,
        i: usize,
        old: Word,
        new: Word,
        n: u64,
    ) -> Cont {
        let s = self.clone();
        sched_capsule("sched/popTop/clearAboveRead", move |ctx| {
            let above = ctx.pread(v.entry(i + 1))?;
            Ok(Next::Jump(s.pop_top_clear_above_write(
                v,
                i,
                old,
                new,
                tag_of(above),
                n,
            )))
        })
    }

    /// Local steal, step 2 of line 56: clear the entry above (erases a
    /// transient second local left by an interrupted pushBottom).
    fn pop_top_clear_above_write(
        self: &Arc<Self>,
        v: DequeAddrs,
        i: usize,
        old: Word,
        new: Word,
        above_tag: u16,
        n: u64,
    ) -> Cont {
        let s = self.clone();
        sched_capsule("sched/popTop/clearAboveWrite", move |ctx| {
            ctx.pwrite(
                v.entry(i + 1),
                pack(above_tag.wrapping_add(1), EntryVal::Empty),
            )?;
            Ok(Next::Jump(s.pop_top_cam_local(v, i, old, new, n)))
        })
    }

    /// Local steal CAM (line 57), then help, then check-and-adopt.
    fn pop_top_cam_local(
        self: &Arc<Self>,
        v: DequeAddrs,
        i: usize,
        old: Word,
        new: Word,
        n: u64,
    ) -> Cont {
        let s = self.clone();
        sched_capsule("sched/popTop/camLocal", move |ctx| {
            ctx.pcam(v.entry(i), old, new)?;
            let check = s.pop_top_check_local(v, i, new, n);
            Ok(Next::Jump(s.help_pop_top(v, check)))
        })
    }

    /// Local steal check (lines 59-60): on success, adopt the dead owner's
    /// active capsule (`getActiveCapsule`).
    fn pop_top_check_local(self: &Arc<Self>, v: DequeAddrs, i: usize, new: Word, n: u64) -> Cont {
        let s = self.clone();
        sched_capsule("sched/popTop/checkLocal", move |ctx| {
            let cur = ctx.pread(v.entry(i))?;
            if cur != new {
                // Lost the adoption CAM to a competing thief.
                s.note_contention(ctx.proc());
                return Ok(Next::Jump(s.steal_attempt(n + 1)));
            }
            let handle = ctx.pread(s.metas[v.owner].active)?;
            if s.adoptable_handle(v.owner, handle) {
                let me = ctx.proc();
                s.note_steal_win(me, v.owner, "local");
                if let Some(d) = &s.domain {
                    if d.is_remote(v.owner) {
                        d.note_adopted_local();
                        s.note_adoption_event(me, v.owner, "local");
                    }
                }
                Ok(Next::JumpHandle(handle))
            } else {
                // The owner died outside threaded code with a cleared
                // restart pointer; nothing to resume.
                Ok(Next::Jump(s.steal_attempt(n + 1)))
            }
        })
    }

    // ==================================================================
    // pushBottom (Figure 3 lines 66-79) — the fork path
    // ==================================================================

    /// The fork wrapper: after the engine registers the forked child
    /// (handle `f`), run `pushBottom(f)` and then continue the thread with
    /// `cont`. When the continuation is itself a persistent frame,
    /// `cont_handle` carries its handle so the post-push jump re-installs
    /// a frame-backed restart pointer. Capsule 1 (lines 67-70): read
    /// `bot` and the two tags, commit.
    pub fn push_bottom(self: &Arc<Self>, f: Word, cont: Cont, cont_handle: Option<Word>) -> Cont {
        let s = self.clone();
        sched_capsule("sched/pushBottom/read", move |ctx| {
            let me = ctx.proc();
            let d = s.d(me);
            let b = ctx.pread(d.bot)? as usize;
            let t1 = tag_of(ctx.pread(d.entry(b + 1))?);
            let t2 = tag_of(ctx.pread(d.entry(b))?);
            Ok(Next::Jump(s.push_bottom_commit(
                d,
                b,
                t1,
                t2,
                f,
                cont.clone(),
                cont_handle,
            )))
        })
    }

    /// pushBottom capsule 2 (lines 71-78). Kept as a single capsule like
    /// the paper (the re-evaluated condition is what makes the re-run and
    /// the adopting-thief cases work — Lemma A.6); unchecked because it
    /// reads the bottom entry and then CAMs it.
    #[allow(clippy::too_many_arguments)]
    fn push_bottom_commit(
        self: &Arc<Self>,
        d: DequeAddrs,
        b: usize,
        t1: u16,
        t2: u16,
        f: Word,
        cont: Cont,
        cont_handle: Option<Word>,
    ) -> Cont {
        let s = self.clone();
        // Return to the thread: by frame handle when the continuation is
        // persistent (keeping the restart pointer frame-backed), by
        // closure otherwise.
        let back = move |cont: &Cont| match cont_handle {
            Some(h) => Next::JumpHandle(h),
            None => Next::Jump(cont.clone()),
        };
        capsule_unchecked("sched/pushBottom/commit", move |ctx| {
            let local_b = pack(t2, EntryVal::Local);
            let cur = ctx.pread(d.entry(b))?;
            if cur == local_b {
                // Lines 72-74: move our local up, then turn the old local
                // into the forked job.
                ctx.pwrite(d.entry(b + 1), pack(t1.wrapping_add(1), EntryVal::Local))?;
                ctx.pwrite(d.bot, (b + 1) as Word)?;
                ctx.pcam(
                    d.entry(b),
                    local_b,
                    pack(t2.wrapping_add(1), EntryVal::Job { handle: f }),
                )?;
                return Ok(back(&cont));
            }
            let above = ctx.pread(d.entry(b + 1))?;
            if kind_of(above) == EntryKind::Empty {
                // Lines 75-76: we are an adopting thief — the original
                // owner died before the CAM and its local entry was stolen
                // (which also cleared the entry above). Re-push the fork on
                // the executing processor's own deque.
                return Ok(Next::Jump(s.push_bottom(f, cont.clone(), cont_handle)));
            }
            // The CAM already happened (a re-run after the push completed):
            // just return to the thread.
            Ok(back(&cont))
        })
    }
}

/// Installs a persistent-memory write observer that panics on any entry
/// mutation violating the Figure 4 transition table. Tag-refreshing
/// rewrites within the same state (e.g. line 56 clearing an already-empty
/// slot) are not state transitions and are allowed.
///
/// `pub(crate)` so the recovery driver can defer installation until after
/// it has scrubbed stale entries (scrub stores are machine maintenance,
/// not Figure 4 transitions).
pub(crate) fn install_transition_checker(machine: &Machine, deques: &[DequeAddrs]) {
    let ranges: Vec<(usize, usize)> = deques
        .iter()
        .map(|d| (d.stack.start, d.stack.end()))
        .collect();
    machine
        .mem()
        .set_observer(Some(Arc::new(move |addr, prev, new| {
            if !ranges.iter().any(|(s, e)| addr >= *s && addr < *e) {
                return;
            }
            let from = kind_of(prev);
            let to = kind_of(new);
            if from != to && !from.can_transition_to(to) {
                panic!(
                    "illegal Figure 4 entry transition {from:?} -> {to:?} at address {addr} \
                 (prev={prev:#x}, new={new:#x})"
                );
            }
        })));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn victim_selection_is_deterministic_and_never_self() {
        let machine = Machine::new(ppm_pm::PmConfig::parallel(4, 1 << 20));
        let done = DoneFlag::new(&machine);
        let s = Sched::new(&machine, done, &SchedConfig::with_slots(64));
        for thief in 0..4 {
            for n in 0..200 {
                let v = s.pick_victim(thief, n).unwrap();
                assert_ne!(v, thief);
                assert!(v < 4);
                assert_eq!(s.pick_victim(thief, n), Some(v), "deterministic");
            }
        }
        // All victims get probed eventually.
        let mut seen = std::collections::HashSet::new();
        for n in 0..100 {
            seen.insert(s.pick_victim(0, n).unwrap());
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn round_robin_cycles_all_victims_and_never_self() {
        let machine = Machine::new(ppm_pm::PmConfig::parallel(4, 1 << 20));
        let done = DoneFlag::new(&machine);
        let mut cfg = SchedConfig::with_slots(64);
        cfg.victim_strategy = VictimStrategy::RoundRobin;
        let s = Sched::new(&machine, done, &cfg);
        for thief in 0..4 {
            let seq: Vec<usize> = (0..6).map(|n| s.pick_victim(thief, n).unwrap()).collect();
            assert!(seq.iter().all(|&v| v != thief && v < 4));
            // One rotation covers every other processor, then repeats.
            let first: std::collections::HashSet<usize> = seq[..3].iter().copied().collect();
            assert_eq!(first.len(), 3);
            assert_eq!(seq[..3], seq[3..6]);
        }
    }

    #[test]
    fn least_loaded_targets_the_deepest_deque() {
        let machine = Machine::new(ppm_pm::PmConfig::parallel(4, 1 << 20));
        let done = DoneFlag::new(&machine);
        let mut cfg = SchedConfig::with_slots(64);
        cfg.victim_strategy = VictimStrategy::LeastLoaded;
        let s = Sched::new(&machine, done, &cfg);
        // All deques empty: rotation fallback, still never self.
        let v = s.pick_victim(0, 0).unwrap();
        assert_ne!(v, 0);
        // Give proc 2 the deepest deque and proc 1 a shallower one.
        s.mem.store(s.deques[2].bot, 5);
        s.mem.store(s.deques[1].bot, 2);
        for n in 0..8 {
            assert_eq!(s.pick_victim(0, n), Some(2));
            assert_eq!(s.pick_victim(3, n), Some(2));
            // The deepest proc never probes itself: next-deepest wins.
            assert_eq!(s.pick_victim(2, n), Some(1));
        }
    }

    #[test]
    fn victim_strategy_round_trips_through_seed_top_bits() {
        for (st, code) in [
            (VictimStrategy::Random, 0u64),
            (VictimStrategy::RoundRobin, 1),
            (VictimStrategy::LeastLoaded, 2),
            (VictimStrategy::LocalityFirst, 3),
        ] {
            let seed = 0x0123_4567_89ab_cdef;
            let packed = st.pack_into_seed(seed);
            assert_eq!(VictimStrategy::unpack_from_seed(packed), st);
            assert_eq!(packed & ((1 << 62) - 1), seed & ((1 << 62) - 1));
            assert_eq!(packed >> 62, code);
        }
    }

    #[test]
    fn single_proc_has_no_victims() {
        let machine = Machine::new(ppm_pm::PmConfig::parallel(1, 1 << 18));
        let done = DoneFlag::new(&machine);
        let s = Sched::new(&machine, done, &SchedConfig::with_slots(64));
        assert_eq!(s.pick_victim(0, 0), None);
    }

    #[test]
    fn config_default_is_reasonable() {
        let c = SchedConfig::default();
        assert!(c.deque_slots >= 1 << 10);
        assert!(!c.check_transitions);
    }
}
