//! Direct tests of the Figure 3 operation chains against hand-crafted
//! deque states: steal paths, help paths, and the dead-owner local steal,
//! each driven capsule by capsule outside a full scheduler run.

use std::sync::Arc;

use ppm_core::{
    capsule, end_capsule, run_capsule, Cont, DoneFlag, InstallCtx, Machine, Next, Step,
};
use ppm_pm::{PmConfig, Word};
use ppm_sched::{
    check_invariant, kind_of, pack, run_root_on, unpack, EntryKind, EntryVal, Sched, SchedConfig,
};

fn setup(procs: usize) -> (Machine, Arc<Sched>, DoneFlag) {
    let m = Machine::new(PmConfig::parallel(procs, 1 << 20));
    let done = DoneFlag::new(&m);
    let sched = Sched::new(&m, done, &SchedConfig::with_slots(64));
    (m, sched, done)
}

/// Drives a capsule chain on `proc` until the done flag halts it or the
/// step budget runs out; returns the number of capsules run.
fn drive(m: &Machine, sched: &Arc<Sched>, proc: usize, first: Cont, budget: usize) -> usize {
    let mut ctx = m.ctx(proc);
    let mut install = InstallCtx::new(m.proc_meta(proc));
    let on_end = sched.scheduler_entry();
    let sched2 = sched.clone();
    let wrap = move |h: Word, cont: Cont, ch: Option<Word>| sched2.push_bottom(h, cont, ch);
    let mut cur = first;
    for step in 0..budget {
        match run_capsule(
            &mut ctx,
            m.arena(),
            &mut install,
            &cur,
            Some(&wrap),
            Some(&on_end),
        )
        .expect("no hard faults configured")
        {
            Step::Next(c) => cur = c,
            Step::Done => return step + 1,
        }
    }
    budget
}

#[test]
fn find_work_on_empty_deques_halts_when_done_is_set() {
    let (m, sched, done) = setup(2);
    m.mem().store(done.addr(), 1); // computation already finished
    let steps = drive(&m, &sched, 1, sched.find_work(), 100);
    assert!(steps < 100, "must observe the flag and halt, took {steps}");
}

#[test]
fn steal_takes_a_planted_job_and_runs_it() {
    let (m, sched, done) = setup(2);
    let out = m.alloc_region(8);

    // Plant a job on proc 0's deque: register a thread that writes a
    // marker and sets done.
    let thread = capsule("planted", move |ctx| {
        ctx.pwrite(out.at(0), 99)?;
        Ok(Next::End)
    });
    let slot = m.alloc_region(1).start;
    m.arena().preregister(slot, thread);
    let d0 = sched.deques()[0];
    m.mem().store(
        d0.entry(0),
        pack(
            1,
            EntryVal::Job {
                handle: slot as Word,
            },
        ),
    );
    m.mem().store(d0.bot, 1);

    // Proc 1 has no local work: it must steal the job, run it (which Ends,
    // so clearBottom runs), then see `done` (set by the thread's effect
    // below? — set it from the thread itself for a clean halt).
    // Rebuild the thread to also set done:
    let thread2 = capsule("planted2", move |ctx| {
        ctx.pwrite(out.at(0), 99)?;
        ctx.pwrite(done.addr(), 1)?;
        Ok(Next::End)
    });
    m.arena().preregister(slot, thread2);

    let steps = drive(&m, &sched, 1, sched.find_work(), 200);
    assert!(steps < 200);
    assert_eq!(m.mem().load(out.at(0)), 99, "stolen thread must run");

    // The victim's entry is now taken and its top advanced.
    let (tag, val) = unpack(m.mem().load(d0.entry(0)));
    assert_eq!(tag, 2, "tag bumped by the steal CAM");
    match val {
        EntryVal::Taken { proc, slot, .. } => {
            assert_eq!(proc, 1, "taken by proc 1");
            assert_eq!(slot, 0, "into the thief's bottom entry");
        }
        other => panic!("expected taken, got {other:?}"),
    }
    assert_eq!(m.mem().load(d0.top), 1, "help advanced top");
    // The thief's entry went empty->local (the stolen thread) and back to
    // empty (clearBottom after the thread ended).
    let d1 = sched.deques()[1];
    assert_eq!(kind_of(m.mem().load(d1.entry(0))), EntryKind::Empty);
    check_invariant(m.mem(), &d0).unwrap();
    check_invariant(m.mem(), &d1).unwrap();
}

#[test]
fn local_entry_of_live_owner_is_never_stolen() {
    let (m, sched, done) = setup(2);
    let d0 = sched.deques()[0];
    // Proc 0 "is running" a thread: local entry at its bottom. Proc 0 is
    // alive (we never fault it).
    m.mem().store(d0.entry(0), pack(1, EntryVal::Local));
    // Give the thief a fixed budget of steal capsules; the drive returns
    // when the budget is exhausted (`done` is never set), so the thief
    // provably made thousands of attempts — deterministically, with no
    // wall-clock handshake.
    let budget = 5_000;
    let steps = drive(&m, &sched, 1, sched.find_work(), budget);
    assert_eq!(
        steps, budget,
        "thief must still be probing when the budget ends"
    );
    let (tag, val) = unpack(m.mem().load(d0.entry(0)));
    assert_eq!(
        (tag, val),
        (1, EntryVal::Local),
        "live owner's local survives"
    );
    let _ = done;
}

#[test]
fn local_entry_of_dead_owner_is_stolen_and_resumed() {
    let (m, sched, done) = setup(2);
    let out = m.alloc_region(8);
    let d0 = sched.deques()[0];

    // Proc 0 was mid-thread when it died: local entry at bottom, active
    // capsule pointing at the remainder of its thread.
    let rest = capsule("rest-of-thread", move |ctx| {
        ctx.pwrite(out.at(0), 7)?;
        ctx.pwrite(done.addr(), 1)?;
        Ok(Next::End)
    });
    let slot = m.alloc_region(1).start;
    m.arena().preregister(slot, rest);
    m.mem().store(m.proc_meta(0).active, slot as Word);
    m.mem().store(d0.entry(0), pack(1, EntryVal::Local));
    m.liveness().mark_dead(0);

    let steps = drive(&m, &sched, 1, sched.find_work(), 300);
    assert!(steps < 300);
    assert_eq!(m.mem().load(out.at(0)), 7, "dead owner's thread resumed");
    assert_eq!(kind_of(m.mem().load(d0.entry(0))), EntryKind::Taken);
    // Line 56: the entry above the stolen local was cleared with a tag
    // bump so it can never be stolen.
    let (tag_above, val_above) = unpack(m.mem().load(d0.entry(1)));
    assert_eq!(val_above, EntryVal::Empty);
    assert_eq!(tag_above, 1);
}

#[test]
fn own_jobs_are_popped_from_the_bottom_lifo() {
    // A thread forks A then B; the owner must pop B first (LIFO), then A.
    let (m, sched, done) = setup(1);
    let order = m.alloc_region(8);

    let leaf = |i: usize| -> Cont {
        capsule("leaf", move |ctx| {
            // Record arrival order at the first free slot.
            let pos = (0..4)
                .find(|k| ctx.raw_mem().load(order.at(*k)) == 0)
                .unwrap();
            ctx.pwrite(order.at(pos), i as Word)?;
            if pos == 2 {
                ctx.pwrite(done.addr(), 1)?;
            }
            Ok(Next::End)
        })
    };
    let root = {
        let leaf_a = leaf(1);
        let leaf_b = leaf(2);
        let finish = leaf(3);
        capsule("root", move |_ctx| {
            let fork_b = {
                let leaf_b = leaf_b.clone();
                let finish = finish.clone();
                capsule("root2", move |_ctx| {
                    Ok(Next::Fork {
                        child: leaf_b.clone(),
                        cont: finish.clone(),
                    })
                })
            };
            Ok(Next::Fork {
                child: leaf_a.clone(),
                cont: fork_b,
            })
        })
    };
    // Initialize as the driver would.
    let slot = m.alloc_region(1).start;
    m.arena().preregister(slot, root.clone());
    m.mem().store(m.proc_meta(0).active, slot as Word);
    m.mem()
        .store(sched.deques()[0].entry(0), pack(1, EntryVal::Local));
    let steps = drive(&m, &sched, 0, root, 400);
    assert!(steps < 400);
    // Thread order: root forks A, forks B, runs finish(3); then pops B(2);
    // then pops A(1).
    assert_eq!(m.mem().to_vec(order.start, 3), vec![3, 2, 1], "LIFO pops");
}

#[test]
fn full_run_on_prebuilt_sched_reports_and_checks() {
    let (m, sched, done) = setup(2);
    let out = m.alloc_region(8);
    let root = capsule("root", move |ctx| {
        ctx.pwrite(out.at(0), 5)?;
        Ok(Next::End)
    });
    // run_root_on requires the root to eventually set done; wrap it.
    let root_then_done = {
        let finale = done.finale();
        capsule("root+done", move |ctx| {
            ctx.pwrite(out.at(0), 5)?;
            Ok(Next::Jump(finale.clone()))
        })
    };
    let _ = root;
    let rep = run_root_on(&m, &sched, root_then_done, done);
    assert!(rep.completed);
    assert_eq!(m.mem().load(out.at(0)), 5);
    assert_eq!(rep.deque_dump.len(), 2);
    let _ = end_capsule();
}
