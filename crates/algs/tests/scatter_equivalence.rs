//! Property tests for the propagation-blocking scatter, plus the
//! kill-point resume path through the staged-bin scatter capsules.
//!
//! The blocked scatter ([`BlockScatter`]) must be *observationally
//! identical* to the naive per-element scatter for every key/bucket
//! distribution: same words at the same destinations, in the same
//! within-bucket order — only the transfer schedule differs. The staging
//! bins live in ephemeral memory, so a processor that dies mid-scatter
//! loses them entirely; on resume the owning capsule re-runs from its
//! persistent frame and must rebuild the bins and rewrite the identical
//! destinations (§4.1 idempotence), which the kill sweep checks end to
//! end through registered samplesort.

use ppm_algs::sort::samplesort_pool_words;
use ppm_algs::util::{scatter_naive, BlockScatter};
use ppm_algs::SampleSort;
use ppm_core::Machine;
use ppm_pm::{Addr, FaultConfig, PmConfig, Word};
use ppm_sched::{Runtime, SchedConfig};
use proptest::prelude::*;

/// Runs both scatters over the same `(bucket, word)` stream and returns
/// `(blocked image, naive image, blocked write transfers, naive write
/// transfers)`.
fn run_both(
    keys: &[Word],
    assign: &[usize],
    buckets: usize,
    block: usize,
) -> (Vec<Word>, Vec<Word>, u64, u64) {
    let n = keys.len();
    let m = Machine::new(PmConfig::parallel(1, 1 << 16).with_block_size(block));
    let blocked = m.alloc_region(n);
    let naive = m.alloc_region(n);
    let mut counts = vec![0usize; buckets];
    for &j in assign {
        counts[j] += 1;
    }
    let offs: Vec<usize> = counts
        .iter()
        .scan(0, |acc, c| {
            let o = *acc;
            *acc += c;
            Some(o)
        })
        .collect();

    let mut ctx = m.ctx(0);
    ctx.begin_capsule("prop/blocked");
    let before = ctx.stats().snapshot().total_writes;
    let mut sc = BlockScatter::new(&ctx, offs.iter().map(|o| blocked.cursor(*o)).collect());
    for (i, &j) in assign.iter().enumerate() {
        sc.push(&mut ctx, j, keys[i]).unwrap();
    }
    sc.flush(&mut ctx).unwrap();
    let w_blocked = ctx.stats().snapshot().total_writes - before;
    ctx.complete_capsule();

    ctx.begin_capsule("prop/naive");
    let before = ctx.stats().snapshot().total_writes;
    let mut cursors: Vec<Addr> = offs.iter().map(|o| naive.cursor(*o)).collect();
    scatter_naive(
        &mut ctx,
        &mut cursors,
        assign.iter().enumerate().map(|(i, &j)| (j, keys[i])),
    )
    .unwrap();
    let w_naive = ctx.stats().snapshot().total_writes - before;
    ctx.complete_capsule();

    let img = |r: ppm_pm::Region| (0..n).map(|i| m.mem().load(r.at(i))).collect::<Vec<_>>();
    (img(blocked), img(naive), w_blocked, w_naive)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For arbitrary keys, arbitrary (possibly heavily skewed) bucket
    /// assignments, and every supported block size, the blocked scatter
    /// produces the exact image the naive scatter does — equality of the
    /// full destination region is stronger than permutation-equivalence,
    /// since it also pins within-bucket (stable) order.
    #[test]
    fn blocked_scatter_matches_naive_for_random_distributions(
        keys in prop::collection::vec(any::<u64>(), 1..700),
        buckets in 1usize..24,
        block_sel in 0usize..5,
        seed in any::<u64>(),
    ) {
        let block = [1usize, 2, 4, 8, 16][block_sel];
        // Assignment derived from the seed: mixes uniform, skewed, and
        // near-constant distributions across cases.
        let skew = (seed % 3) as usize;
        let assign: Vec<usize> = (0..keys.len())
            .map(|i| {
                let h = (seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
                    .wrapping_mul(0x2545_F491_4F6C_DD1D)
                    >> 33;
                match skew {
                    0 => h as usize % buckets,                  // uniform
                    1 => (h as usize % buckets) * (h as usize % buckets) / buckets.max(1), // skewed low
                    _ => 0,                                     // all one bucket
                }
            })
            .map(|j| j.min(buckets - 1))
            .collect();
        let (img_b, img_n, w_blocked, w_naive) = run_both(&keys, &assign, buckets, block);
        prop_assert_eq!(img_b, img_n);
        // The naive scatter charges one transfer per element; staging can
        // only merge writes, never add them.
        prop_assert_eq!(w_naive, keys.len() as u64);
        prop_assert!(w_blocked <= w_naive + 2 * buckets as u64);
    }
}

/// Faultless registered-samplesort profile: total costed accesses, used
/// to place kill points as fractions of measured work rather than
/// hardcoded counts (which rot whenever the cost model tightens).
fn samplesort_profile(n: usize, procs: usize) -> u64 {
    let rt = Runtime::new(
        Machine::with_pool_words(
            PmConfig::parallel(procs, 1 << 23).with_ephemeral_words(64),
            samplesort_pool_words(n),
        ),
        SchedConfig::with_slots(1 << 14),
    );
    let ss = SampleSort::new(rt.machine(), n);
    let input: Vec<u64> = (0..n as u64)
        .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15) % 1_000_003)
        .collect();
    ss.load_input(rt.machine(), &input);
    let rep = rt.run_or_recover(&ss.pcomp());
    assert!(rep.completed());
    rep.stats().total_work()
}

/// Kills one processor at `num/den` of the faultless average per-proc
/// work share and drives the registered samplesort to completion through
/// recovery. The scatter phase rebuilds its ephemeral staging bins from
/// persistent frames on the re-run; correctness of the final output
/// proves no words were lost or duplicated across the partial spills of
/// the killed run. Returns whether the kill actually fired — work
/// stealing makes per-proc shares nondeterministic, so a high placement
/// can land past the victim's real work and run through faultlessly.
fn check_kill_resume(
    n: usize,
    procs: usize,
    victim: usize,
    num: u64,
    den: u64,
    total: u64,
) -> bool {
    let share = total / procs as u64;
    let f = FaultConfig::none().with_scheduled_hard_fault(victim, (share * num / den).max(1));
    let rt = Runtime::new(
        Machine::with_pool_words(
            PmConfig::parallel(procs, 1 << 23)
                .with_ephemeral_words(64)
                .with_fault(f),
            samplesort_pool_words(n),
        ),
        SchedConfig::with_slots(1 << 14),
    );
    let ss = SampleSort::new(rt.machine(), n);
    let input: Vec<u64> = (0..n as u64)
        .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15) % 1_000_003)
        .collect();
    ss.load_input(rt.machine(), &input);
    let rep = rt.run_or_recover(&ss.pcomp());
    assert!(rep.completed(), "kill at {num}/{den}: run must complete");
    let mut expect = input;
    expect.sort_unstable();
    assert_eq!(
        ss.read_output(rt.machine()),
        expect,
        "kill at {num}/{den}: staged-bin capsules must rebuild and rewrite identically"
    );
    rep.stats().hard_faults >= 1
}

#[test]
fn registered_samplesort_survives_kills_across_the_scatter_pipeline() {
    // n = M^2 forces the full multi-phase pipeline (counts transpose +
    // blocked bucket scatter). Kill points sweep the middle of the run so
    // the sweep crosses the scatter phases wherever the cost model puts
    // them; the profile-derived placement keeps that true as costs shift.
    let (n, procs) = (1 << 12, 3);
    let total = samplesort_profile(n, procs);
    let placements = [(1, 1, 5), (2, 3, 10), (1, 2, 5), (2, 1, 2), (1, 3, 5)];
    let fired = placements
        .iter()
        .filter(|&&(victim, num, den)| check_kill_resume(n, procs, victim, num, den, total))
        .count();
    assert!(
        fired >= 3,
        "only {fired}/{} kill placements fired — placements are drifting past real work",
        placements.len()
    );
}
