//! Deterministic causal-trace validation over the scripted simulator.
//!
//! Drives the registered prefix-sum through [`ppm_sched::SimSched`] with
//! a span sink attached, then reconstructs the capsule DAG with the
//! `ppm-trace` analyzer (`ppm_obs::profile`) and checks the paper's
//! observed quantities:
//!
//! * crash-free: the DAG is complete (every non-root span resolves its
//!   parent), W / D / parallelism are exactly reproducible run-to-run
//!   (the scripted schedule is deterministic), internally consistent
//!   (`parallelism = W/D`, per-shard work sums to W), and **zero** work
//!   is fault-wasted;
//! * kill-point: a scheduled mid-capsule hard fault makes the survivor
//!   adopt and re-execute — the analyzer must attribute wasted work > 0
//!   against the exactly-once commit set while the output (the committed
//!   effects) still equals the sequential oracle exactly once.

use std::sync::Arc;

use ppm_algs::{prefix_sum_seq, PrefixSum};
use ppm_core::Machine;
use ppm_obs::{Analysis, SpanSink, TraceSet};
use ppm_pm::{FaultConfig, PmConfig, Word};
use ppm_sched::{SchedConfig, SimSched};

const N: usize = 64; // block_size 8 -> 8 leaves, a 4-level fork tree

fn input() -> Vec<Word> {
    (0..N as Word).map(|i| i * 3 + 1).collect()
}

/// Runs the registered prefix-sum under a round-robin scripted schedule
/// with `procs` processors and `fault`, tracing spans to a fresh file;
/// returns the analyzer's view plus the computed output.
fn traced_run(name: &str, procs: usize, fault: FaultConfig) -> (Analysis, Vec<Word>) {
    let path = std::env::temp_dir().join(format!(
        "ppm-trace-dag-{}-{name}.spans.jsonl",
        std::process::id()
    ));
    let m = Machine::new(PmConfig::parallel(procs, 1 << 21).with_fault(fault));
    let sink = SpanSink::create(&path, 0, m.epoch(), false).expect("span sink");
    m.obs().set_span_sink(Arc::new(sink));

    let ps = PrefixSum::new(&m, N);
    ps.load_input(&m, &input());
    // Seat AFTER the sink is installed: processor contexts capture it at
    // construction.
    let mut sim = SimSched::new_persistent(&m, &ps.pcomp(), &SchedConfig::with_slots(256));
    sim.run_to_completion(100_000);
    let rep = sim.finish();
    assert!(rep.completed, "{name}: simulated run must complete");

    let mut set = TraceSet::default();
    set.ingest_file(&path).expect("ingest span file");
    let out = ps.read_output(&m);
    let _ = std::fs::remove_file(&path);
    (set.analyze(), out)
}

#[test]
fn crash_free_dag_is_complete_exact_and_waste_free() {
    let (a, out) = traced_run("clean-a", 2, FaultConfig::none());
    assert_eq!(out, prefix_sum_seq(&input()));

    // Complete DAG: every non-root span resolves its parent.
    assert_eq!(a.unresolved_parents, 0, "DAG must be complete");
    assert!(a.spans_total > 0 && a.completed == a.spans_total);
    assert_eq!(a.interrupted, 0);
    assert!(a.roots >= 1);

    // Zero fault-wasted work, by exact accounting.
    assert_eq!(a.wasted_work, 0);
    assert_eq!(a.wasted_ratio, 0.0);
    assert_eq!(a.useful_work, a.work, "every unit of work is canonical");

    // W, D, parallelism are internally consistent and non-degenerate:
    // the fork tree gives D strictly less than W on 2 processors.
    assert!(a.depth > 0 && a.depth < a.work);
    assert_eq!(a.parallelism, a.work as f64 / a.depth as f64);
    let shard_sum: u64 = a.per_shard.iter().map(|&(_, w)| w).sum();
    assert_eq!(shard_sum, a.work, "per-shard work partitions W");

    // Exact reproducibility: the scripted schedule is deterministic, so
    // a second identical run observes bit-identical W, D, and span
    // counts — the "exact W/D/parallelism" witness.
    let (b, _) = traced_run("clean-b", 2, FaultConfig::none());
    assert_eq!(
        (a.work, a.depth, a.spans_total),
        (b.work, b.depth, b.spans_total)
    );
    assert_eq!(a.parallelism, b.parallelism);

    // Single-processor run: the seating changes which arriver runs each
    // join-check (so W may shift by a few join capsules), but the DAG
    // stays complete and waste-free, and the critical path can only
    // shrink when nothing ever waits on a fork.
    let (c, _) = traced_run("clean-p1", 1, FaultConfig::none());
    assert_eq!(c.unresolved_parents, 0);
    assert_eq!(c.wasted_work, 0);
    assert!(c.depth <= c.work);
}

#[test]
fn kill_point_run_attributes_wasted_work_exactly_once() {
    // Processor 0 hard-faults mid-capsule at its 40th costed access;
    // processor 1 adopts its frame and re-executes. The schedule and the
    // fault point are both deterministic, so this run is replayable.
    let fault = FaultConfig::none().with_scheduled_hard_fault(0, 40);
    let (a, out) = traced_run("killed", 2, fault);

    // Exactly-once commits: the survivor's output equals the oracle —
    // re-execution never double-applies (§5 idempotence).
    assert_eq!(out, prefix_sum_seq(&input()));

    // The fault is visible in the trace: at least one execution was cut
    // off mid-capsule, and the analyzer charges its replay as waste.
    assert!(a.interrupted >= 1, "the victim's span has no end record");
    assert!(a.wasted_work > 0, "adoption re-execution is fault-wasted");
    assert!(a.wasted_ratio > 0.0 && a.wasted_ratio < 1.0);

    // Exactly-once accounting: every frame contributes exactly one
    // canonical execution, so committed work splits into the canonical
    // set plus committed duplicates — and the analyzer charges those
    // duplicates (plus a proxy per interrupted execution) as waste.
    assert!(a.useful_work <= a.work, "canonical set is a subset of W");
    assert!(
        a.wasted_work >= a.work - a.useful_work,
        "waste covers at least the committed duplicates"
    );

    // The DAG stays complete across the fault: the adopted re-execution
    // links back through the persistent frame's parent-span word.
    assert_eq!(a.unresolved_parents, 0, "adoption edge must resolve");
}
