//! Shared helpers for the Section 7 algorithms.
//!
//! The algorithms operate on word arrays in persistent regions. These
//! helpers perform *costed* range transfers at block granularity: a range
//! of `len` words costs `O(len/B + 1)` transfers, charged through the
//! processor context like every other access. Partial blocks at range
//! edges transfer only the covered words (still one unit each — the model
//! charges per block transfer).

use ppm_pm::{Addr, PmResult, ProcCtx, Word};

/// Reads `len` words starting at `start` (block-aligned transfers;
/// `O(len/B + 1)` cost).
pub fn pread_range(ctx: &mut ProcCtx, start: Addr, len: usize) -> PmResult<Vec<Word>> {
    let b = ctx.block_size();
    let mut out = vec![0u64; len];
    let mut pos = 0usize;
    while pos < len {
        let addr = start + pos;
        let in_block = b - (addr % b);
        let take = in_block.min(len - pos);
        ctx.read_block_into(addr, &mut out[pos..pos + take])?;
        pos += take;
    }
    Ok(out)
}

/// Writes `src` starting at `start` (block-aligned transfers;
/// `O(len/B + 1)` cost).
pub fn pwrite_range(ctx: &mut ProcCtx, start: Addr, src: &[Word]) -> PmResult<()> {
    let b = ctx.block_size();
    let mut pos = 0usize;
    while pos < src.len() {
        let addr = start + pos;
        let in_block = b - (addr % b);
        let take = in_block.min(src.len() - pos);
        ctx.write_block(addr, &src[pos..pos + take])?;
        pos += take;
    }
    Ok(())
}

/// Next power of two (≥ 1).
pub fn next_pow2(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

/// Integer ceiling division.
pub fn ceil_div(a: usize, b: usize) -> usize {
    a.div_ceil(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppm_core::Machine;
    use ppm_pm::PmConfig;

    fn setup() -> Machine {
        Machine::new(PmConfig::parallel(1, 1 << 16))
    }

    #[test]
    fn range_round_trip_unaligned() {
        let m = setup();
        let r = m.alloc_region(64);
        let mut ctx = m.ctx(0);
        ctx.begin_capsule("w");
        let data: Vec<u64> = (100..137).collect();
        pwrite_range(&mut ctx, r.at(3), &data).unwrap();
        ctx.complete_capsule();
        ctx.begin_capsule("r");
        let back = pread_range(&mut ctx, r.at(3), 37).unwrap();
        assert_eq!(back, data);
        // Neighbours untouched.
        assert_eq!(m.mem().load(r.at(2)), 0);
        assert_eq!(m.mem().load(r.at(40)), 0);
    }

    #[test]
    fn range_costs_are_blockwise() {
        let m = setup(); // B = 8
        let r = m.alloc_region(128);
        let mut ctx = m.ctx(0);
        ctx.begin_capsule("w");
        let before = ctx.stats().snapshot().total_writes;
        // 32 aligned words = 4 blocks = 4 writes.
        pwrite_range(&mut ctx, r.at(0), &[1u64; 32]).unwrap();
        assert_eq!(ctx.stats().snapshot().total_writes - before, 4);
        // 10 words starting at offset 5 (region is block-aligned): words
        // 5..15 span blocks [0..8) and [8..16) — two transfers.
        let before = ctx.stats().snapshot().total_writes;
        pwrite_range(&mut ctx, r.at(5), &[2u64; 10]).unwrap();
        assert_eq!(ctx.stats().snapshot().total_writes - before, 2);
    }

    #[test]
    fn helpers() {
        assert_eq!(next_pow2(0), 1);
        assert_eq!(next_pow2(1), 1);
        assert_eq!(next_pow2(3), 4);
        assert_eq!(next_pow2(8), 8);
        assert_eq!(ceil_div(9, 4), 3);
        assert_eq!(ceil_div(8, 4), 2);
    }
}
