//! Shared helpers for the Section 7 algorithms.
//!
//! The algorithms operate on word arrays in persistent regions. These
//! helpers perform *costed* range transfers at block granularity: a range
//! of `len` words costs `O(len/B + 1)` transfers, charged through the
//! processor context like every other access. Partial blocks at range
//! edges transfer only the covered words (still one unit each — the model
//! charges per block transfer).

use ppm_pm::{Addr, PmResult, ProcCtx, Word};

/// Reads `len` words starting at `start` (block-aligned transfers;
/// `O(len/B + 1)` cost).
pub fn pread_range(ctx: &mut ProcCtx, start: Addr, len: usize) -> PmResult<Vec<Word>> {
    let b = ctx.block_size();
    let mut out = vec![0u64; len];
    let mut pos = 0usize;
    while pos < len {
        let addr = start + pos;
        let in_block = b - (addr % b);
        let take = in_block.min(len - pos);
        ctx.read_block_into(addr, &mut out[pos..pos + take])?;
        pos += take;
    }
    Ok(out)
}

/// Writes `src` starting at `start` (block-aligned transfers;
/// `O(len/B + 1)` cost).
pub fn pwrite_range(ctx: &mut ProcCtx, start: Addr, src: &[Word]) -> PmResult<()> {
    let b = ctx.block_size();
    let mut pos = 0usize;
    while pos < src.len() {
        let addr = start + pos;
        let in_block = b - (addr % b);
        let take = in_block.min(src.len() - pos);
        ctx.write_block(addr, &src[pos..pos + take])?;
        pos += take;
    }
    Ok(())
}

/// Propagation-blocking scatter: per-bucket staging bins of one block
/// each, filled by sequential appends and streamed to the bucket's
/// destination cursor as they fill.
///
/// A naive scatter pays one block transfer *per element* when
/// destinations are spread across buckets (every write lands in a cold
/// block). Binning first turns that into one transfer per *block*: a
/// bin's spill writes `B` contiguous words, so moving `n` elements into
/// `k` buckets costs `O(n/B + k)` write transfers instead of `O(n)` —
/// the propagation-blocking idea, applied to the PPM cost model.
///
/// The first spill of each bucket is trimmed to the destination's block
/// boundary, so every later spill is a single aligned transfer. Bins are
/// ephemeral (`O(k·B)` words); callers bound `k` so the bins fit in `M`.
/// All writes go through the costed [`pwrite_range`] path, so the
/// combinator inherits restart-stability: re-running the capsule replays
/// identical appends to identical addresses.
pub struct BlockScatter {
    /// Per-bucket staging bins (≤ one block each).
    bins: Vec<Vec<Word>>,
    /// Per-bucket destination cursor: where the next spill lands.
    cursors: Vec<Addr>,
    /// Block size `B` — the bin capacity once a cursor is aligned.
    block: usize,
}

impl BlockScatter {
    /// Creates a scatter with `dests[j]` as bucket `j`'s first
    /// destination address. Destination ranges must be disjoint.
    pub fn new(ctx: &ProcCtx, dests: Vec<Addr>) -> BlockScatter {
        let block = ctx.block_size();
        BlockScatter {
            bins: vec![Vec::with_capacity(block); dests.len()],
            cursors: dests,
            block,
        }
    }

    /// Words bucket `j`'s bin holds before its next spill: up to the
    /// destination's block boundary, so spills after the first are
    /// aligned single transfers.
    #[inline]
    fn bin_capacity(&self, j: usize) -> usize {
        self.block - self.cursors[j] % self.block
    }

    /// Streams bucket `j`'s bin to its destination and advances the
    /// cursor.
    fn spill(&mut self, ctx: &mut ProcCtx, j: usize) -> PmResult<()> {
        pwrite_range(ctx, self.cursors[j], &self.bins[j])?;
        self.cursors[j] += self.bins[j].len();
        self.bins[j].clear();
        Ok(())
    }

    /// Appends one word to bucket `j` (sequential; spills on a full bin).
    #[inline]
    pub fn push(&mut self, ctx: &mut ProcCtx, j: usize, w: Word) -> PmResult<()> {
        self.bins[j].push(w);
        if self.bins[j].len() >= self.bin_capacity(j) {
            self.spill(ctx, j)?;
        }
        Ok(())
    }

    /// Appends a run of words to bucket `j`, spilling full bins as they
    /// form.
    pub fn push_run(&mut self, ctx: &mut ProcCtx, j: usize, mut ws: &[Word]) -> PmResult<()> {
        while !ws.is_empty() {
            let room = self.bin_capacity(j) - self.bins[j].len();
            let take = room.min(ws.len());
            self.bins[j].extend_from_slice(&ws[..take]);
            ws = &ws[take..];
            if self.bins[j].len() >= self.bin_capacity(j) {
                self.spill(ctx, j)?;
            }
        }
        Ok(())
    }

    /// Streams every partial bin (call once, after the last append).
    pub fn flush(&mut self, ctx: &mut ProcCtx) -> PmResult<()> {
        for j in 0..self.bins.len() {
            if !self.bins[j].is_empty() {
                self.spill(ctx, j)?;
            }
        }
        Ok(())
    }
}

/// The naive per-element scatter the blocked combinator is measured
/// against: one costed write per `(bucket, word)` pair, each landing in
/// whatever block its destination cursor points at.
pub fn scatter_naive(
    ctx: &mut ProcCtx,
    dests: &mut [Addr],
    pairs: impl IntoIterator<Item = (usize, Word)>,
) -> PmResult<()> {
    for (j, w) in pairs {
        ctx.pwrite(dests[j], w)?;
        dests[j] += 1;
    }
    Ok(())
}

/// Next power of two (≥ 1).
pub fn next_pow2(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

/// Integer ceiling division.
pub fn ceil_div(a: usize, b: usize) -> usize {
    a.div_ceil(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppm_core::Machine;
    use ppm_pm::PmConfig;

    fn setup() -> Machine {
        Machine::new(PmConfig::parallel(1, 1 << 16))
    }

    #[test]
    fn range_round_trip_unaligned() {
        let m = setup();
        let r = m.alloc_region(64);
        let mut ctx = m.ctx(0);
        ctx.begin_capsule("w");
        let data: Vec<u64> = (100..137).collect();
        pwrite_range(&mut ctx, r.at(3), &data).unwrap();
        ctx.complete_capsule();
        ctx.begin_capsule("r");
        let back = pread_range(&mut ctx, r.at(3), 37).unwrap();
        assert_eq!(back, data);
        // Neighbours untouched.
        assert_eq!(m.mem().load(r.at(2)), 0);
        assert_eq!(m.mem().load(r.at(40)), 0);
    }

    #[test]
    fn range_costs_are_blockwise() {
        let m = setup(); // B = 8
        let r = m.alloc_region(128);
        let mut ctx = m.ctx(0);
        ctx.begin_capsule("w");
        let before = ctx.stats().snapshot().total_writes;
        // 32 aligned words = 4 blocks = 4 writes.
        pwrite_range(&mut ctx, r.at(0), &[1u64; 32]).unwrap();
        assert_eq!(ctx.stats().snapshot().total_writes - before, 4);
        // 10 words starting at offset 5 (region is block-aligned): words
        // 5..15 span blocks [0..8) and [8..16) — two transfers.
        let before = ctx.stats().snapshot().total_writes;
        pwrite_range(&mut ctx, r.at(5), &[2u64; 10]).unwrap();
        assert_eq!(ctx.stats().snapshot().total_writes - before, 2);
    }

    #[test]
    fn block_scatter_matches_naive_and_costs_blockwise() {
        let m = setup(); // B = 8
        let n = 256;
        let buckets = 4;
        let blocked = m.alloc_region(n);
        let naive = m.alloc_region(n);
        // Deterministic skewed assignment; bucket j's range is [offs[j], offs[j+1]).
        let assign: Vec<usize> = (0..n).map(|i| (i * i + i / 3) % buckets).collect();
        let mut counts = vec![0usize; buckets];
        for &j in &assign {
            counts[j] += 1;
        }
        let offs: Vec<usize> = counts
            .iter()
            .scan(0, |acc, c| {
                let o = *acc;
                *acc += c;
                Some(o)
            })
            .collect();

        let mut ctx = m.ctx(0);
        ctx.begin_capsule("blocked");
        let before = ctx.stats().snapshot().total_writes;
        let mut sc = BlockScatter::new(&ctx, offs.iter().map(|o| blocked.at(*o)).collect());
        for (i, &j) in assign.iter().enumerate() {
            sc.push(&mut ctx, j, 1000 + i as Word).unwrap();
        }
        sc.flush(&mut ctx).unwrap();
        let w_blocked = ctx.stats().snapshot().total_writes - before;
        ctx.complete_capsule();

        ctx.begin_capsule("naive");
        let before = ctx.stats().snapshot().total_writes;
        let mut cursors: Vec<Addr> = offs.iter().map(|o| naive.at(*o)).collect();
        scatter_naive(
            &mut ctx,
            &mut cursors,
            assign
                .iter()
                .enumerate()
                .map(|(i, &j)| (j, 1000 + i as Word)),
        )
        .unwrap();
        let w_naive = ctx.stats().snapshot().total_writes - before;
        ctx.complete_capsule();

        // Same permutation of the input lands in both regions.
        let read = |r: ppm_pm::Region| (0..n).map(|i| m.mem().load(r.at(i))).collect::<Vec<_>>();
        assert_eq!(read(blocked), read(naive));
        // Blocked: ~n/B full-block spills (+ ≤1 partial per bucket); naive:
        // one transfer per element.
        assert_eq!(w_naive, n as u64);
        assert!(
            w_blocked <= (n / 8 + 2 * buckets) as u64,
            "blocked scatter cost {w_blocked} not block-granular"
        );
    }

    #[test]
    fn block_scatter_aligns_after_first_spill() {
        let m = setup(); // B = 8
        let r = m.alloc_region(64);
        let mut ctx = m.ctx(0);
        ctx.begin_capsule("align");
        // One bucket starting 3 words into a block: the first spill is
        // trimmed to 5 words, then every full spill is one aligned block.
        let mut sc = BlockScatter::new(&ctx, vec![r.at(3)]);
        let before = ctx.stats().snapshot().total_writes;
        for i in 0..29u64 {
            sc.push(&mut ctx, 0, i + 1).unwrap();
        }
        sc.flush(&mut ctx).unwrap();
        let w = ctx.stats().snapshot().total_writes - before;
        // 5 (trim) + 8 + 8 + 8 = 29 words in 4 transfers.
        assert_eq!(w, 4);
        for i in 0..29u64 {
            assert_eq!(m.mem().load(r.at(3 + i as usize)), i + 1);
        }
        assert_eq!(m.mem().load(r.at(2)), 0);
        assert_eq!(m.mem().load(r.at(32)), 0);
    }

    #[test]
    fn helpers() {
        assert_eq!(next_pow2(0), 1);
        assert_eq!(next_pow2(1), 1);
        assert_eq!(next_pow2(3), 4);
        assert_eq!(next_pow2(8), 8);
        assert_eq!(ceil_div(9, 4), 3);
        assert_eq!(ceil_div(8, 4), 2);
    }
}
