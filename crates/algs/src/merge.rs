//! Parallel merging (§7, Theorem 7.2).
//!
//! "The algorithm conducts dual binary searches of the arrays in parallel
//! to find the elements ranked {n^{2/3}, 2n^{2/3}, ...} among the set of
//! keys from both arrays, and recurses on each pair of subarrays until the
//! base case when there are no more than B elements left. We put each of
//! the binary searches into a capsule, as well as each base case."
//!
//! Split points are written to fresh pool allocations (§4.1), so every
//! capsule writes to locations disjoint from what it reads — write-after-
//! read conflict free. A binary-search capsule performs O(log n) word
//! reads, which is the Theorem 7.2 maximum capsule work; base cases are
//! O(1) block transfers.

use std::sync::Arc;

use ppm_core::dsl::K;
use ppm_core::persist::{Persist, ValueError, WordReader};
use ppm_core::{comp_dyn, comp_nop, comp_seq, comp_step, par_all, Comp, Machine, PComp};
use ppm_pm::{Addr, PmResult, ProcCtx, Region, Word};

use crate::util::{ceil_div, pread_range, pwrite_range};

/// A range of a persistent region holding a sorted run of words.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Run {
    pub region: Region,
    pub lo: usize,
    pub hi: usize,
}

impl Run {
    pub(crate) fn len(&self) -> usize {
        self.hi - self.lo
    }
    fn at(&self, i: usize) -> Addr {
        self.region.at(self.lo + i)
    }
}

/// Runs ride inside mergesort/samplesort frame states.
impl Persist for Run {
    const WORDS: usize = Region::WORDS + 2;
    fn encode(&self, out: &mut Vec<Word>) {
        self.region.encode(out);
        self.lo.encode(out);
        self.hi.encode(out);
    }
    fn decode(r: &mut WordReader<'_>) -> Result<Self, ValueError> {
        Ok(Run {
            region: Region::decode(r)?,
            lo: usize::decode(r)?,
            hi: usize::decode(r)?,
        })
    }

    fn pool_refs(&self, out: &mut ppm_core::PoolRefs) {
        self.region.pool_refs(out);
    }
}

/// Base-case size: merge sequentially once `≤ B` elements remain (the
/// paper's rule; a floor of 2 keeps degenerate B = 1 configurations from
/// recursing on single elements forever).
pub(crate) fn base_size(b: usize) -> usize {
    b.max(2)
}

/// Dual binary search: the number of elements `sa` to take from `a` such
/// that `(sa, r - sa)` splits the merged order at rank `r`. O(log) costed
/// word reads.
pub(crate) fn split_rank(ctx: &mut ProcCtx, a: Run, b: Run, r: usize) -> PmResult<usize> {
    let (na, nb) = (a.len(), b.len());
    debug_assert!(r <= na + nb);
    let mut lo = r.saturating_sub(nb);
    let mut hi = r.min(na);
    while lo < hi {
        let sa = (lo + hi) / 2; // sa < hi <= min(r, na) ⇒ a[sa] and b[r-sa-1] valid
        let sb = r - sa; // sb >= r - hi + 1 >= 1
        let av = ctx.pread(a.at(sa))?;
        let bv = ctx.pread(b.at(sb - 1))?;
        if av < bv {
            lo = sa + 1;
        } else {
            hi = sa;
        }
    }
    Ok(lo)
}

/// The sequential base case: one capsule reading both runs and writing the
/// merged output range.
fn merge_base(a: Run, b: Run, out: Region, olo: usize) -> Comp {
    comp_step("merge/base", move |ctx: &mut ProcCtx| {
        // Empty runs can sit exactly at a region's end; never form their
        // address.
        let av = if a.len() > 0 {
            pread_range(ctx, a.region.at(a.lo), a.len())?
        } else {
            Vec::new()
        };
        let bv = if b.len() > 0 {
            pread_range(ctx, b.region.at(b.lo), b.len())?
        } else {
            Vec::new()
        };
        let mut merged = Vec::with_capacity(av.len() + bv.len());
        let (mut i, mut j) = (0, 0);
        while i < av.len() && j < bv.len() {
            if av[i] <= bv[j] {
                merged.push(av[i]);
                i += 1;
            } else {
                merged.push(bv[j]);
                j += 1;
            }
        }
        merged.extend_from_slice(&av[i..]);
        merged.extend_from_slice(&bv[j..]);
        if merged.is_empty() {
            return Ok(());
        }
        pwrite_range(ctx, out.at(olo), &merged)
    })
}

/// Merges sorted runs `a` and `b` into `out[olo..olo + |a| + |b|)`.
/// Reused by mergesort; the public interface is [`Merge`].
pub(crate) fn merge_runs(a: Run, b: Run, out: Region, olo: usize) -> Comp {
    comp_dyn("merge/split", move |ctx: &mut ProcCtx| {
        let n = a.len() + b.len();
        let bs = base_size(ctx.block_size());
        if n <= bs {
            return Ok(merge_base(a, b, out, olo));
        }
        // k-way split at ranks i·⌈n/k⌉, k ≈ n^{1/3}.
        let k = ((n as f64).cbrt().ceil() as usize).clamp(2, n);
        let piece = ceil_div(n, k);
        let nsplits = k - 1;
        // Fresh, restart-stable scratch for the split points.
        let splits = ctx.palloc(nsplits);

        // Phase 1: the k-1 dual binary searches, in parallel, one capsule
        // each (O(log n) capsule work).
        let searches: Vec<Comp> = (0..nsplits)
            .map(|i| {
                comp_step("merge/search", move |ctx: &mut ProcCtx| {
                    let r = ((i + 1) * piece).min(a.len() + b.len());
                    let sa = split_rank(ctx, a, b, r)?;
                    ctx.pwrite(splits + i, sa as Word)
                })
            })
            .collect();

        // Phase 2: recurse on each pair of subranges. Each piece's first
        // capsule reads only its own two boundary words (O(1)).
        let pieces: Vec<Comp> = (0..k)
            .map(|i| {
                comp_dyn("merge/recurse", move |ctx: &mut ProcCtx| {
                    let n = a.len() + b.len();
                    let (r0, r1) = ((i * piece).min(n), ((i + 1) * piece).min(n));
                    let sa0 = if i == 0 {
                        0
                    } else {
                        ctx.pread(splits + (i - 1))? as usize
                    };
                    let sa1 = if i + 1 == k {
                        a.len()
                    } else {
                        ctx.pread(splits + i)? as usize
                    };
                    let (sb0, sb1) = (r0 - sa0, r1 - sa1);
                    let sub_a = Run {
                        region: a.region,
                        lo: a.lo + sa0,
                        hi: a.lo + sa1,
                    };
                    let sub_b = Run {
                        region: b.region,
                        lo: b.lo + sb0,
                        hi: b.lo + sb1,
                    };
                    Ok(merge_runs(sub_a, sub_b, out, olo + r0))
                })
            })
            .collect();

        Ok(comp_seq(par_all(searches), par_all(pieces)))
    })
}

/// A merge instance: two sorted input arrays and the output.
#[derive(Debug, Clone, Copy)]
pub struct Merge {
    /// First sorted input (length `la`).
    pub a: Region,
    /// Second sorted input (length `lb`).
    pub b: Region,
    /// Output (length `la + lb`).
    pub out: Region,
    la: usize,
    lb: usize,
}

impl Merge {
    /// Carves regions for merging arrays of lengths `la` and `lb`.
    pub fn new(machine: &Machine, la: usize, lb: usize) -> Self {
        Merge {
            a: machine.alloc_region(la.max(1)),
            b: machine.alloc_region(lb.max(1)),
            out: machine.alloc_region((la + lb).max(1)),
            la,
            lb,
        }
    }

    /// Loads both inputs (uncosted setup). Each must be sorted.
    pub fn load_inputs(&self, machine: &Machine, a: &[Word], b: &[Word]) {
        assert_eq!((a.len(), b.len()), (self.la, self.lb));
        debug_assert!(a.windows(2).all(|w| w[0] <= w[1]), "input a must be sorted");
        debug_assert!(b.windows(2).all(|w| w[0] <= w[1]), "input b must be sorted");
        for (i, v) in a.iter().enumerate() {
            machine.mem().store(self.a.at(i), *v);
        }
        for (i, v) in b.iter().enumerate() {
            machine.mem().store(self.b.at(i), *v);
        }
    }

    /// Reads the merged output (oracle).
    pub fn read_output(&self, machine: &Machine) -> Vec<Word> {
        (0..self.la + self.lb)
            .map(|i| machine.mem().load(self.out.at(i)))
            .collect()
    }

    /// The merging computation.
    pub fn comp(&self) -> Comp {
        if self.la + self.lb == 0 {
            return comp_nop();
        }
        let a = Run {
            region: self.a,
            lo: 0,
            hi: self.la,
        };
        let b = Run {
            region: self.b,
            lo: 0,
            hi: self.lb,
        };
        merge_runs(a, b, self.out, 0)
    }

    /// The merge as registered persistent capsules, for
    /// `ppm_sched::Runtime::run_or_recover` (reuses the mergesort
    /// family's merge capsule — a binary median-rank split, see
    /// [`crate::MergeSort::pcomp`]'s notes). An empty merge's root is the
    /// finale itself.
    pub fn pcomp(&self) -> PComp {
        let s = *self;
        Arc::new(move |machine: &Machine, finale: Word| {
            let caps = crate::sort::MsortCapsules::declare(machine);
            if s.la + s.lb == 0 {
                return finale;
            }
            caps.merge
                .setup(
                    machine,
                    &crate::sort::MergeState {
                        a: Run {
                            region: s.a,
                            lo: 0,
                            hi: s.la,
                        },
                        b: Run {
                            region: s.b,
                            lo: 0,
                            hi: s.lb,
                        },
                        out: s.out,
                        olo: 0,
                    },
                    K(finale),
                )
                .word()
        })
    }
}

/// Sequential oracle.
pub fn merge_seq(a: &[Word], b: &[Word]) -> Vec<Word> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if a[i] <= b[j] {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppm_pm::{FaultConfig, PmConfig};
    use ppm_sched::{Runtime, SchedConfig};

    fn sorted(seed: u64, n: usize) -> Vec<u64> {
        let mut v: Vec<u64> = (0..n as u64)
            .map(|i| {
                let x = i.wrapping_mul(0x9E37_79B9).wrapping_add(seed);
                (x ^ (x >> 13)) % 10_000
            })
            .collect();
        v.sort_unstable();
        v
    }

    fn runtime(procs: usize, f: FaultConfig) -> Runtime {
        Runtime::new(
            Machine::new(PmConfig::parallel(procs, 1 << 22).with_fault(f)),
            SchedConfig::with_slots(1 << 13),
        )
    }

    fn check(la: usize, lb: usize, procs: usize, f: FaultConfig) {
        let rt = runtime(procs, f);
        let mg = Merge::new(rt.machine(), la, lb);
        let (a, b) = (sorted(1, la), sorted(2, lb));
        mg.load_inputs(rt.machine(), &a, &b);
        let rep = rt.run_or_replay(&mg.comp());
        assert!(rep.completed());
        assert_eq!(
            mg.read_output(rt.machine()),
            merge_seq(&a, &b),
            "la={la} lb={lb}"
        );
    }

    fn check_registered(la: usize, lb: usize, procs: usize, f: FaultConfig) {
        let rt = runtime(procs, f);
        let mg = Merge::new(rt.machine(), la, lb);
        let (a, b) = (sorted(3, la), sorted(4, lb));
        mg.load_inputs(rt.machine(), &a, &b);
        let rep = rt.run_or_recover(&mg.pcomp());
        assert!(rep.completed());
        assert_eq!(
            mg.read_output(rt.machine()),
            merge_seq(&a, &b),
            "registered la={la} lb={lb}"
        );
    }

    #[test]
    fn registered_merge_matches_oracle() {
        check_registered(0, 0, 1, FaultConfig::none());
        check_registered(0, 5, 1, FaultConfig::none());
        check_registered(16, 16, 1, FaultConfig::none());
        check_registered(1000, 10, 2, FaultConfig::none());
        check_registered(1 << 11, 1 << 11, 4, FaultConfig::none());
    }

    #[test]
    fn registered_merge_with_soft_faults() {
        check_registered(400, 400, 2, FaultConfig::soft(0.005, 13));
    }

    #[test]
    fn tiny_and_base_cases() {
        check(0, 5, 1, FaultConfig::none());
        check(5, 0, 1, FaultConfig::none());
        check(3, 3, 1, FaultConfig::none());
        check(16, 16, 1, FaultConfig::none());
    }

    #[test]
    fn uneven_sizes() {
        check(1000, 10, 2, FaultConfig::none());
        check(10, 1000, 2, FaultConfig::none());
    }

    #[test]
    fn medium_parallel() {
        check(1 << 11, 1 << 11, 4, FaultConfig::none());
    }

    #[test]
    fn duplicate_heavy() {
        let rt = runtime(2, FaultConfig::none());
        let mg = Merge::new(rt.machine(), 300, 300);
        let a = vec![5u64; 300];
        let mut b = vec![5u64; 300];
        b[299] = 6;
        mg.load_inputs(rt.machine(), &a, &b);
        let rep = rt.run_or_replay(&mg.comp());
        assert!(rep.completed());
        assert_eq!(mg.read_output(rt.machine()), merge_seq(&a, &b));
    }

    #[test]
    fn with_soft_faults() {
        for seed in 0..3 {
            check(400, 400, 2, FaultConfig::soft(0.005, seed));
        }
    }

    #[test]
    fn with_a_hard_fault() {
        check(
            512,
            512,
            3,
            FaultConfig::none().with_scheduled_hard_fault(2, 200),
        );
    }

    #[test]
    fn work_is_linear_in_n() {
        let work = |n: usize| {
            let rt = runtime(1, FaultConfig::none());
            let mg = Merge::new(rt.machine(), n, n);
            mg.load_inputs(rt.machine(), &sorted(1, n), &sorted(2, n));
            let rep = rt.run_or_replay(&mg.comp());
            assert!(rep.completed());
            rep.stats().total_work()
        };
        let (w1, w2) = (work(1 << 10), work(1 << 12));
        let ratio = w2 as f64 / w1 as f64;
        assert!(
            (3.0..6.0).contains(&ratio),
            "4x data should be ~4x work (plus lower-order search terms), got {ratio}"
        );
    }

    #[test]
    fn capsule_work_is_logarithmic() {
        let rt = runtime(1, FaultConfig::none());
        let n = 1 << 12;
        let mg = Merge::new(rt.machine(), n, n);
        mg.load_inputs(rt.machine(), &sorted(1, n), &sorted(2, n));
        let rep = rt.run_or_replay(&mg.comp());
        assert!(rep.completed());
        // O(log n): 2 reads per bisection step + constants; log2(8192)=13.
        assert!(
            rep.stats().max_capsule_work <= 40,
            "C = {} should be O(log n)",
            rep.stats().max_capsule_work
        );
    }
}
