//! Matrix multiplication (§7, Theorem 7.4).
//!
//! The standard 8-way recursive multiply. "Every pair of submatrix
//! multiplications shares the same output location. This leads to
//! write-after-read conflicts ... Therefore, the algorithm allocates two
//! copies of temporary space for the output in each recursive subtask,
//! which allows applying computation for the matrix multiplication in two
//! subtasks on different output spaces (with no conflicts), and eventually
//! adding computed values from the temporary space back to the original
//! output space."
//!
//! Recursion stops when a subproblem fits in the ephemeral memory (three
//! `size × size` tiles ≤ M), computed inside one capsule: maximum capsule
//! work O(M/B + √M) = O(M^{3/2})-bounded, matching the theorem's shape.
//! Temporaries come from the restart-stable pool allocator; the pool is
//! never freed (the paper's bump allocator, §4.1), so total temporary
//! space is O(n³/√M) rather than the paper's work-stealing-stack bound of
//! O(P^{1/3}·n²) — a space-only simplification recorded in DESIGN.md.

use std::sync::Arc;

use ppm_core::dsl::{fork_many, CapsuleDef, CapsuleSet, Span, Step, K};
use ppm_core::{comp_dyn, comp_seq, comp_step, par_all, persist_struct, Comp, Machine, PComp};
use ppm_pm::{ProcCtx, Region, Word};

use crate::util::{next_pow2, pread_range, pwrite_range};

persist_struct! {
    /// A square view into a row-major matrix stored in a region.
    struct MView {
        region: Region,
        row0: usize,
        col0: usize,
        stride: usize,
    }
}

impl MView {
    fn addr(&self, i: usize, j: usize) -> usize {
        self.region
            .at((self.row0 + i) * self.stride + self.col0 + j)
    }

    fn quadrant(&self, qi: usize, qj: usize, half: usize) -> MView {
        MView {
            region: self.region,
            row0: self.row0 + qi * half,
            col0: self.col0 + qj * half,
            stride: self.stride,
        }
    }
}

/// Reads a `size × size` view (blocked row reads).
fn read_view(ctx: &mut ProcCtx, v: MView, size: usize) -> ppm_pm::PmResult<Vec<Word>> {
    let mut out = Vec::with_capacity(size * size);
    for i in 0..size {
        out.extend(pread_range(ctx, v.addr(i, 0), size)?);
    }
    Ok(out)
}

/// Writes a `size × size` view.
fn write_view(ctx: &mut ProcCtx, v: MView, size: usize, data: &[Word]) -> ppm_pm::PmResult<()> {
    for i in 0..size {
        pwrite_range(ctx, v.addr(i, 0), &data[i * size..(i + 1) * size])?;
    }
    Ok(())
}

/// Largest tile dimension whose three operand tiles fit the ephemeral
/// memory.
fn base_dim(m_eph: usize) -> usize {
    (((m_eph / 4) as f64).sqrt() as usize).max(1)
}

/// The base-case body: `c = a·b` for a tile that fits in ephemeral
/// memory. Shared by both forms.
fn mult_base_body(
    ctx: &mut ProcCtx,
    a: MView,
    b: MView,
    c: MView,
    size: usize,
) -> ppm_pm::PmResult<()> {
    let av = read_view(ctx, a, size)?;
    let bv = read_view(ctx, b, size)?;
    let mut cv = vec![0u64; size * size];
    for i in 0..size {
        for k in 0..size {
            let aik = av[i * size + k];
            if aik == 0 {
                continue;
            }
            for j in 0..size {
                cv[i * size + j] =
                    cv[i * size + j].wrapping_add(aik.wrapping_mul(bv[k * size + j]));
            }
        }
    }
    write_view(ctx, c, size, &cv)
}

/// The base case: one capsule computing `c = a·b` for a tile that fits in
/// ephemeral memory.
fn mult_base(a: MView, b: MView, c: MView, size: usize) -> Comp {
    comp_step("matmul/base", move |ctx: &mut ProcCtx| {
        mult_base_body(ctx, a, b, c, size)
    })
}

/// The elementwise-addition body for rows `[r0, r1)` of `c = t1 + t2`.
/// Shared by both forms.
fn add_rows_body(
    ctx: &mut ProcCtx,
    t1: MView,
    t2: MView,
    c: MView,
    size: usize,
    r0: usize,
    r1: usize,
) -> ppm_pm::PmResult<()> {
    for i in r0..r1 {
        let x = pread_range(ctx, t1.addr(i, 0), size)?;
        let y = pread_range(ctx, t2.addr(i, 0), size)?;
        let sum: Vec<Word> = x.iter().zip(&y).map(|(p, q)| p.wrapping_add(*q)).collect();
        pwrite_range(ctx, c.addr(i, 0), &sum)?;
    }
    Ok(())
}

/// The elementwise addition `c = t1 + t2`, chunked so each capsule fits
/// the ephemeral memory.
fn add_views(t1: MView, t2: MView, c: MView, size: usize) -> Comp {
    comp_dyn("matmul/add", move |ctx: &mut ProcCtx| {
        let rows_per = (ctx.ephemeral_words() / (4 * size)).max(1);
        let chunks: Vec<Comp> = (0..size.div_ceil(rows_per))
            .map(|ch| {
                comp_step("matmul/add-chunk", move |ctx: &mut ProcCtx| {
                    let r0 = ch * rows_per;
                    let r1 = ((ch + 1) * rows_per).min(size);
                    add_rows_body(ctx, t1, t2, c, size, r0, r1)
                })
            })
            .collect();
        Ok(par_all(chunks))
    })
}

/// Recursive multiply `c = a·b` (`size` is a power of two).
fn mult_rec(a: MView, b: MView, c: MView, size: usize) -> Comp {
    comp_dyn("matmul/split", move |ctx: &mut ProcCtx| {
        if size <= base_dim(ctx.ephemeral_words()) {
            return Ok(mult_base(a, b, c, size));
        }
        let half = size / 2;
        // Two temporaries, each size×size, from the restart-stable pool.
        let t1 = MView {
            region: Region {
                start: ctx.palloc(size * size),
                len: size * size,
            },
            row0: 0,
            col0: 0,
            stride: size,
        };
        let t2 = MView {
            region: Region {
                start: ctx.palloc(size * size),
                len: size * size,
            },
            row0: 0,
            col0: 0,
            stride: size,
        };
        // T1 ← first terms, T2 ← second terms of each C quadrant.
        let mut products = Vec::with_capacity(8);
        for qi in 0..2 {
            for qj in 0..2 {
                let a1 = a.quadrant(qi, 0, half);
                let b1 = b.quadrant(0, qj, half);
                products.push(mult_rec(a1, b1, t1.quadrant(qi, qj, half), half));
                let a2 = a.quadrant(qi, 1, half);
                let b2 = b.quadrant(1, qj, half);
                products.push(mult_rec(a2, b2, t2.quadrant(qi, qj, half), half));
            }
        }
        Ok(comp_seq(par_all(products), add_views(t1, t2, c, size)))
    })
}

// ====================================================================
// Registered (typed DSL) matrix multiply
// ====================================================================

persist_struct! {
    /// One recursive multiply task: `c = a·b` over `size × size` views.
    struct MulState {
        a: MView,
        b: MView,
        c: MView,
        size: usize,
    }
}

persist_struct! {
    /// Environment of the addition phase: `c = t1 + t2`, row-parallel.
    struct AddEnv {
        t1: MView,
        t2: MView,
        c: MView,
        size: usize,
    }
}

/// The matrix-multiply capsule family on the typed DSL — the
/// defunctionalized twin of [`MatMul::comp`]: one multiply capsule whose
/// eight recursive products fan out through `fork_many`, joined into a
/// row-parallel addition map.
#[derive(Debug, Clone, Copy)]
pub(crate) struct MmCapsules {
    mul: CapsuleDef<MulState>,
}

impl MmCapsules {
    /// Declares (idempotently) the matmul capsules on `machine`'s
    /// registry and installs their bodies.
    pub(crate) fn declare(machine: &Machine) -> MmCapsules {
        let mut set = CapsuleSet::new(machine);
        let mul = set.declare::<MulState>("matmul/mul");

        let add_leaf = set.define("matmul/add-rows", |st: &Span<AddEnv>, k, ctx| {
            let e = st.env;
            add_rows_body(ctx, e.t1, e.t2, e.c, e.size, st.lo, st.hi)?;
            Ok(Step::Jump(k))
        });
        let add_map = set.map_grain("matmul/add", 1, add_leaf);

        set.body(mul, move |st: &MulState, k, ctx| {
            let size = st.size;
            if size <= base_dim(ctx.ephemeral_words()) {
                mult_base_body(ctx, st.a, st.b, st.c, size)?;
                return Ok(Step::Jump(k));
            }
            let half = size / 2;
            // Two temporaries, each size×size, from the restart-stable
            // pool (the paper's copy-out trick against write-after-read
            // conflicts on the shared output).
            let view = |start: usize| MView {
                region: Region {
                    start,
                    len: size * size,
                },
                row0: 0,
                col0: 0,
                stride: size,
            };
            let t1 = view(ctx.palloc(size * size));
            let t2 = view(ctx.palloc(size * size));
            let add_entry = add_map.frame(
                ctx,
                &Span {
                    env: AddEnv {
                        t1,
                        t2,
                        c: st.c,
                        size,
                    },
                    lo: 0,
                    hi: size,
                },
                k,
            )?;
            // T1 ← first terms, T2 ← second terms of each C quadrant.
            let mut products = Vec::with_capacity(8);
            for qi in 0..2 {
                for qj in 0..2 {
                    products.push(MulState {
                        a: st.a.quadrant(qi, 0, half),
                        b: st.b.quadrant(0, qj, half),
                        c: t1.quadrant(qi, qj, half),
                        size: half,
                    });
                    products.push(MulState {
                        a: st.a.quadrant(qi, 1, half),
                        b: st.b.quadrant(1, qj, half),
                        c: t2.quadrant(qi, qj, half),
                        size: half,
                    });
                }
            }
            fork_many(ctx, mul, &products, add_entry)
        });

        MmCapsules { mul }
    }
}

/// Pool words one processor may need for multiplying padded dimension
/// `n_pad` with ephemeral memory `m_eph` (worst case: one processor
/// expands every node: 2·n³/base_dim temporary words, plus slack).
///
/// **Assumes checkpoint GC** (`ppm_sched::checkpoint`, on by default) —
/// see [`crate::sort::samplesort_pool_words`] for the caveat; a run with
/// checkpointing disabled that must survive crash resume or hard-fault
/// adoption should roughly double this budget (the pre-GC sizing).
pub fn matmul_pool_words(n: usize, m_eph: usize) -> usize {
    let np = next_pow2(n);
    let bd = base_dim(m_eph);
    if np <= bd {
        1 << 12
    } else {
        // Temporaries: sum over levels of 2·(nodes)·(size²) = 2n²(2^L − 1)
        // ≈ 2n³/bd, plus fork closures and join cells (tens of words per
        // node); 3·n³/bd covers both with slack. The registered form also
        // writes typed frames for the eight products, the fork-pair tree
        // and the per-row add map — ≈ 52·size words per node (frames grew
        // a parent-span provenance word), which sums to ≈ 52·n³/bd² and
        // dominates at small base dimensions. The
        // pre-checkpoint sizing (PR 3) doubled both terms because a
        // crash-resumed (or hard-fault-adopted) run re-allocated above
        // the dead run's watermark; checkpoint GC (`ppm_sched::checkpoint`,
        // on by default) now caps that re-allocation at one epoch's
        // churn, so the doubling is gone.
        let cube = np * np * (np / bd).max(1);
        3 * cube + 52 * cube / bd.max(1) + (1 << 15)
    }
}

/// A matrix-multiply instance: `c = a · b`, all `n × n` row-major.
#[derive(Debug, Clone, Copy)]
pub struct MatMul {
    /// Left operand.
    pub a: Region,
    /// Right operand.
    pub b: Region,
    /// Product.
    pub c: Region,
    n: usize,
    n_pad: usize,
}

impl MatMul {
    /// Carves regions for an `n × n` multiply (padded internally to the
    /// next power of two). Build the machine with
    /// [`matmul_pool_words`]-sized pools.
    pub fn new(machine: &Machine, n: usize) -> Self {
        assert!(n > 0);
        let n_pad = next_pow2(n);
        MatMul {
            a: machine.alloc_region(n_pad * n_pad),
            b: machine.alloc_region(n_pad * n_pad),
            c: machine.alloc_region(n_pad * n_pad),
            n,
            n_pad,
        }
    }

    /// Loads both operands (row-major, `n × n`; uncosted setup).
    pub fn load_inputs(&self, machine: &Machine, a: &[Word], b: &[Word]) {
        assert_eq!(a.len(), self.n * self.n);
        assert_eq!(b.len(), self.n * self.n);
        for i in 0..self.n {
            for j in 0..self.n {
                machine
                    .mem()
                    .store(self.a.at(i * self.n_pad + j), a[i * self.n + j]);
                machine
                    .mem()
                    .store(self.b.at(i * self.n_pad + j), b[i * self.n + j]);
            }
        }
    }

    /// Reads the product (row-major, `n × n`; oracle).
    pub fn read_output(&self, machine: &Machine) -> Vec<Word> {
        let mut out = Vec::with_capacity(self.n * self.n);
        for i in 0..self.n {
            for j in 0..self.n {
                out.push(machine.mem().load(self.c.at(i * self.n_pad + j)));
            }
        }
        out
    }

    /// The multiplication computation.
    pub fn comp(&self) -> Comp {
        let v = |region: Region| MView {
            region,
            row0: 0,
            col0: 0,
            stride: self.n_pad,
        };
        mult_rec(v(self.a), v(self.b), v(self.c), self.n_pad)
    }

    /// The multiplication as registered persistent capsules, for
    /// `ppm_sched::Runtime::run_or_recover`: every recursive product,
    /// fork-pair fan-out node, and addition row is a typed frame, so a
    /// killed run resumes mid-recursion.
    pub fn pcomp(&self) -> PComp {
        let s = *self;
        Arc::new(move |machine: &Machine, finale: Word| {
            let caps = MmCapsules::declare(machine);
            let v = |region: Region| MView {
                region,
                row0: 0,
                col0: 0,
                stride: s.n_pad,
            };
            caps.mul
                .setup(
                    machine,
                    &MulState {
                        a: v(s.a),
                        b: v(s.b),
                        c: v(s.c),
                        size: s.n_pad,
                    },
                    K(finale),
                )
                .word()
        })
    }
}

/// A rectangular multiply `c[m×n] = a[m×k] · b[k×n]` (§7's closing note:
/// "we can extend this result to non-square matrices using a similar
/// approach to \[31\]"). Implemented by embedding the operands in the
/// smallest enclosing power-of-two square (zero padding is absorbed by
/// the base case's zero-skip), which preserves the work bound up to the
/// aspect ratio — the dimension-splitting refinement of \[31\] would remove
/// that factor for extreme shapes.
#[derive(Debug, Clone, Copy)]
pub struct MatMulRect {
    inner: MatMul,
    m_rows: usize,
    k_inner: usize,
    n_cols: usize,
}

impl MatMulRect {
    /// Carves regions for `c[m×n] = a[m×k] · b[k×n]`.
    pub fn new(machine: &Machine, m_rows: usize, k_inner: usize, n_cols: usize) -> Self {
        assert!(m_rows > 0 && k_inner > 0 && n_cols > 0);
        let dim = m_rows.max(k_inner).max(n_cols);
        MatMulRect {
            inner: MatMul::new(machine, dim),
            m_rows,
            k_inner,
            n_cols,
        }
    }

    /// Pool words needed (delegates to the square bound on the enclosing
    /// dimension).
    pub fn pool_words(m_rows: usize, k_inner: usize, n_cols: usize, m_eph: usize) -> usize {
        matmul_pool_words(m_rows.max(k_inner).max(n_cols), m_eph)
    }

    /// Loads `a` (`m×k`, row-major) and `b` (`k×n`, row-major); the
    /// padding stays zero (uncosted setup).
    pub fn load_inputs(&self, machine: &Machine, a: &[Word], b: &[Word]) {
        assert_eq!(a.len(), self.m_rows * self.k_inner);
        assert_eq!(b.len(), self.k_inner * self.n_cols);
        let np = self.inner.n_pad;
        for i in 0..self.m_rows {
            for j in 0..self.k_inner {
                machine
                    .mem()
                    .store(self.inner.a.at(i * np + j), a[i * self.k_inner + j]);
            }
        }
        for i in 0..self.k_inner {
            for j in 0..self.n_cols {
                machine
                    .mem()
                    .store(self.inner.b.at(i * np + j), b[i * self.n_cols + j]);
            }
        }
    }

    /// Reads the `m×n` product (oracle).
    pub fn read_output(&self, machine: &Machine) -> Vec<Word> {
        let np = self.inner.n_pad;
        let mut out = Vec::with_capacity(self.m_rows * self.n_cols);
        for i in 0..self.m_rows {
            for j in 0..self.n_cols {
                out.push(machine.mem().load(self.inner.c.at(i * np + j)));
            }
        }
        out
    }

    /// The multiplication computation.
    pub fn comp(&self) -> Comp {
        self.inner.comp()
    }
}

/// Sequential rectangular oracle: `c[m×n] = a[m×k] · b[k×n]`.
pub fn matmul_rect_seq(a: &[Word], b: &[Word], m: usize, k: usize, n: usize) -> Vec<Word> {
    let mut c = vec![0u64; m * n];
    for i in 0..m {
        for kk in 0..k {
            let aik = a[i * k + kk];
            if aik == 0 {
                continue;
            }
            for j in 0..n {
                c[i * n + j] = c[i * n + j].wrapping_add(aik.wrapping_mul(b[kk * n + j]));
            }
        }
    }
    c
}

/// Sequential oracle (wrapping arithmetic, row-major).
pub fn matmul_seq(a: &[Word], b: &[Word], n: usize) -> Vec<Word> {
    let mut c = vec![0u64; n * n];
    for i in 0..n {
        for k in 0..n {
            let aik = a[i * n + k];
            if aik == 0 {
                continue;
            }
            for j in 0..n {
                c[i * n + j] = c[i * n + j].wrapping_add(aik.wrapping_mul(b[k * n + j]));
            }
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppm_pm::{FaultConfig, PmConfig};
    use ppm_sched::{Runtime, SchedConfig};

    fn data(seed: u64, n: usize) -> Vec<u64> {
        (0..(n * n) as u64)
            .map(|i| (i.wrapping_mul(0x9E37_79B9).wrapping_add(seed)) % 100)
            .collect()
    }

    fn runtime_for(n: usize, procs: usize, m_eph: usize, f: FaultConfig) -> Runtime {
        Runtime::new(
            Machine::with_pool_words(
                PmConfig::parallel(procs, 1 << 23)
                    .with_ephemeral_words(m_eph)
                    .with_fault(f),
                matmul_pool_words(n, m_eph),
            ),
            SchedConfig::with_slots(1 << 13),
        )
    }

    fn check(n: usize, procs: usize, m_eph: usize, f: FaultConfig) {
        let rt = runtime_for(n, procs, m_eph, f);
        let mm = MatMul::new(rt.machine(), n);
        let (a, b) = (data(1, n), data(2, n));
        mm.load_inputs(rt.machine(), &a, &b);
        let rep = rt.run_or_replay(&mm.comp());
        assert!(rep.completed());
        assert_eq!(mm.read_output(rt.machine()), matmul_seq(&a, &b, n), "n={n}");
    }

    fn check_registered(n: usize, procs: usize, m_eph: usize, f: FaultConfig) {
        let rt = runtime_for(n, procs, m_eph, f);
        let mm = MatMul::new(rt.machine(), n);
        let (a, b) = (data(5, n), data(6, n));
        mm.load_inputs(rt.machine(), &a, &b);
        let rep = rt.run_or_recover(&mm.pcomp());
        assert!(rep.completed());
        assert_eq!(
            mm.read_output(rt.machine()),
            matmul_seq(&a, &b, n),
            "registered n={n}"
        );
    }

    #[test]
    fn registered_tiny_and_recursive() {
        check_registered(4, 1, 256, FaultConfig::none());
        check_registered(16, 2, 64, FaultConfig::none());
    }

    #[test]
    fn registered_medium_parallel() {
        check_registered(32, 4, 256, FaultConfig::none());
    }

    #[test]
    fn registered_with_soft_faults() {
        check_registered(16, 2, 64, FaultConfig::soft(0.005, 11));
    }

    #[test]
    fn registered_with_hard_fault() {
        check_registered(
            24,
            3,
            256,
            FaultConfig::none().with_scheduled_hard_fault(0, 300),
        );
    }

    #[test]
    fn tiny_fits_one_capsule() {
        check(4, 1, 256, FaultConfig::none());
    }

    #[test]
    fn non_power_of_two_dimension() {
        check(6, 1, 256, FaultConfig::none());
        check(12, 2, 256, FaultConfig::none());
    }

    #[test]
    fn forces_recursion() {
        // base_dim(64) = 4, so 16x16 recurses two levels.
        check(16, 2, 64, FaultConfig::none());
    }

    #[test]
    fn medium_parallel() {
        check(32, 4, 256, FaultConfig::none());
    }

    #[test]
    fn with_soft_faults() {
        check(16, 2, 64, FaultConfig::soft(0.005, 3));
    }

    #[test]
    fn with_hard_fault() {
        check(
            24,
            3,
            256,
            FaultConfig::none().with_scheduled_hard_fault(0, 300),
        );
    }

    #[test]
    fn identity_multiplication() {
        let n = 8;
        let m = Machine::new(PmConfig::parallel(1, 1 << 21).with_ephemeral_words(256));
        let mm = MatMul::new(&m, n);
        let mut eye = vec![0u64; n * n];
        for i in 0..n {
            eye[i * n + i] = 1;
        }
        let b = data(5, n);
        mm.load_inputs(&m, &eye, &b);
        let rt = Runtime::new(m, SchedConfig::with_slots(1 << 12));
        let rep = rt.run_or_replay(&mm.comp());
        assert!(rep.completed());
        assert_eq!(mm.read_output(rt.machine()), b);
    }

    #[test]
    fn rectangular_multiply_matches_oracle() {
        let (mr, kk, nc) = (5usize, 9usize, 3usize);
        let m = Machine::with_pool_words(
            PmConfig::parallel(2, 1 << 22).with_ephemeral_words(64),
            MatMulRect::pool_words(mr, kk, nc, 64),
        );
        let mm = MatMulRect::new(&m, mr, kk, nc);
        let a: Vec<u64> = (0..(mr * kk) as u64).map(|i| i % 7).collect();
        let b: Vec<u64> = (0..(kk * nc) as u64).map(|i| (i * 3) % 5).collect();
        mm.load_inputs(&m, &a, &b);
        let rt = Runtime::new(m, SchedConfig::with_slots(1 << 12));
        let rep = rt.run_or_replay(&mm.comp());
        assert!(rep.completed());
        assert_eq!(
            mm.read_output(rt.machine()),
            matmul_rect_seq(&a, &b, mr, kk, nc)
        );
    }

    #[test]
    fn rectangular_tall_and_wide_shapes() {
        for (mr, kk, nc) in [
            (1usize, 16usize, 16usize),
            (16, 1, 16),
            (16, 16, 1),
            (2, 20, 6),
        ] {
            let m = Machine::with_pool_words(
                PmConfig::parallel(1, 1 << 22).with_ephemeral_words(256),
                MatMulRect::pool_words(mr, kk, nc, 256),
            );
            let mm = MatMulRect::new(&m, mr, kk, nc);
            let a: Vec<u64> = (0..(mr * kk) as u64).map(|i| i % 11).collect();
            let b: Vec<u64> = (0..(kk * nc) as u64).map(|i| (i * 7) % 13).collect();
            mm.load_inputs(&m, &a, &b);
            let rt = Runtime::new(m, SchedConfig::with_slots(1 << 12));
            let rep = rt.run_or_replay(&mm.comp());
            assert!(rep.completed(), "{mr}x{kk}x{nc}");
            assert_eq!(
                mm.read_output(rt.machine()),
                matmul_rect_seq(&a, &b, mr, kk, nc),
                "{mr}x{kk}x{nc}"
            );
        }
    }

    #[test]
    fn work_scales_cubically_at_fixed_m() {
        let work = |n: usize| {
            let m = Machine::with_pool_words(
                PmConfig::parallel(1, 1 << 23).with_ephemeral_words(64),
                matmul_pool_words(n, 64),
            );
            let mm = MatMul::new(&m, n);
            mm.load_inputs(&m, &data(1, n), &data(2, n));
            let rt = Runtime::new(m, SchedConfig::with_slots(1 << 13));
            let rep = rt.run_or_replay(&mm.comp());
            assert!(rep.completed());
            rep.stats().total_work()
        };
        let (w1, w2) = (work(16), work(32));
        let ratio = w2 as f64 / w1 as f64;
        // Theorem 7.4: work O(n³/(B√M)): doubling n → ~8x transfers.
        assert!(
            (6.0..11.0).contains(&ratio),
            "2x dimension should be ~8x work, got {ratio} ({w1} -> {w2})"
        );
    }
}
