//! Sorting (§7, Theorem 7.3): mergesort and samplesort.
//!
//! **Mergesort** recursively sorts halves into alternating buffers and
//! merges them with the Theorem 7.2 merge: O((n/B)·log(n/M)) work with
//! base cases sorted sequentially inside one capsule.
//!
//! **Samplesort** follows the paper (after BGS10, "Low depth
//! cache-oblivious algorithms"): split into ~√n subarrays and sort each;
//! sample every ⌈log n⌉-th element of each sorted subarray; sort the
//! samples (with mergesort) and pick ~√n pivots by fixed stride; compute
//! each subarray's bucket boundaries; use **prefix sums and matrix
//! transposes** to compute destination offsets; move keys with a
//! divide-and-conquer **propagation-blocked bucket transpose**: each base
//! tile streams its row segments through per-bucket one-block staging
//! bins ([`crate::util::BlockScatter`]), so every destination write is a
//! (near-)full sequential block and the move stays at O(n/B) transfers
//! with tiles ~8× taller than whole-tile buffering would allow; then
//! recursively sort each bucket. Work O((n/B)·log_M n), maximum capsule
//! work O(M/B + √n/B) (= O(M/B) whenever n ≤ M², which the constructor
//! asserts).
//!
//! All scratch comes from the §4.1 restart-stable pool allocator, so every
//! capsule writes fresh locations: write-after-read conflict free.
//!
//! Both sorts also ship in **registered persistent form** on the typed
//! `ppm_core::dsl` ([`MergeSort::pcomp`], [`SampleSort::pcomp`]): every
//! continuation — including samplesort's nine-phase pipeline, embedded
//! prefix sum, and per-bucket recursion — is a typed frame in persistent
//! memory, so a `kill -9`'d run is *resumed* from its in-flight deque
//! entries by `ppm_sched::Runtime::run_or_recover`. One deviation from
//! the closure merge: the registered merge splits *binary* at the median
//! rank (one dual binary search per split capsule — still the
//! Theorem 7.2 O(log n) capsule-work bound) instead of the
//! k ≈ n^{1/3}-way split, which would need a variable-width fan-out
//! frame. Work stays O(n/B + split-search terms); depth grows to
//! O(log² n) inside a merge.

use std::sync::Arc;

use ppm_core::dsl::{fork2, jump_to, CapsuleDef, CapsuleSet, Span, Step, K};
use ppm_core::{
    comp_dyn, comp_fork2, comp_seq, comp_step, par_all, persist_struct, Comp, Machine, PComp,
};
use ppm_pm::{ProcCtx, Region, Word};

use crate::merge::{base_size, merge_runs, split_rank, Run};
use crate::prefix::{PrefixCapsules, PrefixSum};
use crate::util::{ceil_div, pread_range, pwrite_range, BlockScatter};

fn region_at(start: usize, len: usize) -> Region {
    Region { start, len }
}

/// The in-capsule sequential sort: read a range, sort it in ephemeral
/// memory, write it out. O(len/B) capsule work; callers guarantee
/// `len = O(M)`.
fn capsule_sort(src: Run, dst: Region, dlo: usize) -> Comp {
    comp_step("sort/base", move |ctx: &mut ProcCtx| {
        if src.len() == 0 {
            return Ok(());
        }
        let mut v = pread_range(ctx, src.region.at(src.lo), src.len())?;
        v.sort_unstable();
        pwrite_range(ctx, dst.at(dlo), &v)
    })
}

/// In-capsule sequential sort body shared by both forms.
fn sort_base_body(ctx: &mut ProcCtx, src: Run, dst: Region, dlo: usize) -> ppm_pm::PmResult<()> {
    if src.len() == 0 {
        return Ok(());
    }
    let mut v = pread_range(ctx, src.region.at(src.lo), src.len())?;
    v.sort_unstable();
    pwrite_range(ctx, dst.at(dlo), &v)
}

/// Mergesort `src` into `dst[dlo..)`, using `aux[alo..)` (same length) as
/// scratch. Base cases of up to `M` elements sort inside one capsule.
pub(crate) fn merge_sort_runs(src: Run, dst: Region, dlo: usize, aux: Region, alo: usize) -> Comp {
    comp_dyn("sort/msort", move |ctx: &mut ProcCtx| {
        let n = src.len();
        let base = ctx.ephemeral_words().max(ctx.block_size());
        if n <= base {
            return Ok(capsule_sort(src, dst, dlo));
        }
        let mid = n / 2;
        let left = Run {
            region: src.region,
            lo: src.lo,
            hi: src.lo + mid,
        };
        let right = Run {
            region: src.region,
            lo: src.lo + mid,
            hi: src.hi,
        };
        // Sort halves into aux (each using the matching dst half as its
        // own scratch), then merge aux halves into dst.
        let sort_halves = comp_fork2(
            merge_sort_runs(left, aux, alo, dst, dlo),
            merge_sort_runs(right, aux, alo + mid, dst, dlo + mid),
        );
        let merged = merge_runs(
            Run {
                region: aux,
                lo: alo,
                hi: alo + mid,
            },
            Run {
                region: aux,
                lo: alo + mid,
                hi: alo + n,
            },
            dst,
            dlo,
        );
        Ok(comp_seq(sort_halves, merged))
    })
}

/// A mergesort instance.
#[derive(Debug, Clone, Copy)]
pub struct MergeSort {
    /// Input array (n words; not modified).
    pub input: Region,
    /// Output array (n words, sorted).
    pub output: Region,
    aux: Region,
    n: usize,
}

impl MergeSort {
    /// Carves regions for sorting `n` words.
    pub fn new(machine: &Machine, n: usize) -> Self {
        assert!(n > 0);
        MergeSort {
            input: machine.alloc_region(n),
            output: machine.alloc_region(n),
            aux: machine.alloc_region(n),
            n,
        }
    }

    /// Loads the input (uncosted setup).
    pub fn load_input(&self, machine: &Machine, data: &[Word]) {
        assert_eq!(data.len(), self.n);
        for (i, v) in data.iter().enumerate() {
            machine.mem().store(self.input.at(i), *v);
        }
    }

    /// Reads the sorted output (oracle).
    pub fn read_output(&self, machine: &Machine) -> Vec<Word> {
        (0..self.n)
            .map(|i| machine.mem().load(self.output.at(i)))
            .collect()
    }

    /// The sorting computation.
    pub fn comp(&self) -> Comp {
        merge_sort_runs(
            Run {
                region: self.input,
                lo: 0,
                hi: self.n,
            },
            self.output,
            0,
            self.aux,
            0,
        )
    }

    /// The sorting computation as registered persistent capsules, for
    /// `ppm_sched::Runtime::run_or_recover`. Declares the
    /// `MsortCapsules` family (typed frame states carry the full run
    /// geometry, so the capsules are instance-free and shared by every
    /// mergesort on the machine).
    pub fn pcomp(&self) -> PComp {
        let s = *self;
        Arc::new(move |machine: &Machine, finale: Word| {
            let caps = MsortCapsules::declare(machine);
            caps.node
                .setup(
                    machine,
                    &MsortState {
                        src: Run {
                            region: s.input,
                            lo: 0,
                            hi: s.n,
                        },
                        dst: s.output,
                        dlo: 0,
                        aux: s.aux,
                        alo: 0,
                    },
                    K(finale),
                )
                .word()
        })
    }
}

// ====================================================================
// Registered (typed DSL) mergesort
// ====================================================================

persist_struct! {
    /// Mergesort node state: sort `src` into `dst[dlo..)` using
    /// `aux[alo..)` (same length) as scratch.
    pub(crate) struct MsortState {
        pub(crate) src: Run,
        pub(crate) dst: Region,
        pub(crate) dlo: usize,
        pub(crate) aux: Region,
        pub(crate) alo: usize,
    }
}

persist_struct! {
    /// Merge node state: merge sorted runs `a` and `b` into `out[olo..)`.
    pub(crate) struct MergeState {
        pub(crate) a: Run,
        pub(crate) b: Run,
        pub(crate) out: Region,
        pub(crate) olo: usize,
    }
}

/// The mergesort capsule family on the typed DSL — the defunctionalized
/// twin of [`MergeSort::comp`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct MsortCapsules {
    pub(crate) node: CapsuleDef<MsortState>,
    pub(crate) merge: CapsuleDef<MergeState>,
}

impl MsortCapsules {
    /// Declares (idempotently) the mergesort capsules on `machine`'s
    /// registry and installs their bodies.
    pub(crate) fn declare(machine: &Machine) -> MsortCapsules {
        let mut set = CapsuleSet::new(machine);
        let node = set.declare::<MsortState>("msort/node");
        let merge = set.declare::<MergeState>("msort/merge");

        set.body(node, move |st: &MsortState, k, ctx| {
            let n = st.src.len();
            let base = ctx.ephemeral_words().max(ctx.block_size());
            if n <= base {
                sort_base_body(ctx, st.src, st.dst, st.dlo)?;
                return Ok(Step::Jump(k));
            }
            let mid = n / 2;
            let (left, right) = (
                Run {
                    region: st.src.region,
                    lo: st.src.lo,
                    hi: st.src.lo + mid,
                },
                Run {
                    region: st.src.region,
                    lo: st.src.lo + mid,
                    hi: st.src.hi,
                },
            );
            // Sort halves into aux (each using the matching dst half as
            // its own scratch), then merge aux halves into dst.
            let aux_l = Run {
                region: st.aux,
                lo: st.alo,
                hi: st.alo + mid,
            };
            let aux_r = Run {
                region: st.aux,
                lo: st.alo + mid,
                hi: st.alo + n,
            };
            let after = merge.frame(
                ctx,
                &MergeState {
                    a: aux_l,
                    b: aux_r,
                    out: st.dst,
                    olo: st.dlo,
                },
                k,
            )?;
            fork2(
                ctx,
                (
                    node,
                    &MsortState {
                        src: left,
                        dst: st.aux,
                        dlo: st.alo,
                        aux: st.dst,
                        alo: st.dlo,
                    },
                ),
                (
                    node,
                    &MsortState {
                        src: right,
                        dst: st.aux,
                        dlo: st.alo + mid,
                        aux: st.dst,
                        alo: st.dlo + mid,
                    },
                ),
                after,
            )
        });

        set.body(merge, move |st: &MergeState, k, ctx| {
            let (a, b) = (st.a, st.b);
            let n = a.len() + b.len();
            if n <= base_size(ctx.block_size()) {
                // Sequential base merge in one capsule (empty runs can sit
                // at a region's end; never form their address).
                let av = if a.len() > 0 {
                    pread_range(ctx, a.region.at(a.lo), a.len())?
                } else {
                    Vec::new()
                };
                let bv = if b.len() > 0 {
                    pread_range(ctx, b.region.at(b.lo), b.len())?
                } else {
                    Vec::new()
                };
                let merged = crate::merge::merge_seq(&av, &bv);
                if !merged.is_empty() {
                    pwrite_range(ctx, st.out.at(st.olo), &merged)?;
                }
                return Ok(Step::Jump(k));
            }
            // Binary split at the median rank: one dual binary search
            // (O(log n) capsule work), then fork the two sub-merges.
            let r = n / 2;
            let sa = split_rank(ctx, a, b, r)?;
            let sb = r - sa;
            let (a_l, a_r) = (
                Run {
                    region: a.region,
                    lo: a.lo,
                    hi: a.lo + sa,
                },
                Run {
                    region: a.region,
                    lo: a.lo + sa,
                    hi: a.hi,
                },
            );
            let (b_l, b_r) = (
                Run {
                    region: b.region,
                    lo: b.lo,
                    hi: b.lo + sb,
                },
                Run {
                    region: b.region,
                    lo: b.lo + sb,
                    hi: b.hi,
                },
            );
            fork2(
                ctx,
                (
                    merge,
                    &MergeState {
                        a: a_l,
                        b: b_l,
                        out: st.out,
                        olo: st.olo,
                    },
                ),
                (
                    merge,
                    &MergeState {
                        a: a_r,
                        b: b_r,
                        out: st.out,
                        olo: st.olo + r,
                    },
                ),
                k,
            )
        });

        MsortCapsules { node, merge }
    }
}

// ====================================================================
// Samplesort
// ====================================================================

/// Pivot-selection chunk size (keeps strided pivot reads out of any one
/// capsule's work bound).
const PIVOT_CHUNK: usize = 256;

/// Per-node samplesort geometry, derived deterministically from `n`.
#[derive(Debug, Clone, Copy)]
struct Geometry {
    n: usize,
    /// Subarray length (≈ √n).
    sub: usize,
    /// Number of subarrays (rows).
    rows: usize,
    /// Sampling stride (≈ log₂ n).
    stride: usize,
    /// Total samples.
    total_samples: usize,
    /// Number of buckets (≈ √n, ≤ total_samples).
    buckets: usize,
}

impl Geometry {
    fn new(n: usize) -> Self {
        let sub = (n as f64).sqrt().ceil() as usize;
        let rows = ceil_div(n, sub);
        let stride = (usize::BITS - n.leading_zeros()) as usize; // ~log2 n
        let row_len = |i: usize| (n - i * sub).min(sub);
        let total_samples: usize = (0..rows).map(|i| ceil_div(row_len(i), stride)).sum();
        let buckets = rows.min(total_samples).max(1);
        Geometry {
            n,
            sub,
            rows,
            stride,
            total_samples,
            buckets,
        }
    }

    fn row_len(&self, i: usize) -> usize {
        (self.n - i * self.sub).min(self.sub)
    }

    fn sample_offset(&self, i: usize) -> usize {
        (0..i).map(|r| ceil_div(self.row_len(r), self.stride)).sum()
    }

    fn samples_in_row(&self, i: usize) -> usize {
        ceil_div(self.row_len(i), self.stride)
    }
}

persist_struct! {
    /// Scratch regions for one samplesort node, pool-allocated in its
    /// expansion capsule (restart-stable). Rides in every phase frame of
    /// the registered form.
    struct Scratch {
        subsorted: Region,
        row_aux: Region,
        samples: Region,
        samples_sorted: Region,
        samples_aux: Region,
        pivots: Region,
        /// Row-major boundaries: rows × (buckets + 1).
        bounds: Region,
        /// Column-major counts (prefix input): buckets × rows.
        counts_cm: Region,
        /// Inclusive prefix sums of `counts_cm`.
        sums: Region,
        sums_tree: Region,
        /// The partitioned elements, bucket-major.
        bucketed: Region,
    }
}

impl Scratch {
    fn alloc(ctx: &mut ProcCtx, g: &Geometry) -> Scratch {
        let b = ctx.block_size();
        let cm = g.rows * g.buckets;
        Scratch {
            subsorted: region_at(ctx.palloc(g.n), g.n),
            row_aux: region_at(ctx.palloc(g.n), g.n),
            samples: region_at(ctx.palloc(g.total_samples.max(1)), g.total_samples.max(1)),
            samples_sorted: region_at(ctx.palloc(g.total_samples.max(1)), g.total_samples.max(1)),
            samples_aux: region_at(ctx.palloc(g.total_samples.max(1)), g.total_samples.max(1)),
            pivots: region_at(ctx.palloc(g.buckets.max(2) - 1), g.buckets.max(2) - 1),
            bounds: region_at(
                ctx.palloc(g.rows * (g.buckets + 1)),
                g.rows * (g.buckets + 1),
            ),
            counts_cm: region_at(ctx.palloc(cm), cm),
            sums: region_at(ctx.palloc(cm), cm),
            sums_tree: region_at(
                ctx.palloc(PrefixSum::sums_words(cm, b)),
                PrefixSum::sums_words(cm, b),
            ),
            bucketed: region_at(ctx.palloc(g.n), g.n),
        }
    }
}

/// Pool words one samplesort node of size `n` allocates (for sizing
/// machine pools).
fn node_scratch_words(n: usize) -> usize {
    let g = Geometry::new(n);
    let cm = g.rows * g.buckets;
    3 * n
        + 3 * g.total_samples
        + g.buckets
        + g.rows * (g.buckets + 1)
        + 2 * cm
        + PrefixSum::sums_words(cm.max(1), 8)
        + 64
}

/// Recommended per-processor pool words for samplesorting `n` elements
/// (covers the worst case of one processor expanding every node, plus the
/// recursion's own scratch — and, in the registered form, the typed
/// frames and join cells every phase writes).
///
/// **Assumes checkpoint GC** (`ppm_sched::checkpoint`, on by default):
/// the sizing budgets the live set plus one epoch of churn, relying on
/// the epoch GC — and its pool-pressure failsafe — to reclaim dead
/// frames. A run configured with `CheckpointPolicy::disabled()` that
/// must survive crash resume or hard-fault adoption re-allocates the
/// replayed span on top of the dead run's watermark and should budget
/// roughly an extra `40 * n` words (the pre-GC doubling).
pub fn samplesort_pool_words(n: usize) -> usize {
    // Geometric-ish recursion: level ℓ has total size n, so scratch per
    // level is O(n); depth is log_M n, small — 4 levels of scratch is
    // generous. The registered form additionally writes typed frames for
    // every fork; the embedded prefix sum over the rows × buckets counts
    // matrix (cm ≈ n words) dominates at ~12 frame words per counts
    // element per level (~36·n across levels, ~40·n since frames grew a
    // parent-span provenance word). The pre-checkpoint sizing (PR 3)
    // doubled that term because a crash-resumed or hard-fault-adopted run
    // re-allocated above the dead run's watermark for the whole replayed
    // span; checkpoint GC (`ppm_sched::checkpoint`, on by default) now
    // rolls pool cursors back to the live frontier every epoch, capping
    // re-allocation at one epoch's churn — the constant tail covers it.
    4 * node_scratch_words(n.max(16)) + 40 * n + (1 << 13)
}

// ---- Phase bodies shared by the closure and registered forms --------

/// Phase 2 body: sample every ⌈log n⌉-th element of sorted row `i`.
fn sample_row_body(ctx: &mut ProcCtx, g: &Geometry, s: &Scratch, i: usize) -> ppm_pm::PmResult<()> {
    let row = pread_range(ctx, s.subsorted.at(i * g.sub), g.row_len(i))?;
    let picks: Vec<Word> = row.iter().step_by(g.stride).copied().collect();
    debug_assert_eq!(picks.len(), g.samples_in_row(i));
    pwrite_range(ctx, s.samples.at(g.sample_offset(i)), &picks)
}

/// Phase 4 body: pick pivots by fixed stride, chunk `c`.
fn pivot_chunk_body(
    ctx: &mut ProcCtx,
    g: &Geometry,
    s: &Scratch,
    c: usize,
) -> ppm_pm::PmResult<()> {
    let npiv = g.buckets - 1;
    let lo = c * PIVOT_CHUNK;
    let hi = ((c + 1) * PIVOT_CHUNK).min(npiv);
    if lo >= hi {
        return Ok(());
    }
    let mut vals = Vec::with_capacity(hi - lo);
    for j in lo..hi {
        let idx = ((j + 1) * g.total_samples / g.buckets).min(g.total_samples - 1);
        vals.push(ctx.pread(s.samples_sorted.at(idx))?);
    }
    pwrite_range(ctx, s.pivots.at(lo), &vals)
}

/// Phase 5 body: bucket boundaries of row `i` (merge row with pivots).
fn bounds_row_body(ctx: &mut ProcCtx, g: &Geometry, s: &Scratch, i: usize) -> ppm_pm::PmResult<()> {
    let npiv = g.buckets - 1;
    let row = pread_range(ctx, s.subsorted.at(i * g.sub), g.row_len(i))?;
    let piv = pread_range(ctx, s.pivots.at(0), npiv)?;
    let mut out = Vec::with_capacity(g.buckets + 1);
    out.push(0u64);
    let mut pos = 0usize;
    for p in &piv {
        while pos < row.len() && row[pos] <= *p {
            pos += 1;
        }
        out.push(pos as Word);
    }
    out.push(row.len() as Word);
    pwrite_range(ctx, s.bounds.at(i * (g.buckets + 1)), &out)
}

/// Phase 6 base body: transpose counts for the submatrix
/// `[r0, r1) × [j0, j1)`.
fn transpose_base_body(
    ctx: &mut ProcCtx,
    g: &Geometry,
    s: &Scratch,
    r0: usize,
    r1: usize,
    j0: usize,
    j1: usize,
) -> ppm_pm::PmResult<()> {
    // Read each row's boundary slice [j0..j1], emit per-column contiguous
    // runs of counts.
    let mut cols: Vec<Vec<Word>> = vec![Vec::with_capacity(r1 - r0); j1 - j0];
    for i in r0..r1 {
        let row = pread_range(ctx, s.bounds.at(i * (g.buckets + 1) + j0), j1 - j0 + 1)?;
        for (c, w) in row.windows(2).enumerate() {
            cols[c].push(w[1] - w[0]);
        }
    }
    for (c, col) in cols.iter().enumerate() {
        let j = j0 + c;
        pwrite_range(ctx, s.counts_cm.at(j * g.rows + r0), col)?;
    }
    Ok(())
}

/// Phase 8 base body: move the `[r0, r1) × [j0, j1)` segments of
/// `subsorted` to their destinations in `bucketed` — propagation-blocked.
///
/// Row segments are read sequentially and appended into per-bucket
/// staging bins ([`BlockScatter`]); full bins stream to the destination
/// as aligned block writes. Bins bound the ephemeral footprint at
/// `O((j1−j0)·B)` regardless of the tile's row count, which is what lets
/// [`tile_plan`] run scatter tiles ~8× taller than the buffered-transpose
/// tiles: fewer tiles means fewer per-tile offset reads, and taller
/// tiles mean longer per-bucket runs, so more writes are full blocks.
fn scatter_base_body(
    ctx: &mut ProcCtx,
    g: &Geometry,
    s: &Scratch,
    r0: usize,
    r1: usize,
    j0: usize,
    j1: usize,
) -> ppm_pm::PmResult<()> {
    let jw = j1 - j0;
    // Per bucket j: destination of the run contributed by rows [r0, r1)
    // starts at S[j·rows + r0] − count(r0, j); count(r0, j) falls out of
    // row r0's boundary slice, which doubles as the first data row's.
    let brow0 = pread_range(ctx, s.bounds.at(r0 * (g.buckets + 1) + j0), jw + 1)?;
    let mut dests = Vec::with_capacity(jw);
    for c in 0..jw {
        let j = j0 + c;
        let s_first = ctx.pread(s.sums.at(j * g.rows + r0))? as usize;
        let count_r0 = (brow0[c + 1] - brow0[c]) as usize;
        // An empty bucket column at the tail of the key range starts its
        // (zero-length) run one past the region end — cursor, not at.
        dests.push(s.bucketed.cursor(s_first - count_r0));
    }
    let mut sc = BlockScatter::new(ctx, dests);
    for i in r0..r1 {
        let brow = if i == r0 {
            brow0.clone()
        } else {
            pread_range(ctx, s.bounds.at(i * (g.buckets + 1) + j0), jw + 1)?
        };
        let lo = brow[0] as usize;
        let hi = brow[jw] as usize;
        if hi == lo {
            continue;
        }
        let data = pread_range(ctx, s.subsorted.at(i * g.sub + lo), hi - lo)?;
        for c in 0..jw {
            let (a, b) = (brow[c] as usize, brow[c + 1] as usize);
            sc.push_run(ctx, c, &data[a - lo..b - lo])?;
        }
    }
    sc.flush(ctx)
}

/// 2D split threshold shared by both forms.
fn grid_cap(ctx: &ProcCtx) -> usize {
    (ctx.ephemeral_words() / 4).max(64)
}

/// Tile caps for the two grid phases: `(area cap, bucket-width cap)`.
///
/// The transpose buffers its whole submatrix ephemerally, so its area is
/// capped at `M/4` and its width unconstrained. The propagation-blocked
/// scatter only keeps one staging bin per bucket column plus one data
/// row, so its tiles run `2M` in area — as long as the bin footprint
/// `(j1−j0)·B` stays under `M/2`.
fn tile_caps(ctx: &ProcCtx, scatter: bool) -> (usize, usize) {
    if scatter {
        let m = ctx.ephemeral_words();
        let b = ctx.block_size();
        ((2 * m).max(64), (m / (2 * b)).max(1))
    } else {
        (grid_cap(ctx), usize::MAX)
    }
}

/// A 2D grid step: run the tile as a base case, or split rows/buckets.
enum Tile {
    Base,
    SplitR(usize),
    SplitJ(usize),
}

/// The split policy shared by the closure and registered grid drivers:
/// force bucket splits until the width cap holds (the staging bins must
/// fit in ephemeral memory), then halve the longer dimension until the
/// area fits a capsule.
fn tile_plan(r0: usize, r1: usize, j0: usize, j1: usize, caps: (usize, usize)) -> Tile {
    let (area_cap, jcap) = caps;
    let area = (r1 - r0) * (j1 - j0);
    if (r1 - r0 == 1 && j1 - j0 == 1) || (area <= area_cap && j1 - j0 <= jcap) {
        return Tile::Base;
    }
    if j1 - j0 > jcap {
        return Tile::SplitJ((j0 + j1) / 2);
    }
    if r1 - r0 >= j1 - j0 {
        Tile::SplitR((r0 + r1) / 2)
    } else {
        Tile::SplitJ((j0 + j1) / 2)
    }
}

/// Cache-oblivious transpose: counts (row-major in `bounds` as
/// differences) → `counts_cm` (column-major). D&C until the submatrix
/// area fits comfortably in a capsule.
fn transpose_counts(g: Geometry, s: Scratch, r0: usize, r1: usize, j0: usize, j1: usize) -> Comp {
    comp_dyn("ssort/transpose", move |ctx: &mut ProcCtx| match tile_plan(
        r0,
        r1,
        j0,
        j1,
        tile_caps(ctx, false),
    ) {
        Tile::Base => Ok(comp_step(
            "ssort/transpose-base",
            move |ctx: &mut ProcCtx| transpose_base_body(ctx, &g, &s, r0, r1, j0, j1),
        )),
        Tile::SplitR(rm) => Ok(comp_fork2(
            transpose_counts(g, s, r0, rm, j0, j1),
            transpose_counts(g, s, rm, r1, j0, j1),
        )),
        Tile::SplitJ(jm) => Ok(comp_fork2(
            transpose_counts(g, s, r0, r1, j0, jm),
            transpose_counts(g, s, r0, r1, jm, j1),
        )),
    })
}

/// D&C bucket transpose: move each (row, bucket) segment of `subsorted`
/// to its destination in `bucketed` via the propagation-blocked base
/// case. Area proxies element count (segments average ~1 element; skew
/// only grows one capsule's work, never breaks correctness).
fn bucket_scatter(g: Geometry, s: Scratch, r0: usize, r1: usize, j0: usize, j1: usize) -> Comp {
    comp_dyn("ssort/scatter", move |ctx: &mut ProcCtx| {
        match tile_plan(r0, r1, j0, j1, tile_caps(ctx, true)) {
            Tile::Base => Ok(comp_step("ssort/scatter-base", move |ctx: &mut ProcCtx| {
                scatter_base_body(ctx, &g, &s, r0, r1, j0, j1)
            })),
            Tile::SplitR(rm) => Ok(comp_fork2(
                bucket_scatter(g, s, r0, rm, j0, j1),
                bucket_scatter(g, s, rm, r1, j0, j1),
            )),
            Tile::SplitJ(jm) => Ok(comp_fork2(
                bucket_scatter(g, s, r0, r1, j0, jm),
                bucket_scatter(g, s, r0, r1, jm, j1),
            )),
        }
    })
}

/// Samplesort `src` into `dst[dlo..)`. `progress` guards against
/// degenerate pivots (duplicate-heavy inputs): a bucket as large as its
/// parent falls back to mergesort.
fn sample_sort_runs(src: Run, dst: Region, dlo: usize, progress: bool) -> Comp {
    comp_dyn("ssort/node", move |ctx: &mut ProcCtx| {
        let n = src.len();
        let base = ctx.ephemeral_words().max(ctx.block_size());
        if n <= base {
            return Ok(capsule_sort(src, dst, dlo));
        }
        if !progress {
            // Degenerate partition (e.g. all-equal keys): mergesort.
            let aux = region_at(ctx.palloc(n), n);
            return Ok(merge_sort_runs(src, dst, dlo, aux, 0));
        }
        let g = Geometry::new(n);
        let s = Scratch::alloc(ctx, &g);

        // Phase 1: sort each subarray (mergesort; base cases collapse to
        // one capsule when the subarray fits in M).
        let sort_rows: Vec<Comp> = (0..g.rows)
            .map(|i| {
                let row = Run {
                    region: src.region,
                    lo: src.lo + i * g.sub,
                    hi: src.lo + i * g.sub + g.row_len(i),
                };
                merge_sort_runs(row, s.subsorted, i * g.sub, s.row_aux, i * g.sub)
            })
            .collect();

        // Phase 2: sample every ⌈log n⌉-th element of each sorted row.
        let sample_rows: Vec<Comp> = (0..g.rows)
            .map(|i| {
                comp_step("ssort/sample", move |ctx: &mut ProcCtx| {
                    sample_row_body(ctx, &g, &s, i)
                })
            })
            .collect();

        // Phase 3: sort the samples.
        let sort_samples = merge_sort_runs(
            Run {
                region: s.samples,
                lo: 0,
                hi: g.total_samples,
            },
            s.samples_sorted,
            0,
            s.samples_aux,
            0,
        );

        // Phase 4: pick buckets−1 pivots by fixed stride, in chunks.
        let npiv = g.buckets - 1;
        let pivot_chunks: Vec<Comp> = (0..ceil_div(npiv.max(1), PIVOT_CHUNK))
            .map(|c| {
                comp_step("ssort/pivots", move |ctx: &mut ProcCtx| {
                    pivot_chunk_body(ctx, &g, &s, c)
                })
            })
            .collect();

        // Phase 5: per-row bucket boundaries (merge row with pivots).
        let bounds_rows: Vec<Comp> = (0..g.rows)
            .map(|i| {
                comp_step("ssort/bounds", move |ctx: &mut ProcCtx| {
                    bounds_row_body(ctx, &g, &s, i)
                })
            })
            .collect();

        // Phase 6: counts transpose, prefix sums over column-major counts.
        let transpose = transpose_counts(g, s, 0, g.rows, 0, g.buckets);
        let b = ctx.block_size();
        let prefix =
            PrefixSum::with_regions(s.counts_cm, s.sums, s.sums_tree, g.rows * g.buckets, b).comp();

        // Phase 7: bucket transpose (the key move), then recurse per
        // bucket into dst.
        let scatter = bucket_scatter(g, s, 0, g.rows, 0, g.buckets);
        let recurse: Vec<Comp> = (0..g.buckets)
            .map(|j| {
                comp_dyn("ssort/recurse", move |ctx: &mut ProcCtx| {
                    let start = if j == 0 {
                        0
                    } else {
                        ctx.pread(s.sums.at(j * g.rows - 1))? as usize
                    };
                    let end = ctx.pread(s.sums.at((j + 1) * g.rows - 1))? as usize;
                    if start == end {
                        return Ok(ppm_core::comp_nop());
                    }
                    let bucket = Run {
                        region: s.bucketed,
                        lo: start,
                        hi: end,
                    };
                    Ok(sample_sort_runs(
                        bucket,
                        dst,
                        dlo + start,
                        end - start < g.n,
                    ))
                })
            })
            .collect();

        Ok(ppm_core::seq_all(vec![
            par_all(sort_rows),
            par_all(sample_rows),
            sort_samples,
            par_all(pivot_chunks),
            par_all(bounds_rows),
            transpose,
            prefix,
            scatter,
            par_all(recurse),
        ]))
    })
}

// ====================================================================
// Registered (typed DSL) samplesort
// ====================================================================

persist_struct! {
    /// Samplesort phase environment: one node's instance coordinates plus
    /// its scratch. Rides in every phase frame.
    struct SsEnv {
        src: Run,
        dst: Region,
        dlo: usize,
        n: usize,
        s: Scratch,
    }
}

persist_struct! {
    /// A 2D submatrix task (counts transpose / bucket scatter) of the
    /// row × bucket grid.
    struct SsGrid {
        env: SsEnv,
        r0: usize,
        r1: usize,
        j0: usize,
        j1: usize,
    }
}

persist_struct! {
    /// One samplesort node: sort `src` into `dst[dlo..)`; `progress`
    /// guards degenerate partitions.
    struct SsNode {
        src: Run,
        dst: Region,
        dlo: usize,
        progress: bool,
    }
}

/// The samplesort capsule family on the typed DSL: the node capsule
/// (entry point), plus — captured inside the bodies — the two 2D-grid
/// capsules, one map per row/chunk/bucket phase, and the embedded
/// mergesort and prefix-sum families.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SsCapsules {
    node: CapsuleDef<SsNode>,
}

impl SsCapsules {
    /// Declares (idempotently) the samplesort capsules — plus the
    /// mergesort and prefix-sum families they embed — on `machine`'s
    /// registry and installs their bodies.
    pub(crate) fn declare(machine: &Machine) -> SsCapsules {
        let msort = MsortCapsules::declare(machine);
        let prefix = PrefixCapsules::declare(machine);
        let mut set = CapsuleSet::new(machine);

        let node = set.declare::<SsNode>("ssort/node");
        let transpose = set.declare::<SsGrid>("ssort/transpose");
        let scatter = set.declare::<SsGrid>("ssort/scatter");

        // Phase 1: sort each row — each leaf jumps into the mergesort
        // family over its row.
        let sortrow_leaf = set.define("ssort/sortrow", move |st: &Span<SsEnv>, k, ctx| {
            let env = st.env;
            let g = Geometry::new(env.n);
            debug_assert_eq!(st.hi, st.lo + 1, "grain-1 map leaf");
            let i = st.lo;
            let row = Run {
                region: env.src.region,
                lo: env.src.lo + i * g.sub,
                hi: env.src.lo + i * g.sub + g.row_len(i),
            };
            jump_to(
                ctx,
                msort.node,
                &MsortState {
                    src: row,
                    dst: env.s.subsorted,
                    dlo: i * g.sub,
                    aux: env.s.row_aux,
                    alo: i * g.sub,
                },
                k,
            )
        });
        let sortrows = set.map_grain("ssort/sortrows", 1, sortrow_leaf);

        // Phase 2: sample each sorted row.
        let sample_leaf = set.define("ssort/sample", |st: &Span<SsEnv>, k, ctx| {
            let g = Geometry::new(st.env.n);
            for i in st.lo..st.hi {
                sample_row_body(ctx, &g, &st.env.s, i)?;
            }
            Ok(Step::Jump(k))
        });
        let samples = set.map_grain("ssort/samples", 1, sample_leaf);

        // Phase 4: pivots by chunk.
        let pivot_leaf = set.define("ssort/pivot-chunk", |st: &Span<SsEnv>, k, ctx| {
            let g = Geometry::new(st.env.n);
            for c in st.lo..st.hi {
                pivot_chunk_body(ctx, &g, &st.env.s, c)?;
            }
            Ok(Step::Jump(k))
        });
        let pivots = set.map_grain("ssort/pivot-chunks", 1, pivot_leaf);

        // Phase 5: per-row bucket boundaries.
        let bounds_leaf = set.define("ssort/bounds-row", |st: &Span<SsEnv>, k, ctx| {
            let g = Geometry::new(st.env.n);
            for i in st.lo..st.hi {
                bounds_row_body(ctx, &g, &st.env.s, i)?;
            }
            Ok(Step::Jump(k))
        });
        let bounds = set.map_grain("ssort/bounds-rows", 1, bounds_leaf);

        // Phase 9: per-bucket recursion — each leaf reads its bucket's
        // offsets and jumps back into the node capsule.
        let recurse_leaf = set.define("ssort/recurse", move |st: &Span<SsEnv>, k, ctx| {
            let env = st.env;
            let g = Geometry::new(env.n);
            debug_assert_eq!(st.hi, st.lo + 1, "grain-1 map leaf");
            let j = st.lo;
            let start = if j == 0 {
                0
            } else {
                ctx.pread(env.s.sums.at(j * g.rows - 1))? as usize
            };
            let end = ctx.pread(env.s.sums.at((j + 1) * g.rows - 1))? as usize;
            if start == end {
                return Ok(Step::Jump(k));
            }
            jump_to(
                ctx,
                node,
                &SsNode {
                    src: Run {
                        region: env.s.bucketed,
                        lo: start,
                        hi: end,
                    },
                    dst: env.dst,
                    dlo: env.dlo + start,
                    progress: end - start < env.n,
                },
                k,
            )
        });
        let recurse = set.map_grain("ssort/recurses", 1, recurse_leaf);

        // Phases 6 and 8: the 2D grid splits.
        set.body(transpose, move |st: &SsGrid, k, ctx| {
            grid_body(ctx, transpose, st, k, false, transpose_base_body)
        });
        set.body(scatter, move |st: &SsGrid, k, ctx| {
            grid_body(ctx, scatter, st, k, true, scatter_base_body)
        });

        // The node: base sort, degenerate fallback, or the nine-phase
        // pipeline chained backward as frames.
        set.body(node, move |st: &SsNode, k, ctx| {
            let n = st.src.len();
            let base = ctx.ephemeral_words().max(ctx.block_size());
            if n <= base {
                sort_base_body(ctx, st.src, st.dst, st.dlo)?;
                return Ok(Step::Jump(k));
            }
            if !st.progress {
                // Degenerate partition (e.g. all-equal keys): mergesort.
                let aux = region_at(ctx.palloc(n), n);
                return jump_to(
                    ctx,
                    msort.node,
                    &MsortState {
                        src: st.src,
                        dst: st.dst,
                        dlo: st.dlo,
                        aux,
                        alo: 0,
                    },
                    k,
                );
            }
            let g = Geometry::new(n);
            let s = Scratch::alloc(ctx, &g);
            let env = SsEnv {
                src: st.src,
                dst: st.dst,
                dlo: st.dlo,
                n,
                s,
            };
            let span = |lo: usize, hi: usize| Span { env, lo, hi };
            let grid = SsGrid {
                env,
                r0: 0,
                r1: g.rows,
                j0: 0,
                j1: g.buckets,
            };
            // Chain the phases backward from k: each phase's continuation
            // is the next phase's entry frame.
            let k9 = recurse.frame(ctx, &span(0, g.buckets), k)?;
            let k8 = scatter.frame(ctx, &grid, k9)?;
            let cm = g.rows * g.buckets;
            let pre =
                PrefixSum::with_regions(s.counts_cm, s.sums, s.sums_tree, cm, ctx.block_size());
            let k7 = prefix.chain(ctx, pre, k8)?;
            let k6 = transpose.frame(ctx, &grid, k7)?;
            let k5 = bounds.frame(ctx, &span(0, g.rows), k6)?;
            let chunks = ceil_div((g.buckets - 1).max(1), PIVOT_CHUNK);
            let k4 = pivots.frame(ctx, &span(0, chunks), k5)?;
            let k3 = msort.node.frame(
                ctx,
                &MsortState {
                    src: Run {
                        region: s.samples,
                        lo: 0,
                        hi: g.total_samples,
                    },
                    dst: s.samples_sorted,
                    dlo: 0,
                    aux: s.samples_aux,
                    alo: 0,
                },
                k4,
            )?;
            let k2 = samples.frame(ctx, &span(0, g.rows), k3)?;
            let k1 = sortrows.frame(ctx, &span(0, g.rows), k2)?;
            Ok(Step::Jump(k1))
        });

        SsCapsules { node }
    }
}

/// Shared body of the two 2D-grid capsules: run the base case inline when
/// the submatrix fits a capsule, otherwise fork on the longer dimension.
fn grid_body(
    ctx: &mut ProcCtx,
    def: CapsuleDef<SsGrid>,
    st: &SsGrid,
    k: K,
    scatter: bool,
    base: fn(&mut ProcCtx, &Geometry, &Scratch, usize, usize, usize, usize) -> ppm_pm::PmResult<()>,
) -> ppm_pm::PmResult<Step> {
    let g = Geometry::new(st.env.n);
    let (r0, r1, j0, j1) = (st.r0, st.r1, st.j0, st.j1);
    let sub = |r0, r1, j0, j1| SsGrid {
        env: st.env,
        r0,
        r1,
        j0,
        j1,
    };
    match tile_plan(r0, r1, j0, j1, tile_caps(ctx, scatter)) {
        Tile::Base => {
            base(ctx, &g, &st.env.s, r0, r1, j0, j1)?;
            Ok(Step::Jump(k))
        }
        Tile::SplitR(rm) => fork2(
            ctx,
            (def, &sub(r0, rm, j0, j1)),
            (def, &sub(rm, r1, j0, j1)),
            k,
        ),
        Tile::SplitJ(jm) => fork2(
            ctx,
            (def, &sub(r0, r1, j0, jm)),
            (def, &sub(r0, r1, jm, j1)),
            k,
        ),
    }
}

/// A samplesort instance.
#[derive(Debug, Clone, Copy)]
pub struct SampleSort {
    /// Input array (n words; not modified).
    pub input: Region,
    /// Output array (n words, sorted).
    pub output: Region,
    n: usize,
}

impl SampleSort {
    /// Carves regions for sorting `n` words. Requires `n ≤ M²` (keeps one
    /// subarray plus the pivots within a capsule's ephemeral memory).
    ///
    /// The machine's per-processor pools must be at least
    /// [`samplesort_pool_words`]`(n)` — build it with
    /// [`Machine::with_pool_words`].
    pub fn new(machine: &Machine, n: usize) -> Self {
        assert!(n > 0);
        let m = machine.cfg().ephemeral_words;
        assert!(
            n <= m * m,
            "samplesort requires n <= M^2 (n = {n}, M = {m}) so a subarray fits a capsule"
        );
        SampleSort {
            input: machine.alloc_region(n),
            output: machine.alloc_region(n),
            n,
        }
    }

    /// Loads the input (uncosted setup).
    pub fn load_input(&self, machine: &Machine, data: &[Word]) {
        assert_eq!(data.len(), self.n);
        for (i, v) in data.iter().enumerate() {
            machine.mem().store(self.input.at(i), *v);
        }
    }

    /// Reads the sorted output (oracle).
    pub fn read_output(&self, machine: &Machine) -> Vec<Word> {
        (0..self.n)
            .map(|i| machine.mem().load(self.output.at(i)))
            .collect()
    }

    /// The sorting computation.
    pub fn comp(&self) -> Comp {
        sample_sort_runs(
            Run {
                region: self.input,
                lo: 0,
                hi: self.n,
            },
            self.output,
            0,
            true,
        )
    }

    /// The sorting computation as registered persistent capsules, for
    /// `ppm_sched::Runtime::run_or_recover`: the full nine-phase pipeline
    /// — row sorts, sampling, sample sort, pivots, boundaries, counts
    /// transpose, prefix sums, bucket scatter, per-bucket recursion — as
    /// typed frames, so a killed run resumes mid-pipeline.
    pub fn pcomp(&self) -> PComp {
        let s = *self;
        Arc::new(move |machine: &Machine, finale: Word| {
            let caps = SsCapsules::declare(machine);
            caps.node
                .setup(
                    machine,
                    &SsNode {
                        src: Run {
                            region: s.input,
                            lo: 0,
                            hi: s.n,
                        },
                        dst: s.output,
                        dlo: 0,
                        progress: true,
                    },
                    K(finale),
                )
                .word()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppm_pm::{FaultConfig, PmConfig};
    use ppm_sched::{Runtime, SchedConfig};

    fn data(seed: u64, n: usize) -> Vec<u64> {
        (0..n as u64)
            .map(|i| {
                let x = i.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(seed);
                (x ^ (x >> 31)) % 100_000
            })
            .collect()
    }

    fn runtime_for_samplesort(n: usize, procs: usize, m_eph: usize, f: FaultConfig) -> Runtime {
        Runtime::new(
            Machine::with_pool_words(
                PmConfig::parallel(procs, 1 << 23)
                    .with_ephemeral_words(m_eph)
                    .with_fault(f),
                samplesort_pool_words(n),
            ),
            SchedConfig::with_slots(1 << 14),
        )
    }

    fn runtime_for_mergesort(procs: usize, m_eph: usize, f: FaultConfig) -> Runtime {
        Runtime::new(
            Machine::new(
                PmConfig::parallel(procs, 1 << 22)
                    .with_ephemeral_words(m_eph)
                    .with_fault(f),
            ),
            SchedConfig::with_slots(1 << 13),
        )
    }

    fn check_mergesort(n: usize, procs: usize, m_eph: usize, f: FaultConfig) {
        let rt = runtime_for_mergesort(procs, m_eph, f);
        let ms = MergeSort::new(rt.machine(), n);
        let input = data(7, n);
        ms.load_input(rt.machine(), &input);
        let rep = rt.run_or_replay(&ms.comp());
        assert!(rep.completed());
        let mut expect = input;
        expect.sort_unstable();
        assert_eq!(ms.read_output(rt.machine()), expect, "mergesort n={n}");
    }

    fn check_samplesort(n: usize, procs: usize, m_eph: usize, f: FaultConfig) {
        let rt = runtime_for_samplesort(n, procs, m_eph, f);
        let ss = SampleSort::new(rt.machine(), n);
        let input = data(11, n);
        ss.load_input(rt.machine(), &input);
        let rep = rt.run_or_replay(&ss.comp());
        assert!(rep.completed());
        let mut expect = input;
        expect.sort_unstable();
        assert_eq!(ss.read_output(rt.machine()), expect, "samplesort n={n}");
    }

    #[test]
    fn mergesort_small_and_base() {
        check_mergesort(1, 1, 64, FaultConfig::none());
        check_mergesort(63, 1, 64, FaultConfig::none());
        check_mergesort(64, 1, 64, FaultConfig::none());
        check_mergesort(65, 1, 64, FaultConfig::none());
    }

    #[test]
    fn mergesort_medium_parallel() {
        check_mergesort(1 << 12, 4, 256, FaultConfig::none());
    }

    #[test]
    fn mergesort_with_soft_faults() {
        check_mergesort(512, 2, 64, FaultConfig::soft(0.005, 5));
    }

    #[test]
    fn samplesort_forces_recursion() {
        // M = 64 forces the samplesort machinery for n >= 65.
        check_samplesort(400, 2, 64, FaultConfig::none());
    }

    #[test]
    fn samplesort_medium_parallel() {
        check_samplesort(1 << 12, 4, 64, FaultConfig::none());
    }

    #[test]
    fn samplesort_duplicate_heavy_falls_back() {
        let n = 600;
        let rt = runtime_for_samplesort(n, 2, 64, FaultConfig::none());
        let ss = SampleSort::new(rt.machine(), n);
        let mut input = vec![42u64; n];
        input[0] = 1;
        input[n - 1] = 99;
        ss.load_input(rt.machine(), &input);
        let rep = rt.run_or_replay(&ss.comp());
        assert!(rep.completed());
        let mut expect = input;
        expect.sort_unstable();
        assert_eq!(ss.read_output(rt.machine()), expect);
    }

    #[test]
    fn samplesort_with_soft_faults() {
        check_samplesort(500, 2, 64, FaultConfig::soft(0.003, 2));
    }

    #[test]
    fn samplesort_with_hard_fault() {
        let f = FaultConfig::none().with_scheduled_hard_fault(1, 500);
        check_samplesort(800, 3, 64, f);
    }

    #[test]
    #[should_panic(expected = "n <= M^2")]
    fn samplesort_rejects_oversized_instances() {
        let m = Machine::new(PmConfig::parallel(1, 1 << 20).with_ephemeral_words(16));
        let _ = SampleSort::new(&m, 1 << 10);
    }

    fn check_registered_mergesort(n: usize, procs: usize, m_eph: usize, f: FaultConfig) {
        let rt = runtime_for_mergesort(procs, m_eph, f);
        let ms = MergeSort::new(rt.machine(), n);
        let input = data(19, n);
        ms.load_input(rt.machine(), &input);
        let rep = rt.run_or_recover(&ms.pcomp());
        assert!(rep.completed());
        let mut expect = input;
        expect.sort_unstable();
        assert_eq!(
            ms.read_output(rt.machine()),
            expect,
            "registered mergesort n={n}"
        );
    }

    fn check_registered_samplesort(n: usize, procs: usize, m_eph: usize, f: FaultConfig) {
        let rt = runtime_for_samplesort(n, procs, m_eph, f);
        let ss = SampleSort::new(rt.machine(), n);
        let input = data(23, n);
        ss.load_input(rt.machine(), &input);
        let rep = rt.run_or_recover(&ss.pcomp());
        assert!(rep.completed());
        let mut expect = input;
        expect.sort_unstable();
        assert_eq!(
            ss.read_output(rt.machine()),
            expect,
            "registered samplesort n={n}"
        );
    }

    #[test]
    fn registered_mergesort_small_and_base() {
        check_registered_mergesort(1, 1, 64, FaultConfig::none());
        check_registered_mergesort(63, 1, 64, FaultConfig::none());
        check_registered_mergesort(65, 1, 64, FaultConfig::none());
    }

    #[test]
    fn registered_mergesort_medium_parallel() {
        check_registered_mergesort(1 << 12, 4, 256, FaultConfig::none());
    }

    #[test]
    fn registered_mergesort_with_soft_faults() {
        check_registered_mergesort(512, 2, 64, FaultConfig::soft(0.005, 7));
    }

    #[test]
    fn registered_mergesort_with_hard_fault() {
        check_registered_mergesort(
            700,
            3,
            64,
            FaultConfig::none().with_scheduled_hard_fault(2, 400),
        );
    }

    #[test]
    fn registered_samplesort_small_and_recursive() {
        check_registered_samplesort(64, 1, 64, FaultConfig::none());
        check_registered_samplesort(400, 2, 64, FaultConfig::none());
    }

    #[test]
    fn registered_samplesort_medium_parallel() {
        check_registered_samplesort(1 << 12, 4, 64, FaultConfig::none());
    }

    #[test]
    fn registered_samplesort_with_soft_faults() {
        check_registered_samplesort(500, 2, 64, FaultConfig::soft(0.003, 9));
    }

    #[test]
    fn registered_samplesort_with_hard_fault() {
        check_registered_samplesort(
            800,
            3,
            64,
            FaultConfig::none().with_scheduled_hard_fault(1, 500),
        );
    }

    #[test]
    fn registered_samplesort_duplicate_heavy_falls_back() {
        let n = 600;
        let rt = runtime_for_samplesort(n, 2, 64, FaultConfig::none());
        let ss = SampleSort::new(rt.machine(), n);
        let mut input = vec![42u64; n];
        input[0] = 1;
        input[n - 1] = 99;
        ss.load_input(rt.machine(), &input);
        let rep = rt.run_or_recover(&ss.pcomp());
        assert!(rep.completed());
        let mut expect = input;
        expect.sort_unstable();
        assert_eq!(ss.read_output(rt.machine()), expect);
    }

    #[test]
    fn samplesort_beats_mergesort_on_io_for_large_n() {
        // Theorem 7.3's point: O((n/B) log_M n) < O((n/B) log(n/M)) once
        // n/M is large. With M = 64 and n = 2^12, mergesort does ~6 merge
        // levels; samplesort one partition level.
        let n = 1 << 12;
        let work_ss = {
            let rt = runtime_for_samplesort(n, 1, 64, FaultConfig::none());
            let ss = SampleSort::new(rt.machine(), n);
            ss.load_input(rt.machine(), &data(3, n));
            let rep = rt.run_or_replay(&ss.comp());
            assert!(rep.completed());
            rep.stats().total_work()
        };
        let work_ms = {
            let rt = runtime_for_mergesort(1, 64, FaultConfig::none());
            let ms = MergeSort::new(rt.machine(), n);
            ms.load_input(rt.machine(), &data(3, n));
            let rep = rt.run_or_replay(&ms.comp());
            assert!(rep.completed());
            rep.stats().total_work()
        };
        // Same asymptotic family; samplesort should not be dramatically
        // worse and the harness tracks the crossover. Allow generous slack
        // here; EXPERIMENTS.md records the actual ratio.
        assert!(
            (work_ss as f64) < 3.0 * work_ms as f64,
            "samplesort {work_ss} vs mergesort {work_ms}"
        );
    }
}
