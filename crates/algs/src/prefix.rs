//! Parallel prefix sums (§7, Theorem 7.1).
//!
//! The standard two-phase algorithm: an **up-sweep** computes, for every
//! node of a balanced binary tree over the input's blocks, the sum of its
//! subtree (writing each partial sum to a *separate* location in the
//! `sums` tree — this is the paper's one modification, avoiding
//! write-after-read conflicts); then a **down-sweep** passes each node the
//! sum `t` of everything to its left, finishing at the leaves by writing
//! the output block.
//!
//! Each capsule is one tree node: O(1) block transfers, so maximum capsule
//! work is O(1); the tree gives O(n/B) work and O(log n) depth —
//! Theorem 7.1 exactly. Inclusive sums: `out[i] = Σ_{j ≤ i} a[j]`.

use std::sync::Arc;

use ppm_core::{
    capsule, comp_dyn, comp_fork2, comp_seq, comp_step, fork_join_frames, frame_args, CapsuleId,
    CapsuleRegistry, Comp, Cont, Machine, Next, PComp, FIRST_USER_CAPSULE_ID,
};
use ppm_pm::{write_frame, PmResult, ProcCtx, Region, Word};

use crate::util::{ceil_div, next_pow2, pread_range, pwrite_range};

/// Capsule-id base for the registered prefix-sum (three consecutive ids:
/// up-sweep, up-combine, down-sweep). The constructors are instance-free
/// (frames carry their instance's geometry), so every prefix-sum on a
/// machine shares these ids.
pub const PREFIX_ID_BASE: CapsuleId = FIRST_USER_CAPSULE_ID;

/// A prefix-sum instance: input, output, and the partial-sums tree.
#[derive(Debug, Clone, Copy)]
pub struct PrefixSum {
    /// The input array (n words).
    pub input: Region,
    /// The output array (n words).
    pub output: Region,
    /// The partial-sums tree (heap-numbered, one word per node).
    sums: Region,
    n: usize,
    /// Number of leaves (input blocks), padded to a power of two.
    leaves: usize,
    b: usize,
}

impl PrefixSum {
    /// Carves regions for an instance of size `n` on `machine`.
    pub fn new(machine: &Machine, n: usize) -> Self {
        assert!(n > 0);
        let b = machine.cfg().block_size;
        let leaves = next_pow2(ceil_div(n, b));
        PrefixSum {
            input: machine.alloc_region(n),
            output: machine.alloc_region(n),
            sums: machine.alloc_region(2 * leaves - 1),
            n,
            leaves,
            b,
        }
    }

    /// Words of `sums`-tree scratch needed for an instance of size `n`
    /// with block size `b` (for callers providing their own regions).
    pub fn sums_words(n: usize, b: usize) -> usize {
        2 * next_pow2(ceil_div(n, b)) - 1
    }

    /// Builds an instance over caller-provided regions (e.g. pool
    /// allocations inside a larger algorithm — samplesort's bucket-offset
    /// computation). `sums` must hold [`PrefixSum::sums_words`] words.
    pub fn with_regions(input: Region, output: Region, sums: Region, n: usize, b: usize) -> Self {
        assert!(n > 0);
        assert!(input.len >= n && output.len >= n);
        assert!(sums.len >= Self::sums_words(n, b));
        PrefixSum {
            input,
            output,
            sums,
            n,
            leaves: next_pow2(ceil_div(n, b)),
            b,
        }
    }

    /// Loads the input (uncosted setup).
    pub fn load_input(&self, machine: &Machine, data: &[Word]) {
        assert_eq!(data.len(), self.n);
        for (i, v) in data.iter().enumerate() {
            machine.mem().store(self.input.at(i), *v);
        }
    }

    /// Reads the output (oracle).
    pub fn read_output(&self, machine: &Machine) -> Vec<Word> {
        (0..self.n)
            .map(|i| machine.mem().load(self.output.at(i)))
            .collect()
    }

    /// Element range covered by leaf `l`.
    fn leaf_range(&self, l: usize) -> (usize, usize) {
        let lo = (l * self.b).min(self.n);
        let hi = ((l + 1) * self.b).min(self.n);
        (lo, hi)
    }

    /// The up-sweep computation for `node` covering leaves `[llo, lhi)`.
    fn upsweep(self, node: usize, llo: usize, lhi: usize) -> Comp {
        if lhi - llo == 1 {
            // Leaf: sum one input block, store at sums[node].
            comp_step("prefix/up-leaf", move |ctx: &mut ProcCtx| {
                let (lo, hi) = self.leaf_range(llo);
                let sum: Word = if lo < hi {
                    pread_range(ctx, self.input.at(lo), hi - lo)?
                        .iter()
                        .fold(0u64, |a, v| a.wrapping_add(*v))
                } else {
                    0 // padding leaf
                };
                ctx.pwrite(self.sums.at(node), sum)
            })
        } else {
            let mid = llo + (lhi - llo) / 2;
            let (lc, rc) = (2 * node + 1, 2 * node + 2);
            let combine = comp_step("prefix/up-combine", move |ctx: &mut ProcCtx| {
                let l = ctx.pread(self.sums.at(lc))?;
                let r = ctx.pread(self.sums.at(rc))?;
                ctx.pwrite(self.sums.at(node), l.wrapping_add(r))
            });
            comp_seq(
                comp_fork2(self.upsweep(lc, llo, mid), self.upsweep(rc, mid, lhi)),
                combine,
            )
        }
    }

    /// The down-sweep computation: `t` is the sum of all elements left of
    /// this subtree.
    fn downsweep(self, node: usize, llo: usize, lhi: usize, t: Word) -> Comp {
        if lhi - llo == 1 {
            comp_step("prefix/down-leaf", move |ctx: &mut ProcCtx| {
                let (lo, hi) = self.leaf_range(llo);
                if lo >= hi {
                    return Ok(()); // padding leaf
                }
                let input = pread_range(ctx, self.input.at(lo), hi - lo)?;
                let mut acc = t;
                let out: Vec<Word> = input
                    .iter()
                    .map(|v| {
                        acc = acc.wrapping_add(*v);
                        acc
                    })
                    .collect();
                pwrite_range(ctx, self.output.at(lo), &out)
            })
        } else {
            // Read the left child's sum, then recurse in parallel with the
            // appropriate offsets (the read and the fork are one dynamic-
            // expansion capsule: one read plus the fork's constant work).
            comp_dyn("prefix/down-split", move |ctx: &mut ProcCtx| {
                let mid = llo + (lhi - llo) / 2;
                let (lc, rc) = (2 * node + 1, 2 * node + 2);
                let left_sum = ctx.pread(self.sums.at(lc))?;
                Ok(comp_fork2(
                    self.downsweep(lc, llo, mid, t),
                    self.downsweep(rc, mid, lhi, t.wrapping_add(left_sum)),
                ))
            })
        }
    }

    /// The full prefix-sum computation (up-sweep, then down-sweep).
    pub fn comp(&self) -> Comp {
        let s = *self;
        let up = comp_dyn("prefix/up", move |_ctx| Ok(s.upsweep(0, 0, s.leaves)));
        let down = comp_dyn(
            "prefix/down",
            move |_ctx| Ok(s.downsweep(0, 0, s.leaves, 0)),
        );
        comp_seq(up, down)
    }

    /// Convenience wrapper: an `Arc`'d comp for storage in harnesses.
    pub fn comp_arc(&self) -> Arc<dyn Fn() -> Comp + Send + Sync> {
        let s = *self;
        Arc::new(move || s.comp())
    }

    // ================================================================
    // Registered persistent-capsule form
    // ================================================================

    /// The computation as persistent capsule frames, for
    /// `ppm_sched::run_persistent` / `recover_persistent`. Registers the
    /// [`register_prefix_sum`] constructors; frames carry the instance's
    /// full geometry, so any number of prefix-sum instances can coexist
    /// on one machine under the same ids.
    pub fn pcomp(&self) -> PComp {
        let s = *self;
        Arc::new(move |machine: &Machine, finale: Word| {
            register_prefix_sum(machine.registry());
            // Root chain: up-sweep the whole tree, then down-sweep with
            // offset 0, then the caller's finale.
            let leaves = s.leaves as Word;
            let down =
                machine.setup_frame(PREFIX_ID_BASE + 2, &s.frame(&[0, 0, leaves, 0, finale]));
            machine.setup_frame(PREFIX_ID_BASE, &s.frame(&[0, 0, leaves, down]))
        })
    }

    /// This instance's geometry as frame-argument words (the per-node
    /// words follow them in every prefix frame).
    fn geom_words(&self) -> [Word; GEOM_WORDS] {
        [
            self.input.start as Word,
            self.input.len as Word,
            self.output.start as Word,
            self.output.len as Word,
            self.sums.start as Word,
            self.sums.len as Word,
            self.n as Word,
            self.b as Word,
        ]
    }

    /// Rebuilds an instance view from frame geometry words.
    fn from_geom(g: &[Word; GEOM_WORDS]) -> PrefixSum {
        let (n, b) = (g[6] as usize, g[7] as usize);
        PrefixSum {
            input: Region {
                start: g[0] as usize,
                len: g[1] as usize,
            },
            output: Region {
                start: g[2] as usize,
                len: g[3] as usize,
            },
            sums: Region {
                start: g[4] as usize,
                len: g[5] as usize,
            },
            n,
            leaves: next_pow2(ceil_div(n, b.max(1))),
            b,
        }
    }

    /// Concatenates this instance's geometry with per-node words into one
    /// frame-argument vector.
    fn frame(&self, node_words: &[Word]) -> Vec<Word> {
        let mut args = self.geom_words().to_vec();
        args.extend_from_slice(node_words);
        args
    }

    /// Up-sweep capsule for `node` covering leaves `[llo, lhi)`,
    /// continuing with frame `k`.
    fn up_capsule(self, node: usize, llo: usize, lhi: usize, k: Word) -> Cont {
        capsule("prefix/up", move |ctx| {
            if lhi - llo == 1 {
                let (lo, hi) = self.leaf_range(llo);
                let sum: Word = if lo < hi {
                    pread_range(ctx, self.input.at(lo), hi - lo)?
                        .iter()
                        .fold(0u64, |a, v| a.wrapping_add(*v))
                } else {
                    0 // padding leaf
                };
                ctx.pwrite(self.sums.at(node), sum)?;
                return Ok(Next::JumpHandle(k));
            }
            let mid = llo + (lhi - llo) / 2;
            let (lc, rc) = (2 * node + 1, 2 * node + 2);
            let kc = write_frame(ctx, PREFIX_ID_BASE + 1, &self.frame(&[node as Word, k]))?;
            let (la, ra) = fork_join_frames(ctx, kc as Word)?;
            let lf = write_frame(
                ctx,
                PREFIX_ID_BASE,
                &self.frame(&[lc as Word, llo as Word, mid as Word, la]),
            )?;
            let rf = write_frame(
                ctx,
                PREFIX_ID_BASE,
                &self.frame(&[rc as Word, mid as Word, lhi as Word, ra]),
            )?;
            Ok(Next::ForkHandle {
                child: rf as Word,
                cont: lf as Word,
            })
        })
    }

    /// Up-sweep combine capsule: both children's sums are in; write the
    /// node's, continue with frame `k`.
    fn combine_capsule(self, node: usize, k: Word) -> Cont {
        capsule("prefix/up-combine", move |ctx| {
            let (lc, rc) = (2 * node + 1, 2 * node + 2);
            let l = ctx.pread(self.sums.at(lc))?;
            let r = ctx.pread(self.sums.at(rc))?;
            ctx.pwrite(self.sums.at(node), l.wrapping_add(r))?;
            Ok(Next::JumpHandle(k))
        })
    }

    /// Down-sweep capsule: `t` is the sum of everything left of this
    /// subtree; leaves write the output block.
    fn down_capsule(self, node: usize, llo: usize, lhi: usize, t: Word, k: Word) -> Cont {
        capsule("prefix/down", move |ctx| {
            if lhi - llo == 1 {
                self.down_leaf_body(ctx, llo, t)?;
                return Ok(Next::JumpHandle(k));
            }
            let mid = llo + (lhi - llo) / 2;
            let (lc, rc) = (2 * node + 1, 2 * node + 2);
            let left_sum = ctx.pread(self.sums.at(lc))?;
            let (la, ra) = fork_join_frames(ctx, k)?;
            let lf = write_frame(
                ctx,
                PREFIX_ID_BASE + 2,
                &self.frame(&[lc as Word, llo as Word, mid as Word, t, la]),
            )?;
            let rf = write_frame(
                ctx,
                PREFIX_ID_BASE + 2,
                &self.frame(&[
                    rc as Word,
                    mid as Word,
                    lhi as Word,
                    t.wrapping_add(left_sum),
                    ra,
                ]),
            )?;
            Ok(Next::ForkHandle {
                child: rf as Word,
                cont: lf as Word,
            })
        })
    }

    fn down_leaf_body(self, ctx: &mut ProcCtx, leaf: usize, t: Word) -> PmResult<()> {
        let (lo, hi) = self.leaf_range(leaf);
        if lo >= hi {
            return Ok(()); // padding leaf
        }
        let input = pread_range(ctx, self.input.at(lo), hi - lo)?;
        let mut acc = t;
        let out: Vec<Word> = input
            .iter()
            .map(|v| {
                acc = acc.wrapping_add(*v);
                acc
            })
            .collect();
        pwrite_range(ctx, self.output.at(lo), &out)
    }
}

/// Geometry words prefixed to every prefix-sum frame (input, output and
/// sums regions as `(start, len)` pairs, plus `n` and `B`).
const GEOM_WORDS: usize = 8;

fn split_geom<const REST: usize>(args: &[Word]) -> Result<(PrefixSum, [Word; REST]), String> {
    if args.len() != GEOM_WORDS + REST {
        return Err(format!(
            "expected {} args, got {}",
            GEOM_WORDS + REST,
            args.len()
        ));
    }
    let geom: [Word; GEOM_WORDS] = frame_args(&args[..GEOM_WORDS])?;
    let rest: [Word; REST] = frame_args(&args[GEOM_WORDS..])?;
    Ok((PrefixSum::from_geom(&geom), rest))
}

/// Registers the prefix-sum capsule constructors (idempotent). The
/// constructors are instance-free — every frame carries its instance's
/// geometry — so all prefix-sum computations on a machine share the
/// three [`PREFIX_ID_BASE`] ids. The defunctionalized twin of
/// [`PrefixSum::comp`]: each tree node becomes a frame
/// `(capsule_id, geometry…, node, llo, lhi, [t,] k)` with `k` the
/// continuation's frame handle, which is what lets a recovering
/// scheduler resume a killed run mid-tree (`ppm_sched::recover_persistent`).
pub fn register_prefix_sum(registry: &CapsuleRegistry) {
    registry.register(PREFIX_ID_BASE, "prefix/up", |args| {
        let (s, [node, llo, lhi, k]) = split_geom(args)?;
        Ok(s.up_capsule(node as usize, llo as usize, lhi as usize, k))
    });
    registry.register(PREFIX_ID_BASE + 1, "prefix/up-combine", |args| {
        let (s, [node, k]) = split_geom(args)?;
        Ok(s.combine_capsule(node as usize, k))
    });
    registry.register(PREFIX_ID_BASE + 2, "prefix/down", |args| {
        let (s, [node, llo, lhi, t, k]) = split_geom(args)?;
        Ok(s.down_capsule(node as usize, llo as usize, lhi as usize, t, k))
    });
}

/// Sequential oracle: inclusive prefix sums with wrapping addition.
pub fn prefix_sum_seq(input: &[Word]) -> Vec<Word> {
    let mut acc = 0u64;
    input
        .iter()
        .map(|v| {
            acc = acc.wrapping_add(*v);
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppm_pm::{FaultConfig, PmConfig};
    use ppm_sched::{run_computation, SchedConfig};

    fn check(n: usize, procs: usize, f: FaultConfig) {
        let m = Machine::new(PmConfig::parallel(procs, 1 << 22).with_fault(f));
        let ps = PrefixSum::new(&m, n);
        let data: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(7) % 1000).collect();
        ps.load_input(&m, &data);
        let rep = run_computation(&m, &ps.comp(), &SchedConfig::with_slots(1 << 13));
        assert!(rep.completed);
        assert_eq!(ps.read_output(&m), prefix_sum_seq(&data), "n={n} P={procs}");
    }

    #[test]
    fn small_exact_block() {
        check(8, 1, FaultConfig::none());
    }

    #[test]
    fn non_power_of_two_sizes() {
        for n in [1usize, 3, 9, 17, 100, 257] {
            check(n, 2, FaultConfig::none());
        }
    }

    #[test]
    fn parallel_medium() {
        check(1 << 12, 4, FaultConfig::none());
    }

    #[test]
    fn with_soft_faults() {
        for seed in 0..3 {
            check(300, 2, FaultConfig::soft(0.01, seed));
        }
    }

    #[test]
    fn with_a_hard_fault() {
        let f = FaultConfig::none().with_scheduled_hard_fault(1, 150);
        check(512, 3, f);
    }

    #[test]
    fn work_is_linear_in_n_over_b() {
        // Theorem 7.1: O(n/B) work. Compare faultless work at two sizes.
        let work = |n: usize| {
            let m = Machine::new(PmConfig::parallel(1, 1 << 22));
            let ps = PrefixSum::new(&m, n);
            ps.load_input(&m, &vec![1u64; n]);
            let rep = run_computation(&m, &ps.comp(), &SchedConfig::with_slots(1 << 13));
            assert!(rep.completed);
            rep.stats.total_work()
        };
        let (w1, w2) = (work(1 << 10), work(1 << 12));
        let ratio = w2 as f64 / w1 as f64;
        assert!(
            (3.0..5.5).contains(&ratio),
            "4x data should be ~4x work, got {ratio} ({w1} -> {w2})"
        );
    }

    #[test]
    fn max_capsule_work_is_constant() {
        let m = Machine::new(PmConfig::parallel(1, 1 << 22));
        let ps = PrefixSum::new(&m, 1 << 10);
        ps.load_input(&m, &vec![1u64; 1 << 10]);
        let rep = run_computation(&m, &ps.comp(), &SchedConfig::with_slots(1 << 13));
        assert!(rep.completed);
        assert!(
            rep.stats.max_capsule_work <= 12,
            "C = {} should be O(1)",
            rep.stats.max_capsule_work
        );
    }

    #[test]
    fn oracle_matches_hand_computation() {
        assert_eq!(prefix_sum_seq(&[1, 2, 3, 4]), vec![1, 3, 6, 10]);
        assert_eq!(prefix_sum_seq(&[]), Vec::<u64>::new());
    }

    fn check_registered(n: usize, procs: usize, f: FaultConfig) {
        let m = Machine::new(PmConfig::parallel(procs, 1 << 22).with_fault(f));
        let ps = PrefixSum::new(&m, n);
        let data: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(13) % 997).collect();
        ps.load_input(&m, &data);
        let rep = ppm_sched::run_persistent(&m, &ps.pcomp(), &SchedConfig::with_slots(1 << 13));
        assert!(rep.completed);
        assert_eq!(
            ps.read_output(&m),
            prefix_sum_seq(&data),
            "registered n={n} P={procs}"
        );
    }

    #[test]
    fn registered_form_matches_oracle() {
        for n in [1usize, 8, 17, 257] {
            check_registered(n, 1, FaultConfig::none());
        }
        check_registered(1 << 12, 4, FaultConfig::none());
    }

    #[test]
    fn registered_form_with_soft_faults() {
        for seed in 0..3 {
            check_registered(300, 2, FaultConfig::soft(0.01, seed));
        }
    }

    #[test]
    fn two_registered_instances_coexist_on_one_machine() {
        // Frames carry their instance's geometry, so a second instance
        // under the same capsule ids must not rehydrate into the first
        // instance's regions.
        let m = Machine::new(PmConfig::parallel(2, 1 << 22));
        let ps1 = PrefixSum::new(&m, 300);
        let ps2 = PrefixSum::new(&m, 77);
        let d1: Vec<u64> = (0..300).map(|i| i * 3 + 1).collect();
        let d2: Vec<u64> = (0..77).map(|i| 1000 - i).collect();
        ps1.load_input(&m, &d1);
        ps2.load_input(&m, &d2);
        let rep1 = ppm_sched::run_persistent(&m, &ps1.pcomp(), &SchedConfig::with_slots(1 << 12));
        assert!(rep1.completed);
        let rep2 = ppm_sched::run_persistent(&m, &ps2.pcomp(), &SchedConfig::with_slots(1 << 12));
        assert!(rep2.completed);
        assert_eq!(ps1.read_output(&m), prefix_sum_seq(&d1));
        assert_eq!(ps2.read_output(&m), prefix_sum_seq(&d2));
    }

    #[test]
    fn registered_form_with_a_hard_fault() {
        check_registered(
            512,
            3,
            FaultConfig::none().with_scheduled_hard_fault(1, 150),
        );
    }
}
