//! Parallel prefix sums (§7, Theorem 7.1).
//!
//! The standard two-phase algorithm: an **up-sweep** computes, for every
//! node of a balanced binary tree over the input's blocks, the sum of its
//! subtree (writing each partial sum to a *separate* location in the
//! `sums` tree — this is the paper's one modification, avoiding
//! write-after-read conflicts); then a **down-sweep** passes each node the
//! sum `t` of everything to its left, finishing at the leaves by writing
//! the output block.
//!
//! Each capsule is one tree node: O(1) block transfers, so maximum capsule
//! work is O(1); the tree gives O(n/B) work and O(log n) depth —
//! Theorem 7.1 exactly. Inclusive sums: `out[i] = Σ_{j ≤ i} a[j]`.
//!
//! The algorithm ships in two forms: the closure form ([`PrefixSum::comp`])
//! and the registered persistent form ([`PrefixSum::pcomp`]), built on the
//! typed `ppm_core::dsl` — three capsules whose frames carry the instance
//! geometry ([`PrefixSum`] itself implements
//! [`ppm_core::persist::Persist`]), so any number of instances
//! coexist under the registry-allocated ids and a crashed run resumes
//! mid-tree.

use std::sync::Arc;

use ppm_core::dsl::{fork2, CapsuleDef, CapsuleSet, Step, K};
use ppm_core::persist::{Persist, ValueError, WordReader};
use ppm_core::{comp_dyn, comp_fork2, comp_seq, comp_step, persist_struct, Comp, Machine, PComp};
use ppm_pm::{PmResult, ProcCtx, Region, Word};

use crate::util::{ceil_div, next_pow2, pread_range, pwrite_range};

/// A prefix-sum instance: input, output, and the partial-sums tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefixSum {
    /// The input array (n words).
    pub input: Region,
    /// The output array (n words).
    pub output: Region,
    /// The partial-sums tree (heap-numbered, one word per node).
    sums: Region,
    n: usize,
    /// Number of leaves (input blocks), padded to a power of two.
    leaves: usize,
    b: usize,
}

/// The instance geometry rides inside every prefix frame. `leaves` is
/// derived, so the impl is manual: it encodes the five defining fields
/// and recomputes `leaves` on decode.
impl Persist for PrefixSum {
    const WORDS: usize = 3 * Region::WORDS + 2;

    fn encode(&self, out: &mut Vec<Word>) {
        self.input.encode(out);
        self.output.encode(out);
        self.sums.encode(out);
        self.n.encode(out);
        self.b.encode(out);
    }

    fn decode(r: &mut WordReader<'_>) -> Result<Self, ValueError> {
        let input = Region::decode(r)?;
        let output = Region::decode(r)?;
        let sums = Region::decode(r)?;
        let n = usize::decode(r)?;
        let b = usize::decode(r)?;
        Ok(PrefixSum {
            input,
            output,
            sums,
            n,
            leaves: next_pow2(ceil_div(n, b.max(1))),
            b,
        })
    }

    fn pool_refs(&self, out: &mut ppm_core::PoolRefs) {
        self.input.pool_refs(out);
        self.output.pool_refs(out);
        self.sums.pool_refs(out);
    }
}

impl PrefixSum {
    /// Carves regions for an instance of size `n` on `machine`.
    pub fn new(machine: &Machine, n: usize) -> Self {
        assert!(n > 0);
        let b = machine.cfg().block_size;
        let leaves = next_pow2(ceil_div(n, b));
        PrefixSum {
            input: machine.alloc_region(n),
            output: machine.alloc_region(n),
            sums: machine.alloc_region(2 * leaves - 1),
            n,
            leaves,
            b,
        }
    }

    /// Words of `sums`-tree scratch needed for an instance of size `n`
    /// with block size `b` (for callers providing their own regions).
    pub fn sums_words(n: usize, b: usize) -> usize {
        2 * next_pow2(ceil_div(n, b)) - 1
    }

    /// Builds an instance over caller-provided regions (e.g. pool
    /// allocations inside a larger algorithm — samplesort's bucket-offset
    /// computation). `sums` must hold [`PrefixSum::sums_words`] words.
    pub fn with_regions(input: Region, output: Region, sums: Region, n: usize, b: usize) -> Self {
        assert!(n > 0);
        assert!(input.len >= n && output.len >= n);
        assert!(sums.len >= Self::sums_words(n, b));
        PrefixSum {
            input,
            output,
            sums,
            n,
            leaves: next_pow2(ceil_div(n, b)),
            b,
        }
    }

    /// Loads the input (uncosted setup).
    pub fn load_input(&self, machine: &Machine, data: &[Word]) {
        assert_eq!(data.len(), self.n);
        for (i, v) in data.iter().enumerate() {
            machine.mem().store(self.input.at(i), *v);
        }
    }

    /// Reads the output (oracle).
    pub fn read_output(&self, machine: &Machine) -> Vec<Word> {
        (0..self.n)
            .map(|i| machine.mem().load(self.output.at(i)))
            .collect()
    }

    /// Element range covered by leaf `l`.
    fn leaf_range(&self, l: usize) -> (usize, usize) {
        let lo = (l * self.b).min(self.n);
        let hi = ((l + 1) * self.b).min(self.n);
        (lo, hi)
    }

    /// Sums one leaf's input block (an up-sweep leaf body).
    fn up_leaf_sum(&self, ctx: &mut ProcCtx, leaf: usize) -> PmResult<Word> {
        let (lo, hi) = self.leaf_range(leaf);
        Ok(if lo < hi {
            pread_range(ctx, self.input.at(lo), hi - lo)?
                .iter()
                .fold(0u64, |a, v| a.wrapping_add(*v))
        } else {
            0 // padding leaf
        })
    }

    /// Writes one leaf's output block given `t`, the sum of everything to
    /// its left (a down-sweep leaf body).
    fn down_leaf_body(self, ctx: &mut ProcCtx, leaf: usize, t: Word) -> PmResult<()> {
        let (lo, hi) = self.leaf_range(leaf);
        if lo >= hi {
            return Ok(()); // padding leaf
        }
        let input = pread_range(ctx, self.input.at(lo), hi - lo)?;
        let mut acc = t;
        let out: Vec<Word> = input
            .iter()
            .map(|v| {
                acc = acc.wrapping_add(*v);
                acc
            })
            .collect();
        pwrite_range(ctx, self.output.at(lo), &out)
    }

    /// The up-sweep computation for `node` covering leaves `[llo, lhi)`.
    fn upsweep(self, node: usize, llo: usize, lhi: usize) -> Comp {
        if lhi - llo == 1 {
            // Leaf: sum one input block, store at sums[node].
            comp_step("prefix/up-leaf", move |ctx: &mut ProcCtx| {
                let sum = self.up_leaf_sum(ctx, llo)?;
                ctx.pwrite(self.sums.at(node), sum)
            })
        } else {
            let mid = llo + (lhi - llo) / 2;
            let (lc, rc) = (2 * node + 1, 2 * node + 2);
            let combine = comp_step("prefix/up-combine", move |ctx: &mut ProcCtx| {
                let l = ctx.pread(self.sums.at(lc))?;
                let r = ctx.pread(self.sums.at(rc))?;
                ctx.pwrite(self.sums.at(node), l.wrapping_add(r))
            });
            comp_seq(
                comp_fork2(self.upsweep(lc, llo, mid), self.upsweep(rc, mid, lhi)),
                combine,
            )
        }
    }

    /// The down-sweep computation: `t` is the sum of all elements left of
    /// this subtree.
    fn downsweep(self, node: usize, llo: usize, lhi: usize, t: Word) -> Comp {
        if lhi - llo == 1 {
            comp_step("prefix/down-leaf", move |ctx: &mut ProcCtx| {
                self.down_leaf_body(ctx, llo, t)
            })
        } else {
            // Read the left child's sum, then recurse in parallel with the
            // appropriate offsets (the read and the fork are one dynamic-
            // expansion capsule: one read plus the fork's constant work).
            comp_dyn("prefix/down-split", move |ctx: &mut ProcCtx| {
                let mid = llo + (lhi - llo) / 2;
                let (lc, rc) = (2 * node + 1, 2 * node + 2);
                let left_sum = ctx.pread(self.sums.at(lc))?;
                Ok(comp_fork2(
                    self.downsweep(lc, llo, mid, t),
                    self.downsweep(rc, mid, lhi, t.wrapping_add(left_sum)),
                ))
            })
        }
    }

    /// The full prefix-sum computation (up-sweep, then down-sweep).
    pub fn comp(&self) -> Comp {
        let s = *self;
        let up = comp_dyn("prefix/up", move |_ctx| Ok(s.upsweep(0, 0, s.leaves)));
        let down = comp_dyn(
            "prefix/down",
            move |_ctx| Ok(s.downsweep(0, 0, s.leaves, 0)),
        );
        comp_seq(up, down)
    }

    /// Convenience wrapper: an `Arc`'d comp for storage in harnesses.
    pub fn comp_arc(&self) -> Arc<dyn Fn() -> Comp + Send + Sync> {
        let s = *self;
        Arc::new(move || s.comp())
    }

    /// The computation as registered persistent capsules, for
    /// `ppm_sched::Runtime::run_or_recover`. Declares the
    /// `PrefixCapsules` family; frames carry the instance's full
    /// geometry, so any number of prefix-sum instances can coexist on one
    /// machine under the registry-allocated ids.
    pub fn pcomp(&self) -> PComp {
        let s = *self;
        Arc::new(move |machine: &Machine, finale: Word| {
            let caps = PrefixCapsules::declare(machine);
            // Root chain: up-sweep the whole tree, then down-sweep with
            // offset 0, then the caller's finale.
            let down = caps.down.setup(
                machine,
                &DownState {
                    s,
                    node: 0,
                    llo: 0,
                    lhi: s.leaves,
                    t: 0,
                },
                K(finale),
            );
            caps.up
                .setup(
                    machine,
                    &UpState {
                        s,
                        node: 0,
                        llo: 0,
                        lhi: s.leaves,
                    },
                    down,
                )
                .word()
        })
    }
}

// ====================================================================
// Registered persistent-capsule form (typed DSL)
// ====================================================================

persist_struct! {
    /// Up-sweep node state: instance geometry plus the node's heap index
    /// and leaf span.
    struct UpState {
        s: PrefixSum,
        node: usize,
        llo: usize,
        lhi: usize,
    }
}

persist_struct! {
    /// Up-sweep combine state: both children's sums are in; write the
    /// node's.
    struct CombineState {
        s: PrefixSum,
        node: usize,
    }
}

persist_struct! {
    /// Down-sweep node state: `t` is the sum of everything left of this
    /// subtree.
    struct DownState {
        s: PrefixSum,
        node: usize,
        llo: usize,
        lhi: usize,
        t: Word,
    }
}

/// The prefix-sum capsule family — the defunctionalized twin of
/// [`PrefixSum::comp`] on the typed DSL. Each tree node is a frame whose
/// state is the instance geometry plus the node coordinates, which is
/// what lets a recovering session resume a killed run mid-tree.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PrefixCapsules {
    up: CapsuleDef<UpState>,
    down: CapsuleDef<DownState>,
}

impl PrefixCapsules {
    /// Declares (idempotently) the three prefix capsules on `machine`'s
    /// registry and installs their bodies.
    pub(crate) fn declare(machine: &Machine) -> PrefixCapsules {
        let mut set = CapsuleSet::new(machine);
        let up = set.declare::<UpState>("prefix/up");
        let combine = set.declare::<CombineState>("prefix/up-combine");
        let down = set.declare::<DownState>("prefix/down");

        set.body(up, move |st: &UpState, k, ctx| {
            let s = st.s;
            if st.lhi - st.llo == 1 {
                let sum = s.up_leaf_sum(ctx, st.llo)?;
                ctx.pwrite(s.sums.at(st.node), sum)?;
                return Ok(Step::Jump(k));
            }
            let mid = st.llo + (st.lhi - st.llo) / 2;
            let (lc, rc) = (2 * st.node + 1, 2 * st.node + 2);
            let kc = combine.frame(ctx, &CombineState { s, node: st.node }, k)?;
            fork2(
                ctx,
                (
                    up,
                    &UpState {
                        s,
                        node: lc,
                        llo: st.llo,
                        lhi: mid,
                    },
                ),
                (
                    up,
                    &UpState {
                        s,
                        node: rc,
                        llo: mid,
                        lhi: st.lhi,
                    },
                ),
                kc,
            )
        });

        set.body(combine, move |st: &CombineState, k, ctx| {
            let s = st.s;
            let (lc, rc) = (2 * st.node + 1, 2 * st.node + 2);
            let l = ctx.pread(s.sums.at(lc))?;
            let r = ctx.pread(s.sums.at(rc))?;
            ctx.pwrite(s.sums.at(st.node), l.wrapping_add(r))?;
            Ok(Step::Jump(k))
        });

        set.body(down, move |st: &DownState, k, ctx| {
            let s = st.s;
            if st.lhi - st.llo == 1 {
                s.down_leaf_body(ctx, st.llo, st.t)?;
                return Ok(Step::Jump(k));
            }
            let mid = st.llo + (st.lhi - st.llo) / 2;
            let (lc, rc) = (2 * st.node + 1, 2 * st.node + 2);
            let left_sum = ctx.pread(s.sums.at(lc))?;
            fork2(
                ctx,
                (
                    down,
                    &DownState {
                        s,
                        node: lc,
                        llo: st.llo,
                        lhi: mid,
                        t: st.t,
                    },
                ),
                (
                    down,
                    &DownState {
                        s,
                        node: rc,
                        llo: mid,
                        lhi: st.lhi,
                        t: st.t.wrapping_add(left_sum),
                    },
                ),
                k,
            )
        });

        PrefixCapsules { up, down }
    }

    /// Writes the up-then-down frame chain for instance `s` from within a
    /// running capsule, returning the chain's entry handle. How larger
    /// registered algorithms (samplesort) embed a prefix sum as a phase.
    pub(crate) fn chain(&self, ctx: &mut ProcCtx, s: PrefixSum, k: K) -> PmResult<K> {
        let down = self.down.frame(
            ctx,
            &DownState {
                s,
                node: 0,
                llo: 0,
                lhi: s.leaves,
                t: 0,
            },
            k,
        )?;
        self.up.frame(
            ctx,
            &UpState {
                s,
                node: 0,
                llo: 0,
                lhi: s.leaves,
            },
            down,
        )
    }
}

/// Sequential oracle: inclusive prefix sums with wrapping addition.
pub fn prefix_sum_seq(input: &[Word]) -> Vec<Word> {
    let mut acc = 0u64;
    input
        .iter()
        .map(|v| {
            acc = acc.wrapping_add(*v);
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppm_pm::{FaultConfig, PmConfig};
    use ppm_sched::{Runtime, SchedConfig};

    fn runtime(procs: usize, f: FaultConfig) -> Runtime {
        Runtime::new(
            Machine::new(PmConfig::parallel(procs, 1 << 22).with_fault(f)),
            SchedConfig::with_slots(1 << 13),
        )
    }

    fn check(n: usize, procs: usize, f: FaultConfig) {
        let rt = runtime(procs, f);
        let ps = PrefixSum::new(rt.machine(), n);
        let data: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(7) % 1000).collect();
        ps.load_input(rt.machine(), &data);
        let rep = rt.run_or_replay(&ps.comp());
        assert!(rep.completed());
        assert_eq!(
            ps.read_output(rt.machine()),
            prefix_sum_seq(&data),
            "n={n} P={procs}"
        );
    }

    #[test]
    fn small_exact_block() {
        check(8, 1, FaultConfig::none());
    }

    #[test]
    fn non_power_of_two_sizes() {
        for n in [1usize, 3, 9, 17, 100, 257] {
            check(n, 2, FaultConfig::none());
        }
    }

    #[test]
    fn parallel_medium() {
        check(1 << 12, 4, FaultConfig::none());
    }

    #[test]
    fn with_soft_faults() {
        for seed in 0..3 {
            check(300, 2, FaultConfig::soft(0.01, seed));
        }
    }

    #[test]
    fn with_a_hard_fault() {
        let f = FaultConfig::none().with_scheduled_hard_fault(1, 150);
        check(512, 3, f);
    }

    #[test]
    fn work_is_linear_in_n_over_b() {
        // Theorem 7.1: O(n/B) work. Compare faultless work at two sizes.
        let work = |n: usize| {
            let rt = runtime(1, FaultConfig::none());
            let ps = PrefixSum::new(rt.machine(), n);
            ps.load_input(rt.machine(), &vec![1u64; n]);
            let rep = rt.run_or_replay(&ps.comp());
            assert!(rep.completed());
            rep.stats().total_work()
        };
        let (w1, w2) = (work(1 << 10), work(1 << 12));
        let ratio = w2 as f64 / w1 as f64;
        assert!(
            (3.0..5.5).contains(&ratio),
            "4x data should be ~4x work, got {ratio} ({w1} -> {w2})"
        );
    }

    #[test]
    fn max_capsule_work_is_constant() {
        let rt = runtime(1, FaultConfig::none());
        let ps = PrefixSum::new(rt.machine(), 1 << 10);
        ps.load_input(rt.machine(), &vec![1u64; 1 << 10]);
        let rep = rt.run_or_replay(&ps.comp());
        assert!(rep.completed());
        assert!(
            rep.stats().max_capsule_work <= 12,
            "C = {} should be O(1)",
            rep.stats().max_capsule_work
        );
    }

    #[test]
    fn oracle_matches_hand_computation() {
        assert_eq!(prefix_sum_seq(&[1, 2, 3, 4]), vec![1, 3, 6, 10]);
        assert_eq!(prefix_sum_seq(&[]), Vec::<u64>::new());
    }

    #[test]
    fn geometry_round_trips_through_persist() {
        let rt = runtime(1, FaultConfig::none());
        let ps = PrefixSum::new(rt.machine(), 300);
        let words = ppm_core::persist::encode_args(&ps);
        assert_eq!(words.len(), PrefixSum::WORDS);
        let back: PrefixSum = ppm_core::persist::decode_args("prefix", &words).unwrap();
        assert_eq!(back.input, ps.input);
        assert_eq!(back.sums, ps.sums);
        assert_eq!(back.leaves, ps.leaves, "derived field recomputed");
    }

    fn check_registered(n: usize, procs: usize, f: FaultConfig) {
        let rt = runtime(procs, f);
        let ps = PrefixSum::new(rt.machine(), n);
        let data: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(13) % 997).collect();
        ps.load_input(rt.machine(), &data);
        let rep = rt.run_or_recover(&ps.pcomp());
        assert!(rep.completed());
        assert_eq!(
            ps.read_output(rt.machine()),
            prefix_sum_seq(&data),
            "registered n={n} P={procs}"
        );
    }

    #[test]
    fn registered_form_matches_oracle() {
        for n in [1usize, 8, 17, 257] {
            check_registered(n, 1, FaultConfig::none());
        }
        check_registered(1 << 12, 4, FaultConfig::none());
    }

    #[test]
    fn registered_form_with_soft_faults() {
        for seed in 0..3 {
            check_registered(300, 2, FaultConfig::soft(0.01, seed));
        }
    }

    #[test]
    fn two_registered_instances_coexist_on_one_machine() {
        // Frames carry their instance's geometry, so a second instance
        // under the same capsule ids must not rehydrate into the first
        // instance's regions.
        let rt = Runtime::new(
            Machine::new(PmConfig::parallel(2, 1 << 22)),
            SchedConfig::with_slots(1 << 12),
        );
        let ps1 = PrefixSum::new(rt.machine(), 300);
        let ps2 = PrefixSum::new(rt.machine(), 77);
        let d1: Vec<u64> = (0..300).map(|i| i * 3 + 1).collect();
        let d2: Vec<u64> = (0..77).map(|i| 1000 - i).collect();
        ps1.load_input(rt.machine(), &d1);
        ps2.load_input(rt.machine(), &d2);
        assert!(rt.run_or_recover(&ps1.pcomp()).completed());
        assert!(rt.run_or_recover(&ps2.pcomp()).completed());
        assert_eq!(ps1.read_output(rt.machine()), prefix_sum_seq(&d1));
        assert_eq!(ps2.read_output(rt.machine()), prefix_sum_seq(&d2));
    }

    #[test]
    fn registered_form_with_a_hard_fault() {
        check_registered(
            512,
            3,
            FaultConfig::none().with_scheduled_hard_fault(1, 150),
        );
    }
}
