//! # `ppm-algs` — fault-tolerant algorithms for the Parallel-PM (§7)
//!
//! The paper's four algorithms, written as write-after-read conflict free
//! fork-join computations whose capsules are all atomically idempotent —
//! they run unchanged under soft and hard faults on `ppm-sched`:
//!
//! * [`prefix`] — parallel prefix sums: O(n/B) work, O(log n) depth,
//!   O(1) maximum capsule work (Theorem 7.1).
//! * [`merge`] — merging sorted sequences by dual binary search:
//!   O(n/B) work, O(log n) depth, O(log n) capsule work (Theorem 7.2).
//! * [`sort`] — mergesort (O((n/B) log(n/M)) work) and the samplesort of
//!   Theorem 7.3 (O((n/B) log_M n) work, O(M/B) capsule work).
//! * [`matmul`] — 8-way recursive matrix multiply with copy-out
//!   temporaries: O(n³/(B√M)) work, O(M^{3/2}) capsule work
//!   (Theorem 7.4).
//!
//! Every algorithm ships with a plain sequential oracle used by the tests
//! and the experiment harness.
//!
//! Every §7 algorithm additionally ships in **registered
//! persistent-capsule form** ([`PrefixSum::pcomp`], [`Merge::pcomp`],
//! [`MergeSort::pcomp`], [`SampleSort::pcomp`], [`MatMul::pcomp`]): the
//! same recursions defunctionalized onto the typed `ppm_core::dsl` —
//! capsule states declared with `persist_struct!`, ids allocated by name
//! through the registry, frames written by the `fork2`/`jump_to`/
//! `map_grain` combinators — so a run killed mid-computation (`kill -9`)
//! is *resumed* from its in-flight deque entries by
//! `ppm_sched::Runtime::run_or_recover` instead of replayed from the
//! root.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod matmul;
pub mod merge;
pub mod prefix;
pub mod sort;
pub mod util;

pub use matmul::{matmul_pool_words, matmul_rect_seq, matmul_seq, MatMul, MatMulRect};
pub use merge::{merge_seq, Merge};
pub use prefix::{prefix_sum_seq, PrefixSum};
pub use sort::{samplesort_pool_words, MergeSort, SampleSort};
