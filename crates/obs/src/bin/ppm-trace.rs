//! `ppm-trace` — the causal-trace profiler.
//!
//! Ingests one or many span/event JSONL files written by a run (the
//! coordinator's `<trace>.spans.jsonl`, per-shard
//! `<trace>.shard<k>.spans.jsonl` siblings, the ring-trace files whose
//! final `"ts"` line carries drop accounting — or a `<trace>.manifest`
//! naming the whole family), reconstructs the capsule DAG across process
//! boundaries, and reports the paper's cost quantities as observed:
//! work `W`, depth `D`, parallelism `W/D`, per-phase / per-shard / per-
//! capsule breakdowns, the critical path, and fault-wasted work measured
//! against the exactly-once commit set.
//!
//! Besides the text report (stdout) it writes:
//!
//! * `<out-dir>/<name>.folded` — folded stacks for flamegraph tooling;
//! * `<out-dir>/TRACE_<name>.json` — the `ppm-bench` restricted-JSON
//!   report shape (name `trace_<name>`), which `bench_check` loads and
//!   gates exactly like a `BENCH_*.json`.
//!
//! Exit status: `0` on success, `1` under `--strict` when the trace is
//! unusable (no spans) or the DAG is incomplete (unresolved parents),
//! `2` on usage errors.

use std::path::PathBuf;
use std::process::ExitCode;

use ppm_obs::{folded_stacks, Analysis, TraceSet};

const USAGE: &str = "usage: ppm-trace [options] <spans.jsonl | trace.manifest>...
  --name=<n>     experiment name for output files (default: trace)
  --title=<t>    report title (default: the name)
  --out-dir=<d>  directory for TRACE_<name>.json and <name>.folded (default: .)
  --report-only  print the report, write no files
  --strict       exit 1 on an empty trace or an incomplete DAG";

fn main() -> ExitCode {
    let mut name = String::from("trace");
    let mut title: Option<String> = None;
    let mut out_dir = PathBuf::from(".");
    let mut report_only = false;
    let mut strict = false;
    let mut inputs: Vec<PathBuf> = Vec::new();

    for arg in std::env::args().skip(1) {
        if let Some(v) = arg.strip_prefix("--name=") {
            name = v.to_string();
        } else if let Some(v) = arg.strip_prefix("--title=") {
            title = Some(v.to_string());
        } else if let Some(v) = arg.strip_prefix("--out-dir=") {
            out_dir = PathBuf::from(v);
        } else if arg == "--report-only" {
            report_only = true;
        } else if arg == "--strict" {
            strict = true;
        } else if arg == "--help" || arg == "-h" {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        } else if arg.starts_with("--") {
            eprintln!("ppm-trace: unknown option {arg}\n{USAGE}");
            return ExitCode::from(2);
        } else {
            inputs.push(PathBuf::from(arg));
        }
    }
    if inputs.is_empty() {
        eprintln!("ppm-trace: no input files\n{USAGE}");
        return ExitCode::from(2);
    }

    // Manifests expand to their (existing) members; plain files are taken
    // as-is so a partial collection still profiles.
    let mut files: Vec<PathBuf> = Vec::new();
    for input in &inputs {
        if input.extension().is_some_and(|e| e == "manifest") {
            match ppm_obs::expand_manifest(input) {
                Ok(members) => files.extend(members),
                Err(e) => {
                    eprintln!("ppm-trace: cannot read manifest {}: {e}", input.display());
                    return ExitCode::from(2);
                }
            }
        } else {
            files.push(input.clone());
        }
    }

    let mut set = TraceSet::default();
    for f in &files {
        if let Err(e) = set.ingest_file(f) {
            eprintln!("ppm-trace: cannot read {}: {e}", f.display());
            return ExitCode::from(2);
        }
    }

    let analysis = set.analyze();
    let title = title.unwrap_or_else(|| name.clone());
    print!("{}", analysis.render_report(&title));

    let mut failed = false;
    if analysis.spans_total == 0 {
        eprintln!(
            "ppm-trace: no spans in {} file(s) — was PPM_TRACE_FILE set for the run?",
            files.len()
        );
        failed = true;
    }
    if analysis.unresolved_parents > 0 {
        eprintln!(
            "ppm-trace: DAG incomplete: {} unresolved parent(s) — pass every shard's \
             spans file (or the run's .manifest)",
            analysis.unresolved_parents
        );
        failed = true;
    }

    if !report_only {
        if let Err(e) = std::fs::create_dir_all(&out_dir) {
            eprintln!("ppm-trace: cannot create {}: {e}", out_dir.display());
            return ExitCode::from(2);
        }
        let folded = out_dir.join(format!("{name}.folded"));
        if let Err(e) = std::fs::write(&folded, folded_stacks(&set)) {
            eprintln!("ppm-trace: cannot write {}: {e}", folded.display());
            return ExitCode::from(2);
        }
        let json = out_dir.join(format!("TRACE_{name}.json"));
        if let Err(e) = std::fs::write(&json, trace_json(&name, &analysis, files.len())) {
            eprintln!("ppm-trace: cannot write {}: {e}", json.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "ppm-trace: wrote {} and {}",
            folded.display(),
            json.display()
        );
    }

    if strict && failed {
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}

/// Renders the analysis as a `ppm-bench` report (`{name, meta, metrics}`
/// in the restricted JSON subset `BenchReport::parse` reads). Hand-rolled
/// here because the dependency points the other way: `ppm-bench` links
/// this crate.
fn trace_json(name: &str, a: &Analysis, files: usize) -> String {
    let metrics: &[(&str, f64)] = &[
        ("work_units", a.work as f64),
        ("depth_units", a.depth as f64),
        ("parallelism", a.parallelism),
        ("spans_total", a.spans_total as f64),
        ("spans_completed", a.completed as f64),
        ("spans_interrupted", a.interrupted as f64),
        ("roots", a.roots as f64),
        ("unresolved_parents", a.unresolved_parents as f64),
        ("useful_work_units", a.useful_work as f64),
        ("wasted_work_units", a.wasted_work as f64),
        ("wasted_ratio", a.wasted_ratio),
        ("dropped_events", a.dropped_events as f64),
    ];
    let body = metrics
        .iter()
        .map(|(k, v)| format!("\"{k}\": {}", fmt_f64(*v)))
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "{{\n  \"name\": \"trace_{name}\",\n  \"meta\": {{\"tool\": \"ppm-trace\", \
         \"files\": \"{files}\"}},\n  \"metrics\": {{{body}}}\n}}\n"
    )
}

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v:.6}");
        s.trim_end_matches('0').trim_end_matches('.').to_string()
    } else {
        "0".to_string()
    }
}
