//! The scrape surface: a hand-rolled blocking HTTP/1.1 listener over
//! stdlib `TcpListener` (the build is fully offline — no HTTP framework)
//! plus the matching one-shot GET client the coordinator uses to scrape
//! its workers.
//!
//! The server answers `GET /metrics` (and `/`) with whatever the body
//! closure renders at that instant, `Content-Type:
//! text/plain; version=0.0.4` per the Prometheus exposition spec, and
//! closes the connection. One accept thread, nonblocking accept with a
//! short poll so shutdown is prompt; request handling is sequential —
//! scrapers poll at human timescales and the registry render is
//! microseconds.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Closure rendering the scrape body; called once per request.
pub type BodyFn = Arc<dyn Fn() -> String + Send + Sync>;

/// A running metrics endpoint. Dropping (or [`MetricsServer::stop`])
/// shuts the accept loop down.
pub struct MetricsServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for MetricsServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MetricsServer({})", self.addr)
    }
}

impl MetricsServer {
    /// Binds `127.0.0.1:port` (`port` 0 picks an ephemeral port — read it
    /// back from [`MetricsServer::port`]) and serves `body()` on every
    /// `GET /metrics`.
    pub fn start(port: u16, body: BodyFn) -> std::io::Result<Self> {
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let stop = shutdown.clone();
        let handle = std::thread::Builder::new()
            .name("ppm-obs-http".into())
            .spawn(move || accept_loop(listener, stop, body))?;
        Ok(MetricsServer {
            addr,
            shutdown,
            handle: Some(handle),
        })
    }

    /// The bound address (useful with ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound port.
    pub fn port(&self) -> u16 {
        self.addr.port()
    }

    /// Stops the accept loop and joins the thread.
    pub fn stop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: TcpListener, shutdown: Arc<AtomicBool>, body: BodyFn) {
    while !shutdown.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = serve_one(stream, &body);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

fn serve_one(mut stream: TcpStream, body: &BodyFn) -> std::io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    // Read until the header terminator (we ignore request bodies).
    let mut req = Vec::new();
    let mut buf = [0u8; 1024];
    loop {
        let n = stream.read(&mut buf)?;
        if n == 0 {
            break;
        }
        req.extend_from_slice(&buf[..n]);
        if req.windows(4).any(|w| w == b"\r\n\r\n") || req.len() > 16 * 1024 {
            break;
        }
    }
    let first = String::from_utf8_lossy(&req);
    let first = first.lines().next().unwrap_or("");
    let mut parts = first.split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    let (status, text) = if method != "GET" {
        (
            "405 Method Not Allowed",
            String::from("method not allowed\n"),
        )
    } else if path == "/metrics" || path == "/" {
        ("200 OK", body())
    } else {
        ("404 Not Found", String::from("try /metrics\n"))
    };
    let resp = format!(
        "HTTP/1.1 {status}\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{text}",
        text.len()
    );
    stream.write_all(resp.as_bytes())?;
    stream.flush()
}

/// One-shot `GET` against a local scrape endpoint; returns the body on
/// HTTP 200, an error otherwise. This is the coordinator's worker-scrape
/// primitive and doubles as the assertion hook in examples and tests.
pub fn http_get(
    addr: impl ToSocketAddrs,
    path: &str,
    timeout: Duration,
) -> std::io::Result<String> {
    let addr = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidInput, "no address"))?;
    let mut stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    stream.write_all(
        format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n").as_bytes(),
    )?;
    let mut resp = String::new();
    stream.read_to_string(&mut resp)?;
    let (head, rest) = resp
        .split_once("\r\n\r\n")
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "no header end"))?;
    let status = head.lines().next().unwrap_or("");
    if !status.contains(" 200 ") {
        return Err(std::io::Error::other(format!("scrape failed: {status}")));
    }
    Ok(rest.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;

    #[test]
    fn serves_metrics_and_404s_elsewhere() {
        let reg = Arc::new(MetricsRegistry::new());
        reg.counter("ppm_up_total", "ups").add(3);
        let r = reg.clone();
        let server = MetricsServer::start(0, Arc::new(move || r.render())).unwrap();
        let body = http_get(server.addr(), "/metrics", Duration::from_secs(2)).unwrap();
        assert!(body.contains("ppm_up_total 3"));
        let err = http_get(server.addr(), "/nope", Duration::from_secs(2));
        assert!(err.is_err());
    }

    #[test]
    fn stop_is_prompt_and_idempotent() {
        let mut server = MetricsServer::start(0, Arc::new(|| String::from("x 1\n"))).unwrap();
        let addr = server.addr();
        server.stop();
        server.stop();
        assert!(http_get(addr, "/metrics", Duration::from_millis(200)).is_err());
    }
}
