//! The metrics registry: typed counter/gauge/histogram handles over
//! relaxed atomics, plus collector closures for values owned elsewhere,
//! rendered in the Prometheus text exposition format (version 0.0.4).
//!
//! Handles are cheap `Arc`-clones; recording is a single relaxed atomic
//! op, so instrumentation sits on hot paths (steal loops, capsule
//! boundaries) without perturbing the concurrency being measured.
//! Registration is **get-or-create** keyed on `(name, labels)`: recovery
//! paths rebuild scheduler objects against the same machine and must end
//! up sharing series, not duplicating them. Collector closures
//! (`counter_fn` / `gauge_fn`) instead **replace** an existing entry,
//! because a rebuilt object's closure captures the new object.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Monotone event counter. Cloning shares the underlying cell.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A counter not (yet) attached to any registry.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-write-wins instantaneous value (stored as `f64` bits).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// A gauge not (yet) attached to any registry.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Sets the value.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Number of histogram buckets: upper bounds `2^0 .. 2^(N-2)` plus `+Inf`.
pub const HISTOGRAM_BUCKETS: usize = 23;

#[derive(Debug)]
struct HistogramInner {
    /// Non-cumulative per-bucket counts (rendered cumulatively).
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
}

/// Log₂-bucketed histogram of `u64` observations (latencies in µs, run
/// lengths in pages, capsule work in transfers). Fixed bucket layout
/// keeps `observe` allocation-free and merge-friendly.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramInner>);

impl Default for Histogram {
    fn default() -> Self {
        Histogram(Arc::new(HistogramInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }))
    }
}

impl Histogram {
    /// A histogram not (yet) attached to any registry.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Index of the first bucket whose upper bound covers `v`.
    fn bucket_of(v: u64) -> usize {
        if v <= 1 {
            0
        } else {
            let lg = 64 - (v - 1).leading_zeros() as usize;
            lg.min(HISTOGRAM_BUCKETS - 1)
        }
    }

    /// Records one observation.
    #[inline]
    pub fn observe(&self, v: u64) {
        self.0.buckets[Self::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Upper bound of the bucket containing the `q`-quantile observation
    /// (`q` in `[0, 1]`), or `None` while the histogram is empty. Bucket
    /// granularity means the answer is the power-of-two ceiling of the
    /// true quantile — good enough to seed backoff windows and summarize
    /// tail latency.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let count = self.count();
        if count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        let mut acc = 0;
        for i in 0..HISTOGRAM_BUCKETS {
            acc += self.0.buckets[i].load(Ordering::Relaxed);
            if acc >= rank {
                return Some(if i == HISTOGRAM_BUCKETS - 1 {
                    u64::MAX
                } else {
                    1u64 << i
                });
            }
        }
        None
    }

    /// `(upper_bound, cumulative_count)` pairs; the last entry is `+Inf`
    /// (represented as `u64::MAX`).
    pub fn cumulative(&self) -> Vec<(u64, u64)> {
        let mut acc = 0;
        (0..HISTOGRAM_BUCKETS)
            .map(|i| {
                acc += self.0.buckets[i].load(Ordering::Relaxed);
                let le = if i == HISTOGRAM_BUCKETS - 1 {
                    u64::MAX
                } else {
                    1u64 << i
                };
                (le, acc)
            })
            .collect()
    }
}

/// Collector closure producing a counter value on scrape.
pub type CounterSource = Arc<dyn Fn() -> u64 + Send + Sync>;
/// Collector closure producing a gauge value on scrape.
pub type GaugeSource = Arc<dyn Fn() -> f64 + Send + Sync>;

enum MetricValue {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
    CounterFn(CounterSource),
    GaugeFn(GaugeSource),
}

impl MetricValue {
    fn type_name(&self) -> &'static str {
        match self {
            MetricValue::Counter(_) | MetricValue::CounterFn(_) => "counter",
            MetricValue::Gauge(_) | MetricValue::GaugeFn(_) => "gauge",
            MetricValue::Histogram(_) => "histogram",
        }
    }
}

struct MetricEntry {
    name: String,
    help: String,
    labels: Vec<(String, String)>,
    value: MetricValue,
}

/// The process-wide registry one [`crate::Obs`] handle owns: every
/// subsystem registers its counters here and the exporter renders them
/// all on each scrape.
#[derive(Default)]
pub struct MetricsRegistry {
    entries: Mutex<Vec<MetricEntry>>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = self.entries.lock().map(|e| e.len()).unwrap_or(0);
        write!(f, "MetricsRegistry({n} entries)")
    }
}

fn owned_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    fn register(&self, name: &str, help: &str, labels: &[(&str, &str)], value: MetricValue) {
        let labels = owned_labels(labels);
        let mut entries = self.entries.lock().unwrap();
        if let Some(e) = entries
            .iter_mut()
            .find(|e| e.name == name && e.labels == labels)
        {
            e.help = help.to_string();
            e.value = value;
        } else {
            entries.push(MetricEntry {
                name: name.to_string(),
                help: help.to_string(),
                labels,
                value,
            });
        }
    }

    fn get_or_create<T: Clone>(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        existing: impl Fn(&MetricValue) -> Option<T>,
        fresh: impl FnOnce() -> (T, MetricValue),
    ) -> T {
        let labels_owned = owned_labels(labels);
        let entries = self.entries.lock().unwrap();
        if let Some(e) = entries
            .iter()
            .find(|e| e.name == name && e.labels == labels_owned)
        {
            if let Some(t) = existing(&e.value) {
                return t;
            }
        }
        drop(entries);
        let (t, value) = fresh();
        self.register(name, help, labels, value);
        t
    }

    /// Gets or creates a counter series.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_with(name, help, &[])
    }

    /// Gets or creates a labeled counter series.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        self.get_or_create(
            name,
            help,
            labels,
            |v| match v {
                MetricValue::Counter(c) => Some(c.clone()),
                _ => None,
            },
            || {
                let c = Counter::new();
                (c.clone(), MetricValue::Counter(c))
            },
        )
    }

    /// Gets or creates a gauge series.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_with(name, help, &[])
    }

    /// Gets or creates a labeled gauge series.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        self.get_or_create(
            name,
            help,
            labels,
            |v| match v {
                MetricValue::Gauge(g) => Some(g.clone()),
                _ => None,
            },
            || {
                let g = Gauge::new();
                (g.clone(), MetricValue::Gauge(g))
            },
        )
    }

    /// Gets or creates a histogram series.
    pub fn histogram(&self, name: &str, help: &str) -> Histogram {
        self.histogram_with(name, help, &[])
    }

    /// Gets or creates a labeled histogram series.
    pub fn histogram_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Histogram {
        self.get_or_create(
            name,
            help,
            labels,
            |v| match v {
                MetricValue::Histogram(h) => Some(h.clone()),
                _ => None,
            },
            || {
                let h = Histogram::new();
                (h.clone(), MetricValue::Histogram(h))
            },
        )
    }

    /// Registers (replacing any previous entry for the series) an
    /// already-constructed histogram handle — for distributions owned by
    /// other subsystems.
    pub fn register_histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        h: Histogram,
    ) {
        self.register(name, help, labels, MetricValue::Histogram(h));
    }

    /// Registers (replacing any previous entry for the series) a counter
    /// whose value is read from `f` at scrape time — for monotone counts
    /// owned by other subsystems (e.g. `MemStats` atomics).
    pub fn counter_fn(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        f: impl Fn() -> u64 + Send + Sync + 'static,
    ) {
        self.register(name, help, labels, MetricValue::CounterFn(Arc::new(f)));
    }

    /// Registers (replacing any previous entry for the series) a gauge
    /// whose value is read from `f` at scrape time.
    pub fn gauge_fn(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        f: impl Fn() -> f64 + Send + Sync + 'static,
    ) {
        self.register(name, help, labels, MetricValue::GaugeFn(Arc::new(f)));
    }

    /// Renders every registered series in the Prometheus text exposition
    /// format: families grouped, `# HELP` / `# TYPE` once per family,
    /// histograms expanded into `_bucket{le=...}` / `_sum` / `_count`.
    pub fn render(&self) -> String {
        let entries = self.entries.lock().unwrap();
        let mut order: Vec<&str> = Vec::new();
        for e in entries.iter() {
            if !order.contains(&e.name.as_str()) {
                order.push(&e.name);
            }
        }
        let mut out = String::new();
        for name in order {
            let family: Vec<&MetricEntry> = entries.iter().filter(|e| e.name == name).collect();
            let first = family[0];
            out.push_str(&format!("# HELP {name} {}\n", escape_help(&first.help)));
            out.push_str(&format!("# TYPE {name} {}\n", first.value.type_name()));
            for e in &family {
                render_entry(&mut out, e);
            }
        }
        out
    }
}

fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

fn escape_label(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Formats a label set (possibly with an extra pair appended) as
/// `{k="v",...}`, or the empty string when there are no labels.
fn label_block(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut pairs: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some((k, v)) = extra {
        pairs.push(format!("{k}=\"{}\"", escape_label(v)));
    }
    if pairs.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", pairs.join(","))
    }
}

/// Formats a gauge value; counters are integers already.
fn fmt_value(v: f64) -> String {
    if !v.is_finite() {
        // The exposition format has no NaN/Inf series worth emitting;
        // degrade to 0 rather than poisoning the parse.
        "0".to_string()
    } else if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn render_entry(out: &mut String, e: &MetricEntry) {
    let name = &e.name;
    match &e.value {
        MetricValue::Counter(c) => {
            out.push_str(&format!(
                "{name}{} {}\n",
                label_block(&e.labels, None),
                c.get()
            ));
        }
        MetricValue::CounterFn(f) => {
            out.push_str(&format!("{name}{} {}\n", label_block(&e.labels, None), f()));
        }
        MetricValue::Gauge(g) => out.push_str(&format!(
            "{name}{} {}\n",
            label_block(&e.labels, None),
            fmt_value(g.get())
        )),
        MetricValue::GaugeFn(f) => out.push_str(&format!(
            "{name}{} {}\n",
            label_block(&e.labels, None),
            fmt_value(f())
        )),
        MetricValue::Histogram(h) => {
            for (le, cum) in h.cumulative() {
                let le_str = if le == u64::MAX {
                    "+Inf".to_string()
                } else {
                    le.to_string()
                };
                out.push_str(&format!(
                    "{name}_bucket{} {cum}\n",
                    label_block(&e.labels, Some(("le", &le_str)))
                ));
            }
            out.push_str(&format!(
                "{name}_sum{} {}\n",
                label_block(&e.labels, None),
                h.sum()
            ));
            out.push_str(&format!(
                "{name}_count{} {}\n",
                label_block(&e.labels, None),
                h.count()
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("ppm_events_total", "events");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = reg.gauge("ppm_depth", "depth");
        g.set(2.5);
        let text = reg.render();
        assert!(text.contains("# TYPE ppm_events_total counter"));
        assert!(text.contains("ppm_events_total 5"));
        assert!(text.contains("ppm_depth 2.5"));
    }

    #[test]
    fn registration_is_get_or_create() {
        let reg = MetricsRegistry::new();
        let a = reg.counter_with("ppm_x_total", "x", &[("shard", "0")]);
        a.add(7);
        // A "rebuilt" subsystem re-registering the same series must share
        // the cell, not fork a duplicate.
        let b = reg.counter_with("ppm_x_total", "x", &[("shard", "0")]);
        assert_eq!(b.get(), 7);
        let other = reg.counter_with("ppm_x_total", "x", &[("shard", "1")]);
        assert_eq!(other.get(), 0);
        let text = reg.render();
        assert_eq!(text.matches("ppm_x_total{").count(), 2);
        assert_eq!(text.matches("# TYPE ppm_x_total").count(), 1);
    }

    #[test]
    fn collector_fns_replace() {
        let reg = MetricsRegistry::new();
        reg.counter_fn("ppm_src_total", "src", &[], || 1);
        reg.counter_fn("ppm_src_total", "src", &[], || 2);
        let text = reg.render();
        assert!(text.contains("ppm_src_total 2"));
        let series = text.lines().filter(|l| !l.starts_with('#')).count();
        assert_eq!(series, 1);
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_log2() {
        let h = Histogram::new();
        for v in [0, 1, 2, 3, 5, 1000, u64::MAX] {
            h.observe(v);
        }
        let cum = h.cumulative();
        assert_eq!(cum[0], (1, 2)); // 0 and 1
        assert_eq!(cum[1], (2, 3)); // + 2
        assert_eq!(cum[2], (4, 4)); // + 3
        assert_eq!(cum[3], (8, 5)); // + 5
        let (_, last) = cum[HISTOGRAM_BUCKETS - 1];
        assert_eq!(last, 7, "+Inf bucket covers everything");
        assert_eq!(h.count(), 7);
    }

    #[test]
    fn histogram_quantiles_are_bucket_ceilings() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.99), None, "empty histogram has no quantile");
        for v in [1, 1, 2, 4, 8, 100] {
            h.observe(v);
        }
        assert_eq!(h.quantile(0.0), Some(1));
        assert_eq!(h.quantile(0.5), Some(2));
        assert_eq!(h.quantile(0.99), Some(128), "power-of-two ceiling of 100");
        assert_eq!(h.quantile(1.0), Some(128));
        h.observe(u64::MAX);
        assert_eq!(h.quantile(1.0), Some(u64::MAX), "+Inf bucket");
    }

    #[test]
    fn histogram_renders_prometheus_shape() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram_with("ppm_lat_us", "latency", &[("proc", "3")]);
        h.observe(10);
        let text = reg.render();
        assert!(text.contains("# TYPE ppm_lat_us histogram"));
        assert!(text.contains("ppm_lat_us_bucket{proc=\"3\",le=\"16\"} 1"));
        assert!(text.contains("ppm_lat_us_bucket{proc=\"3\",le=\"+Inf\"} 1"));
        assert!(text.contains("ppm_lat_us_sum{proc=\"3\"} 10"));
        assert!(text.contains("ppm_lat_us_count{proc=\"3\"} 1"));
    }

    #[test]
    fn label_values_are_escaped() {
        let reg = MetricsRegistry::new();
        reg.gauge_with("ppm_g", "g", &[("path", "a\"b\\c")])
            .set(1.0);
        assert!(reg.render().contains("path=\"a\\\"b\\\\c\""));
    }
}
