//! Causal span emission: one JSONL record stream per process.
//!
//! A *span* is one execution of a traced capsule — from the moment the
//! engine begins running its body (before any soft-fault retries; the
//! span id is restart-stable) to the commit of its staged writes. Each
//! span carries a **parent edge**: the span that causally enabled it.
//! Within a process the parent is the previous traced capsule in the
//! same continuation chain (a `jump_to`, a fork arm, a join release);
//! across processes — a steal, an adoption, a recovery resume — the
//! parent travels *in the persistent frame words* (see
//! `ppm_pm::frame`), so the consumer that eventually runs the frame
//! links back to the producer that wrote it, whatever process or epoch
//! it lives in.
//!
//! Unlike the ring-buffered [`crate::Tracer`], the span sink streams:
//! every record is appended and flushed line-by-line, so a SIGKILL'd
//! worker leaves behind every span it started — exactly the runs a
//! fault-wasted-work analysis needs to see. Span files sit next to the
//! event trace as `<PPM_TRACE_FILE>.spans.jsonl` (coordinator /
//! single-process) and `<PPM_TRACE_FILE>.shard<k>.spans.jsonl` (cluster
//! workers); `ppm-trace` ingests the whole set.
//!
//! Record shapes (flat JSON, compact keys, one object per line):
//!
//! ```json
//! {"k":"m","origin":0,"epoch":1,"pid":1234}
//! {"k":"s","t":171234,"id":81064793292668929,"p":0,"f":4096,"c":"alg/prefix/up","pr":2}
//! {"k":"e","t":171250,"id":81064793292668929,"w":37,"d":16}
//! ```
//!
//! `k` is the record kind (`m`eta / `s`tart / `e`nd), `t` a wall-clock
//! microsecond timestamp (for cross-process ordering), `id`/`p` the
//! span and parent span ids, `f` the persistent frame address the span
//! ran from (0 when it ran from a volatile continuation), `c` the
//! capsule name, `pr` the processor, `w` the capsule's deterministic
//! work in external-transfer units, and `d` the wall-clock duration in
//! microseconds.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Span id layout: `(epoch & 0x7F) << 56 | (origin & 0xFF) << 48 | seq`.
///
/// The epoch bits keep ids from a crashed run's persisted frame words
/// from colliding with the recovery run's fresh ids; the origin bits
/// (0 = coordinator / single process, shard+1 for cluster workers) keep
/// concurrent processes from colliding without any cross-process
/// coordination.
const EPOCH_SHIFT: u32 = 56;
const ORIGIN_SHIFT: u32 = 48;

/// A streaming, crash-durable span record writer shared by every
/// `ppm_pm`-level processor context in one OS process.
///
/// Thread-safe: the sequence counter is atomic and the file handle is
/// behind a mutex; each record is a single `write_all` of one line, so
/// concurrent emitters interleave whole lines.
pub struct SpanSink {
    file: Mutex<File>,
    seq: AtomicU64,
    id_base: u64,
}

impl std::fmt::Debug for SpanSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanSink")
            .field("id_base", &format_args!("{:#x}", self.id_base))
            .field("seq", &self.seq.load(Ordering::Relaxed))
            .finish()
    }
}

impl SpanSink {
    /// Opens (or appends to) the span file at `path` and writes a meta
    /// record identifying this process. `origin` is 0 for the
    /// coordinator / a single-process run and `shard + 1` for cluster
    /// workers; `epoch` is the machine run-epoch. With `append` set the
    /// existing file is extended (a recovery run adding to the crashed
    /// run's spans); otherwise it is truncated.
    pub fn create(path: &Path, origin: u32, epoch: u64, append: bool) -> std::io::Result<SpanSink> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut opts = OpenOptions::new();
        opts.create(true).write(true);
        if append {
            opts.append(true);
        } else {
            opts.truncate(true);
        }
        let mut file = opts.open(path)?;
        let line = format!(
            "{{\"k\":\"m\",\"origin\":{},\"epoch\":{},\"pid\":{}}}\n",
            origin,
            epoch,
            std::process::id()
        );
        file.write_all(line.as_bytes())?;
        Ok(SpanSink {
            file: Mutex::new(file),
            seq: AtomicU64::new(1),
            id_base: ((epoch & 0x7F) << EPOCH_SHIFT) | (u64::from(origin & 0xFF) << ORIGIN_SHIFT),
        })
    }

    /// Mints a fresh process-unique span id (nonzero; 0 means "no
    /// span" everywhere ids travel — frame words, parent fields).
    pub fn mint(&self) -> u64 {
        self.id_base | self.seq.fetch_add(1, Ordering::Relaxed)
    }

    /// Wall-clock microseconds since the UNIX epoch — comparable
    /// across the processes of one run, which is all the analyzer
    /// needs to order re-executions of the same frame.
    pub fn now_us() -> u64 {
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_micros() as u64)
            .unwrap_or(0)
    }

    /// Emits a span-start record. `parent` is 0 for a root span,
    /// `frame` the persistent frame address the capsule was installed
    /// from (0 when volatile), `name` the capsule name, `proc` the
    /// executing processor.
    pub fn start(&self, id: u64, parent: u64, frame: u64, name: &str, proc: usize) {
        let line = format!(
            "{{\"k\":\"s\",\"t\":{},\"id\":{},\"p\":{},\"f\":{},\"c\":\"{}\",\"pr\":{}}}\n",
            Self::now_us(),
            id,
            parent,
            frame,
            name,
            proc
        );
        self.write_line(&line);
    }

    /// Emits a span-end record: `work` is the capsule's committed work
    /// in deterministic external-transfer units, `dur_us` the measured
    /// wall-clock duration.
    pub fn end(&self, id: u64, work: u64, dur_us: u64) {
        let line = format!(
            "{{\"k\":\"e\",\"t\":{},\"id\":{},\"w\":{},\"d\":{}}}\n",
            Self::now_us(),
            id,
            work,
            dur_us
        );
        self.write_line(&line);
    }

    fn write_line(&self, line: &str) {
        if let Ok(mut f) = self.file.lock() {
            // Best-effort: a full disk must not take the computation
            // down with it. Each line is a single write_all so records
            // from concurrent processors never interleave mid-line.
            let _ = f.write_all(line.as_bytes());
        }
    }

    /// The span-file path derived from an event-trace path: the
    /// coordinator / single-process convention `<trace>.spans.jsonl`.
    pub fn path_for(trace_file: &Path) -> std::path::PathBuf {
        let mut os = trace_file.as_os_str().to_os_string();
        os.push(".spans.jsonl");
        std::path::PathBuf::from(os)
    }

    /// The span-file path for cluster worker `shard`:
    /// `<trace>.shard<k>.spans.jsonl`.
    pub fn shard_path_for(trace_file: &Path, shard: usize) -> std::path::PathBuf {
        let mut os = trace_file.as_os_str().to_os_string();
        os.push(format!(".shard{shard}.spans.jsonl"));
        std::path::PathBuf::from(os)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("ppm-span-{}-{name}", std::process::id()))
    }

    #[test]
    fn ids_carry_epoch_and_origin_bits() {
        let path = tmp("ids.jsonl");
        let sink = SpanSink::create(&path, 3, 2, false).unwrap();
        let id = sink.mint();
        assert_eq!(id >> EPOCH_SHIFT, 2);
        assert_eq!((id >> ORIGIN_SHIFT) & 0xFF, 3);
        assert_eq!(id & 0xFFFF_FFFF_FFFF, 1);
        assert!(sink.mint() > id);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn records_stream_line_by_line() {
        let path = tmp("stream.jsonl");
        let sink = SpanSink::create(&path, 0, 1, false).unwrap();
        let id = sink.mint();
        sink.start(id, 0, 4096, "alg/test", 2);
        sink.end(id, 37, 16);
        // No explicit flush/drop ordering needed: every record was
        // write_all'd straight to the fd, as a SIGKILL would see it.
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"k\":\"m\""));
        assert!(lines[1].contains("\"k\":\"s\"") && lines[1].contains("\"c\":\"alg/test\""));
        assert!(lines[2].contains("\"k\":\"e\"") && lines[2].contains("\"w\":37"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn append_mode_preserves_prior_epochs() {
        let path = tmp("append.jsonl");
        let a = SpanSink::create(&path, 0, 1, false).unwrap();
        let id = a.mint();
        a.start(id, 0, 0, "x", 0);
        drop(a);
        let b = SpanSink::create(&path, 0, 2, true).unwrap();
        let id2 = b.mint();
        b.start(id2, 0, 0, "y", 0);
        drop(b);
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(
            text.lines().filter(|l| l.contains("\"k\":\"m\"")).count(),
            2
        );
        assert!(text.contains("\"c\":\"x\"") && text.contains("\"c\":\"y\""));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn derived_paths_follow_shard_convention() {
        let base = std::path::Path::new("trace_out/run.jsonl");
        assert_eq!(
            SpanSink::path_for(base),
            std::path::Path::new("trace_out/run.jsonl.spans.jsonl")
        );
        assert_eq!(
            SpanSink::shard_path_for(base, 3),
            std::path::Path::new("trace_out/run.jsonl.shard3.spans.jsonl")
        );
    }
}
