//! Structured event tracing: a fixed-capacity ring of timestamped
//! events (run/epoch/capsule/steal/adoption/checkpoint/recovery) with a
//! sampling knob bounding the overhead of the high-rate kinds, flushed
//! to a JSONL sidecar file and summarized into the session report.
//!
//! The disabled fast path is one relaxed atomic load; the enabled path
//! for sampled kinds is an atomic increment plus a modulo check before
//! anything allocates, so tracing can stay compiled into the steal loop.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Default ring capacity (events retained, oldest overwritten).
pub const DEFAULT_TRACE_CAPACITY: usize = 8192;
/// Default sampling divisor for high-rate kinds: record 1 in N.
pub const DEFAULT_TRACE_SAMPLE: u64 = 64;

/// What happened. High-rate kinds ([`TraceKind::Steal`],
/// [`TraceKind::Capsule`]) are sampled; the rest always record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A scheduler session started driving seats.
    RunStart,
    /// A scheduler session finished (completed or stalled).
    RunEnd,
    /// A machine epoch began (fresh run or recovery attempt).
    Epoch,
    /// A capsule phase executed (sampled).
    Capsule,
    /// A steal attempt resolved (sampled).
    Steal,
    /// A frontier entry of a *remote* (dead) shard was adopted.
    Adoption,
    /// An adoption was refused (unresumable remote entry).
    BlockedAdoption,
    /// A sibling shard's lease was declared dead.
    ShardDead,
    /// A checkpoint quiesce ran.
    Checkpoint,
    /// A recovery path executed (resume, checkpoint-resume, replay).
    Recovery,
    /// A job was published into the service injector ring.
    JobSubmitted,
    /// A worker's claim CAM won a published injector slot.
    JobClaimed,
    /// A job's done frame committed (exactly-once completion).
    JobDone,
}

/// All kinds, in stable order (indexes the per-kind counters).
const KINDS: [TraceKind; 13] = [
    TraceKind::RunStart,
    TraceKind::RunEnd,
    TraceKind::Epoch,
    TraceKind::Capsule,
    TraceKind::Steal,
    TraceKind::Adoption,
    TraceKind::BlockedAdoption,
    TraceKind::ShardDead,
    TraceKind::Checkpoint,
    TraceKind::Recovery,
    TraceKind::JobSubmitted,
    TraceKind::JobClaimed,
    TraceKind::JobDone,
];

impl TraceKind {
    /// Stable lowercase name used in JSONL and summaries.
    pub fn name(self) -> &'static str {
        match self {
            TraceKind::RunStart => "run_start",
            TraceKind::RunEnd => "run_end",
            TraceKind::Epoch => "epoch",
            TraceKind::Capsule => "capsule",
            TraceKind::Steal => "steal",
            TraceKind::Adoption => "adoption",
            TraceKind::BlockedAdoption => "blocked_adoption",
            TraceKind::ShardDead => "shard_dead",
            TraceKind::Checkpoint => "checkpoint",
            TraceKind::Recovery => "recovery",
            TraceKind::JobSubmitted => "job_submitted",
            TraceKind::JobClaimed => "job_claimed",
            TraceKind::JobDone => "job_done",
        }
    }

    fn idx(self) -> usize {
        KINDS.iter().position(|k| *k == self).unwrap()
    }

    fn sampled(self) -> bool {
        matches!(self, TraceKind::Capsule | TraceKind::Steal)
    }
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Microseconds since the tracer was created.
    pub t_us: u64,
    /// Event kind.
    pub kind: TraceKind,
    /// Shard index, when the event is shard-scoped.
    pub shard: Option<u32>,
    /// Model-processor index, when the event is proc-scoped.
    pub proc_id: Option<u32>,
    /// Free-form detail (kept short; appears verbatim in the JSONL).
    pub detail: String,
}

impl TraceEvent {
    /// Renders the event as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut s = format!("{{\"t_us\":{},\"kind\":\"{}\"", self.t_us, self.kind.name());
        if let Some(sh) = self.shard {
            s.push_str(&format!(",\"shard\":{sh}"));
        }
        if let Some(p) = self.proc_id {
            s.push_str(&format!(",\"proc\":{p}"));
        }
        if !self.detail.is_empty() {
            s.push_str(&format!(",\"detail\":\"{}\"", escape_json(&self.detail)));
        }
        s.push('}');
        s
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

struct Ring {
    buf: Vec<Option<TraceEvent>>,
    next: usize,
    recorded: u64,
}

/// The ring-buffered event tracer one [`crate::Obs`] handle owns.
#[derive(Debug)]
pub struct Tracer {
    enabled: AtomicBool,
    sample: AtomicU64,
    start: Instant,
    seen: [AtomicU64; KINDS.len()],
    dropped: AtomicU64,
    inner: Mutex<Ring>,
}

impl std::fmt::Debug for Ring {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Ring(cap {}, recorded {})",
            self.buf.len(),
            self.recorded
        )
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new(DEFAULT_TRACE_CAPACITY)
    }
}

impl Tracer {
    /// A disabled tracer retaining up to `capacity` events.
    pub fn new(capacity: usize) -> Self {
        Tracer {
            enabled: AtomicBool::new(false),
            sample: AtomicU64::new(DEFAULT_TRACE_SAMPLE),
            start: Instant::now(),
            seen: std::array::from_fn(|_| AtomicU64::new(0)),
            dropped: AtomicU64::new(0),
            inner: Mutex::new(Ring {
                buf: vec![None; capacity.max(16)],
                next: 0,
                recorded: 0,
            }),
        }
    }

    /// Turns recording on.
    pub fn enable(&self) {
        self.enabled.store(true, Ordering::Release);
    }

    /// Turns recording off (events already buffered are kept).
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Release);
    }

    /// Whether recording is on.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Sets the sampling divisor for high-rate kinds: record 1 in `n`
    /// (`n = 1` records everything; 0 is clamped to 1).
    pub fn set_sample(&self, n: u64) {
        self.sample.store(n.max(1), Ordering::Relaxed);
    }

    /// Microseconds since tracer creation (the event clock).
    pub fn now_us(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }

    /// Records an event, building `detail` only if it will be kept.
    #[inline]
    pub fn record_with(
        &self,
        kind: TraceKind,
        shard: Option<u32>,
        proc_id: Option<u32>,
        detail: impl FnOnce() -> String,
    ) {
        if !self.is_enabled() {
            return;
        }
        let seen = self.seen[kind.idx()].fetch_add(1, Ordering::Relaxed);
        if kind.sampled() && !seen.is_multiple_of(self.sample.load(Ordering::Relaxed)) {
            return;
        }
        let ev = TraceEvent {
            t_us: self.now_us(),
            kind,
            shard,
            proc_id,
            detail: detail(),
        };
        let mut ring = self.inner.lock().unwrap();
        let slot = ring.next;
        if ring.buf[slot].is_some() {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.buf[slot] = Some(ev);
        ring.next = (slot + 1) % ring.buf.len();
        ring.recorded += 1;
    }

    /// Records an event with a ready-made detail string.
    pub fn record(&self, kind: TraceKind, shard: Option<u32>, proc_id: Option<u32>, detail: &str) {
        self.record_with(kind, shard, proc_id, || detail.to_string());
    }

    /// The buffered events in chronological order.
    pub fn events(&self) -> Vec<TraceEvent> {
        let ring = self.inner.lock().unwrap();
        let n = ring.buf.len();
        let mut out = Vec::new();
        for i in 0..n {
            if let Some(ev) = &ring.buf[(ring.next + i) % n] {
                out.push(ev.clone());
            }
        }
        out
    }

    /// Renders the buffered events as JSON Lines.
    pub fn to_jsonl(&self) -> String {
        let mut s = String::new();
        for ev in self.events() {
            s.push_str(&ev.to_json());
            s.push('\n');
        }
        s
    }

    /// Writes the buffered events to `path` as JSONL (creating parent
    /// directories as needed); returns how many events were written.
    ///
    /// The file ends with one summary line
    /// (`{"k":"ts","recorded":N,"dropped":N}`) so downstream consumers
    /// — `ppm-trace` in particular — can tell a lossy ring flush from a
    /// complete one instead of silently analyzing a truncated event
    /// stream.
    pub fn flush_jsonl(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<usize> {
        let events = self.events();
        let mut s = String::new();
        for ev in &events {
            s.push_str(&ev.to_json());
            s.push('\n');
        }
        s.push_str(&format!(
            "{{\"k\":\"ts\",\"recorded\":{},\"dropped\":{}}}\n",
            events.len(),
            self.dropped()
        ));
        if let Some(parent) = path.as_ref().parent().filter(|p| !p.as_os_str().is_empty()) {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, s)?;
        Ok(events.len())
    }

    /// Events lost to ring-capacity overwrites so far (also exported as
    /// the `ppm_trace_dropped_total` counter on every registry).
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Point-in-time summary of tracing activity.
    pub fn summary(&self) -> TraceSummary {
        let ring = self.inner.lock().unwrap();
        TraceSummary {
            enabled: self.is_enabled(),
            recorded: ring.recorded,
            overwritten: self.dropped.load(Ordering::Relaxed),
            seen: KINDS
                .iter()
                .map(|k| (k.name(), self.seen[k.idx()].load(Ordering::Relaxed)))
                .filter(|(_, n)| *n > 0)
                .map(|(k, n)| (k.to_string(), n))
                .collect(),
        }
    }
}

/// The per-shard event-trace path convention for cluster workers:
/// `<trace>.shard<k>.jsonl`. Every worker flushing to the *same*
/// `PPM_TRACE_FILE` base gets its own file (no cross-process clobbering);
/// the coordinator writes `<trace>` itself plus a `<trace>.manifest`
/// listing the whole family, which `ppm-trace` expands.
pub fn shard_trace_path(trace_file: &std::path::Path, shard: usize) -> std::path::PathBuf {
    let mut os = trace_file.as_os_str().to_os_string();
    os.push(format!(".shard{shard}.jsonl"));
    std::path::PathBuf::from(os)
}

/// Compact trace accounting embedded in session reports.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceSummary {
    /// Whether the tracer was enabled when summarized.
    pub enabled: bool,
    /// Events written into the ring (post-sampling).
    pub recorded: u64,
    /// Ring overwrites (events lost to capacity).
    pub overwritten: u64,
    /// Events *seen* per kind (pre-sampling), nonzero kinds only.
    pub seen: Vec<(String, u64)>,
}

impl TraceSummary {
    /// Events seen for `kind` (pre-sampling), 0 when never seen.
    pub fn seen_of(&self, kind: TraceKind) -> u64 {
        self.seen
            .iter()
            .find(|(k, _)| k == kind.name())
            .map(|(_, n)| *n)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::new(64);
        t.record(TraceKind::Adoption, Some(1), None, "x");
        assert!(t.events().is_empty());
        assert_eq!(t.summary().recorded, 0);
    }

    #[test]
    fn events_round_trip_to_jsonl() {
        let t = Tracer::new(64);
        t.enable();
        t.record(TraceKind::ShardDead, Some(3), None, "lease expired");
        t.record(TraceKind::Adoption, Some(0), Some(1), "job from shard 3");
        let jsonl = t.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"kind\":\"shard_dead\"") && lines[0].contains("\"shard\":3"));
        assert!(lines[1].contains("\"proc\":1"));
        assert_eq!(t.summary().seen_of(TraceKind::Adoption), 1);
    }

    #[test]
    fn sampling_bounds_high_rate_kinds() {
        let t = Tracer::new(4096);
        t.enable();
        t.set_sample(10);
        for _ in 0..100 {
            t.record(TraceKind::Steal, None, Some(0), "");
        }
        assert_eq!(t.events().len(), 10);
        assert_eq!(t.summary().seen_of(TraceKind::Steal), 100);
        // Low-rate kinds are never sampled away.
        for _ in 0..5 {
            t.record(TraceKind::Checkpoint, None, None, "");
        }
        assert_eq!(t.summary().seen_of(TraceKind::Checkpoint), 5);
        assert_eq!(t.events().len(), 15);
    }

    #[test]
    fn ring_overwrites_oldest() {
        let t = Tracer::new(16);
        t.enable();
        for i in 0..40 {
            t.record(TraceKind::Epoch, None, None, &format!("e{i}"));
        }
        let evs = t.events();
        assert_eq!(evs.len(), 16);
        assert_eq!(evs.last().unwrap().detail, "e39");
        assert_eq!(evs.first().unwrap().detail, "e24");
        let sum = t.summary();
        assert_eq!(sum.recorded, 40);
        assert_eq!(sum.overwritten, 24);
        assert_eq!(t.dropped(), 24);
    }

    #[test]
    fn flush_appends_drop_summary_line() {
        let t = Tracer::new(16);
        t.enable();
        for i in 0..20 {
            t.record(TraceKind::Epoch, None, None, &format!("e{i}"));
        }
        let path = std::env::temp_dir().join(format!("ppm-trace-flush-{}", std::process::id()));
        t.flush_jsonl(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(
            text.lines().last().unwrap(),
            "{\"k\":\"ts\",\"recorded\":16,\"dropped\":4}"
        );
        std::fs::remove_file(&path).unwrap();
    }
}
