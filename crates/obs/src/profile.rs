//! Span-trace analysis: DAG reconstruction and critical-path profiling.
//!
//! This module is the library behind the `ppm-trace` binary. It ingests
//! the JSONL span files written by [`crate::SpanSink`] (one per process:
//! coordinator plus any `.shard<k>` workers), rebuilds the capsule DAG
//! from the parent edges, and computes the paper's cost quantities on
//! the *observed* run:
//!
//! - **W** — observed work, the sum of committed capsule work in
//!   deterministic external-transfer units;
//! - **D** — observed depth/span, the longest parent-weighted path;
//! - **parallelism** `W/D` — how much the DAG could have used `P_A`
//!   live processors;
//! - **fault-wasted work** — work spent on executions that did not end
//!   up being the committed, exactly-once run of their frame (capsule
//!   re-executions after a crash or adoption), as a ratio of all work.
//!
//! Plus attribution: per-capsule and per-phase work breakdowns,
//! per-shard splits, the critical path itself, and a folded-stacks
//! rendering consumable by standard flamegraph tooling.
//!
//! The files are a flat, restricted JSON subset produced by our own
//! writer, so parsing is a hand-rolled field scanner — no external
//! dependencies (the build is offline).

use std::collections::HashMap;
use std::path::{Path, PathBuf};

/// One recorded execution of a traced capsule (one `run_capsule`
/// invocation; soft-fault restarts stay inside a single execution).
#[derive(Debug, Clone)]
pub struct SpanExec {
    /// Process-unique span id (epoch and origin bits + sequence).
    pub id: u64,
    /// Parent span id (0 for a root).
    pub parent: u64,
    /// Persistent frame address the capsule ran from (0 = volatile).
    pub frame: u64,
    /// Capsule name (the DSL `alg/phase` convention).
    pub name: String,
    /// Executing processor within its process.
    pub proc: usize,
    /// Emitting process: 0 = coordinator / single process, shard+1 for
    /// cluster workers.
    pub origin: u32,
    /// Wall-clock start, microseconds since the UNIX epoch.
    pub start_us: u64,
    /// Committed work in external-transfer units (0 if interrupted).
    pub work: u64,
    /// Wall-clock duration in microseconds (0 if interrupted).
    pub dur_us: u64,
    /// Whether an end record was seen. A start without an end is an
    /// *interrupted* execution — the processor died mid-capsule.
    pub completed: bool,
}

/// A parsed set of span files, ready for analysis.
#[derive(Debug, Default)]
pub struct TraceSet {
    /// Every execution seen across all ingested files.
    pub spans: Vec<SpanExec>,
    /// Number of files ingested.
    pub files: usize,
    /// Ring-buffer drops reported by event-trace summary lines in the
    /// ingested files (the span stream itself never drops, but the
    /// sampled event ring does; a nonzero count marks the *event* view
    /// of the same run as lossy).
    pub dropped_events: u64,
}

impl TraceSet {
    /// Ingests one file of span records, skipping lines that are not
    /// span records (event-trace files can be passed too; their lines
    /// are ignored except for trailing drop summaries).
    pub fn ingest_file(&mut self, path: &Path) -> std::io::Result<()> {
        let text = std::fs::read_to_string(path)?;
        self.ingest_str(&text);
        self.files += 1;
        Ok(())
    }

    /// Ingests span records from raw JSONL text (one object per line).
    pub fn ingest_str(&mut self, text: &str) {
        let mut origin = 0u32;
        // Open executions in this file, by id. End records always land
        // in the same file as their start (same process, same sink).
        let mut open: HashMap<u64, usize> = HashMap::new();
        for line in text.lines() {
            match field_str(line, "k") {
                Some("m") => {
                    origin = field_u64(line, "origin").unwrap_or(0) as u32;
                }
                Some("s") => {
                    let (Some(id), Some(name)) = (field_u64(line, "id"), field_str(line, "c"))
                    else {
                        continue;
                    };
                    open.insert(id, self.spans.len());
                    self.spans.push(SpanExec {
                        id,
                        parent: field_u64(line, "p").unwrap_or(0),
                        frame: field_u64(line, "f").unwrap_or(0),
                        name: name.to_string(),
                        proc: field_u64(line, "pr").unwrap_or(0) as usize,
                        origin,
                        start_us: field_u64(line, "t").unwrap_or(0),
                        work: 0,
                        dur_us: 0,
                        completed: false,
                    });
                }
                Some("e") => {
                    let Some(id) = field_u64(line, "id") else {
                        continue;
                    };
                    if let Some(&at) = open.get(&id) {
                        let s = &mut self.spans[at];
                        s.work = field_u64(line, "w").unwrap_or(0);
                        s.dur_us = field_u64(line, "d").unwrap_or(0);
                        s.completed = true;
                    }
                }
                Some("ts") => {
                    self.dropped_events += field_u64(line, "dropped").unwrap_or(0);
                }
                _ => {}
            }
        }
    }

    /// Runs the full analysis over the ingested spans.
    pub fn analyze(&self) -> Analysis {
        Analysis::of(self)
    }
}

/// Expands a trace manifest (written by the sharded coordinator; one
/// file path per line, relative to the manifest's directory) into the
/// file set it names. Missing listed files are skipped — a killed
/// worker may never have opened its span file.
pub fn expand_manifest(manifest: &Path) -> std::io::Result<Vec<PathBuf>> {
    let base = manifest.parent().map(Path::to_path_buf).unwrap_or_default();
    let text = std::fs::read_to_string(manifest)?;
    Ok(text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(|l| base.join(l))
        .filter(|p| p.exists())
        .collect())
}

/// The computed profile of one run's span DAG.
#[derive(Debug, Default)]
pub struct Analysis {
    /// Observed work W: total committed capsule work across every
    /// completed execution (re-executions included — they were done).
    pub work: u64,
    /// Observed depth D: the longest parent-weighted path through the
    /// completed executions.
    pub depth: u64,
    /// `W/D` — the run's available parallelism.
    pub parallelism: f64,
    /// All executions seen (completed + interrupted).
    pub spans_total: usize,
    /// Executions with a commit (end record).
    pub completed: usize,
    /// Executions cut off mid-capsule by a fault.
    pub interrupted: usize,
    /// Spans with no parent (computation roots / recovery seeds).
    pub roots: usize,
    /// Spans whose parent id was not found in any ingested file — a
    /// complete DAG has zero of these.
    pub unresolved_parents: usize,
    /// Work on non-canonical executions: completed duplicates of a
    /// frame plus a canonical-work proxy per interrupted execution.
    pub wasted_work: u64,
    /// Work on the canonical (exactly-once committed) executions.
    pub useful_work: u64,
    /// `wasted / (useful + wasted)`; 0 for a crash-free run.
    pub wasted_ratio: f64,
    /// Ring-buffer event drops carried over from [`TraceSet`].
    pub dropped_events: u64,
    /// Work (and execution count) per capsule name, descending by work.
    pub per_name: Vec<(String, u64, usize)>,
    /// Work per top-level phase (name prefix before the last `/`),
    /// descending by work.
    pub per_phase: Vec<(String, u64)>,
    /// Work per emitting process (origin), ascending by origin.
    pub per_shard: Vec<(u32, u64)>,
    /// The critical path, root first: `(capsule name, work)` per hop.
    pub critical_path: Vec<(String, u64)>,
}

impl Analysis {
    /// Computes the profile of `set`.
    pub fn of(set: &TraceSet) -> Analysis {
        let spans = &set.spans;
        let mut a = Analysis {
            spans_total: spans.len(),
            dropped_events: set.dropped_events,
            ..Analysis::default()
        };
        // Index every execution by id (for parent resolution). Ids are
        // unique per (epoch, origin, seq); a duplicate would mean a
        // corrupt file — last one wins.
        let by_id: HashMap<u64, usize> =
            spans.iter().enumerate().map(|(at, s)| (s.id, at)).collect();

        let mut name_work: HashMap<&str, (u64, usize)> = HashMap::new();
        let mut phase_work: HashMap<String, u64> = HashMap::new();
        let mut shard_work: HashMap<u32, u64> = HashMap::new();
        for s in spans {
            if s.parent == 0 {
                a.roots += 1;
            } else if !by_id.contains_key(&s.parent) {
                a.unresolved_parents += 1;
            }
            if s.completed {
                a.completed += 1;
                a.work += s.work;
                let e = name_work.entry(s.name.as_str()).or_default();
                e.0 += s.work;
                e.1 += 1;
                *phase_work.entry(phase_of(&s.name).to_string()).or_default() += s.work;
                *shard_work.entry(s.origin).or_default() += s.work;
            } else {
                a.interrupted += 1;
            }
        }

        // Depth: longest parent-weighted path over completed spans,
        // memoized iteratively (the chains can be long — no recursion).
        // Re-executions count: replayed work after a fault genuinely
        // sits on the observed critical path. A missing or incomplete
        // parent contributes depth 0 (the span is treated as a root),
        // and a cycle — impossible in a well-formed trace, but files
        // can be corrupt — is cut at the revisited node.
        let mut memo: HashMap<u64, u64> = HashMap::new();
        let mut deepest: Option<usize> = None;
        for (at, s) in spans.iter().enumerate() {
            if !s.completed {
                continue;
            }
            let d = depth_of(at, spans, &by_id, &mut memo);
            if deepest.is_none_or(|b| d > memo[&spans[b].id]) {
                deepest = Some(at);
            }
        }
        a.depth = deepest.map(|at| memo[&spans[at].id]).unwrap_or(0);
        a.parallelism = if a.depth > 0 {
            a.work as f64 / a.depth as f64
        } else {
            0.0
        };

        // Critical path: walk the deepest leaf back to its root.
        if let Some(mut at) = deepest {
            loop {
                let s = &spans[at];
                a.critical_path.push((s.name.clone(), s.work));
                match by_id.get(&s.parent) {
                    Some(&p) if p != at && spans[p].completed => at = p,
                    _ => break,
                }
            }
            a.critical_path.reverse();
        }

        // Fault-wasted work: group executions by persistent frame
        // handle. The exactly-once protocol commits each frame once;
        // extra executions of the same (frame, capsule) are fault
        // replays or adoption races. Canonical = the completed
        // execution that started last (wall clock orders across
        // processes); earlier completed duplicates are wasted outright,
        // and each interrupted execution wastes ~one canonical-work's
        // worth (its own work counter died with the process). Frame
        // addresses recycle after checkpoint GC — keying by capsule
        // name too disambiguates most reuse; residual imprecision is
        // accepted and documented.
        let mut groups: HashMap<(u64, &str), Vec<usize>> = HashMap::new();
        for (at, s) in spans.iter().enumerate() {
            if s.frame != 0 {
                groups
                    .entry((s.frame, s.name.as_str()))
                    .or_default()
                    .push(at);
            }
        }
        let mut useful = 0u64;
        for ((_, _), execs) in &groups {
            let canon = execs
                .iter()
                .copied()
                .filter(|&e| spans[e].completed)
                .max_by_key(|&e| spans[e].start_us);
            let canon_work = canon.map(|e| spans[e].work).unwrap_or(0);
            if canon.is_some() {
                useful += canon_work;
            }
            for &e in execs {
                if Some(e) == canon {
                    continue;
                }
                let s = &spans[e];
                a.wasted_work += if s.completed { s.work } else { canon_work };
            }
        }
        // Frameless (volatile-continuation) spans are never replayed —
        // all useful.
        useful += spans
            .iter()
            .filter(|s| s.frame == 0 && s.completed)
            .map(|s| s.work)
            .sum::<u64>();
        a.useful_work = useful;
        let denom = a.useful_work + a.wasted_work;
        a.wasted_ratio = if denom > 0 {
            a.wasted_work as f64 / denom as f64
        } else {
            0.0
        };

        a.per_name = name_work
            .into_iter()
            .map(|(n, (w, c))| (n.to_string(), w, c))
            .collect();
        a.per_name.sort_by(|x, y| y.1.cmp(&x.1).then(x.0.cmp(&y.0)));
        a.per_phase = phase_work.into_iter().collect();
        a.per_phase
            .sort_by(|x, y| y.1.cmp(&x.1).then(x.0.cmp(&y.0)));
        a.per_shard = shard_work.into_iter().collect();
        a.per_shard.sort_by_key(|&(o, _)| o);
        a
    }

    /// Renders the human-readable profile report.
    pub fn render_report(&self, title: &str) -> String {
        let mut out = String::new();
        let mut line = |s: String| {
            out.push_str(&s);
            out.push('\n');
        };
        line(format!("== ppm-trace profile: {title} =="));
        line(format!(
            "spans        {} total ({} completed, {} interrupted, {} roots)",
            self.spans_total, self.completed, self.interrupted, self.roots
        ));
        line(format!("work W       {} units", self.work));
        line(format!(
            "depth D      {} units (longest weighted path)",
            self.depth
        ));
        line(format!("parallelism  {:.2}x (W/D)", self.parallelism));
        line(format!(
            "wasted work  {} units of {} ({:.1}% fault-wasted)",
            self.wasted_work,
            self.useful_work + self.wasted_work,
            self.wasted_ratio * 100.0
        ));
        if self.unresolved_parents > 0 {
            line(format!(
                "WARNING: {} span(s) reference a parent not present in the ingested \
                 files — the DAG is incomplete (missing shard file?)",
                self.unresolved_parents
            ));
        }
        if self.dropped_events > 0 {
            line(format!(
                "WARNING: the companion event ring dropped {} event(s) — the sampled \
                 event view of this run is lossy (raise the ring size or sample rate)",
                self.dropped_events
            ));
        }
        line(String::new());
        line("-- critical path (root -> leaf) --".to_string());
        for (name, work) in &self.critical_path {
            line(format!("  {work:>8}  {name}"));
        }
        line(String::new());
        line("-- work by capsule --".to_string());
        for (name, work, count) in self.per_name.iter().take(20) {
            line(format!("  {work:>8}  x{count:<6} {name}"));
        }
        line(String::new());
        line("-- work by phase --".to_string());
        for (phase, work) in &self.per_phase {
            line(format!("  {work:>8}  {phase}"));
        }
        line(String::new());
        line("-- work by shard --".to_string());
        for (origin, work) in &self.per_shard {
            let who = if *origin == 0 {
                "coordinator".to_string()
            } else {
                format!("shard {}", origin - 1)
            };
            line(format!("  {work:>8}  {who}"));
        }
        out
    }
}

/// Renders a folded-stacks file (one `a;b;c count` line per distinct
/// call path, parent-most frame first) from the completed spans — the
/// input format of standard flamegraph tooling, with capsule work as
/// the sample count. Consecutive duplicate names (soft chains of the
/// same capsule) collapse into one frame, and paths deeper than 64
/// frames are truncated at the root end.
pub fn folded_stacks(set: &TraceSet) -> String {
    const MAX_DEPTH: usize = 64;
    let spans = &set.spans;
    let by_id: HashMap<u64, usize> = spans.iter().enumerate().map(|(at, s)| (s.id, at)).collect();
    // Memoized collapsed name-path per span id, self-name last.
    let mut paths: HashMap<u64, Vec<&str>> = HashMap::new();
    let mut agg: HashMap<String, u64> = HashMap::new();
    for (at, s) in spans.iter().enumerate() {
        if !s.completed {
            continue;
        }
        let path = path_of(at, spans, &by_id, &mut paths, MAX_DEPTH);
        *agg.entry(path.join(";")).or_default() += s.work;
    }
    let mut lines: Vec<(String, u64)> = agg.into_iter().collect();
    lines.sort();
    let mut out = String::new();
    for (stack, work) in lines {
        out.push_str(&format!("{stack} {work}\n"));
    }
    out
}

/// The top-level phase of a capsule name: everything before the final
/// `/` segment (`sort/sample/part` -> `sort/sample`; a bare name is its
/// own phase).
fn phase_of(name: &str) -> &str {
    name.rsplit_once('/').map(|(p, _)| p).unwrap_or(name)
}

fn depth_of(
    at: usize,
    spans: &[SpanExec],
    by_id: &HashMap<u64, usize>,
    memo: &mut HashMap<u64, u64>,
) -> u64 {
    if let Some(&d) = memo.get(&spans[at].id) {
        return d;
    }
    // Iterative: push the parent chain until a memoized/root node,
    // then fold back down. The in-progress set guards corrupt cycles.
    let mut chain = vec![at];
    let mut on_chain: std::collections::HashSet<u64> = [spans[at].id].into();
    loop {
        let top = *chain.last().expect("chain is nonempty");
        let parent = spans[top].parent;
        match by_id.get(&parent) {
            Some(&p)
                if spans[p].completed
                    && !memo.contains_key(&parent)
                    && !on_chain.contains(&parent) =>
            {
                on_chain.insert(parent);
                chain.push(p);
            }
            _ => break,
        }
    }
    let mut below = {
        let deepest = *chain.last().expect("chain is nonempty");
        let parent = spans[deepest].parent;
        by_id
            .get(&parent)
            .and_then(|_| memo.get(&parent).copied())
            .unwrap_or(0)
    };
    for &node in chain.iter().rev() {
        below += spans[node].work;
        memo.insert(spans[node].id, below);
    }
    below
}

fn path_of<'a>(
    at: usize,
    spans: &'a [SpanExec],
    by_id: &HashMap<u64, usize>,
    memo: &mut HashMap<u64, Vec<&'a str>>,
    max_depth: usize,
) -> Vec<&'a str> {
    if let Some(p) = memo.get(&spans[at].id) {
        return p.clone();
    }
    let mut chain = vec![at];
    let mut on_chain: std::collections::HashSet<u64> = [spans[at].id].into();
    loop {
        let top = *chain.last().expect("chain is nonempty");
        let parent = spans[top].parent;
        match by_id.get(&parent) {
            Some(&p) if !memo.contains_key(&parent) && !on_chain.contains(&parent) => {
                on_chain.insert(parent);
                chain.push(p);
            }
            _ => break,
        }
    }
    let mut prefix: Vec<&'a str> = {
        let deepest = *chain.last().expect("chain is nonempty");
        memo.get(&spans[deepest].parent)
            .cloned()
            .unwrap_or_default()
    };
    for &node in chain.iter().rev() {
        let name = spans[node].name.as_str();
        if prefix.last() != Some(&name) {
            prefix.push(name);
        }
        if prefix.len() > max_depth {
            prefix.remove(0);
        }
        memo.insert(spans[node].id, prefix.clone());
    }
    prefix
}

/// Scans `line` for `"key":<digits>` and parses the digits.
fn field_u64(line: &str, key: &str) -> Option<u64> {
    let tag = format!("\"{key}\":");
    let at = line.find(&tag)? + tag.len();
    let rest = &line[at..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Scans `line` for `"key":"value"` and returns the (escape-free)
/// value slice.
fn field_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let tag = format!("\"{key}\":\"");
    let at = line.find(&tag)? + tag.len();
    let rest = &line[at..];
    Some(&rest[..rest.find('"')?])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(text: &str) -> TraceSet {
        let mut s = TraceSet::default();
        s.ingest_str(text);
        s
    }

    /// A three-span chain: root(10) -> mid(5) -> leaf(7), serial.
    const CHAIN: &str = "\
{\"k\":\"m\",\"origin\":0,\"epoch\":1,\"pid\":1}\n\
{\"k\":\"s\",\"t\":100,\"id\":1,\"p\":0,\"f\":64,\"c\":\"a/root\",\"pr\":0}\n\
{\"k\":\"e\",\"t\":110,\"id\":1,\"w\":10,\"d\":10}\n\
{\"k\":\"s\",\"t\":110,\"id\":2,\"p\":1,\"f\":80,\"c\":\"a/mid\",\"pr\":0}\n\
{\"k\":\"e\",\"t\":115,\"id\":2,\"w\":5,\"d\":5}\n\
{\"k\":\"s\",\"t\":115,\"id\":3,\"p\":2,\"f\":96,\"c\":\"a/leaf\",\"pr\":0}\n\
{\"k\":\"e\",\"t\":122,\"id\":3,\"w\":7,\"d\":7}\n";

    #[test]
    fn serial_chain_has_depth_equal_work() {
        let a = set(CHAIN).analyze();
        assert_eq!(a.work, 22);
        assert_eq!(a.depth, 22);
        assert!((a.parallelism - 1.0).abs() < 1e-9);
        assert_eq!(a.roots, 1);
        assert_eq!(a.unresolved_parents, 0);
        assert_eq!(a.wasted_work, 0);
        assert_eq!(a.useful_work, 22);
        assert_eq!(a.wasted_ratio, 0.0);
        assert_eq!(
            a.critical_path,
            vec![
                ("a/root".to_string(), 10),
                ("a/mid".to_string(), 5),
                ("a/leaf".to_string(), 7)
            ]
        );
    }

    #[test]
    fn forked_arms_run_in_parallel() {
        // root(4) forks two arms of work 10 and 6; D = 4 + 10.
        let text = "\
{\"k\":\"s\",\"t\":1,\"id\":1,\"p\":0,\"f\":64,\"c\":\"r\",\"pr\":0}\n\
{\"k\":\"e\",\"t\":2,\"id\":1,\"w\":4,\"d\":1}\n\
{\"k\":\"s\",\"t\":2,\"id\":2,\"p\":1,\"f\":80,\"c\":\"l\",\"pr\":0}\n\
{\"k\":\"e\",\"t\":3,\"id\":2,\"w\":10,\"d\":1}\n\
{\"k\":\"s\",\"t\":2,\"id\":3,\"p\":1,\"f\":96,\"c\":\"r2\",\"pr\":1}\n\
{\"k\":\"e\",\"t\":3,\"id\":3,\"w\":6,\"d\":1}\n";
        let a = set(text).analyze();
        assert_eq!(a.work, 20);
        assert_eq!(a.depth, 14);
        assert!((a.parallelism - 20.0 / 14.0).abs() < 1e-9);
        assert_eq!(
            a.critical_path,
            vec![("r".to_string(), 4), ("l".to_string(), 10)]
        );
    }

    #[test]
    fn replayed_frame_counts_as_wasted() {
        // Frame 64 executes twice completed (a crashed epoch's commit
        // raced adoption): earlier one is wasted. Frame 80 is
        // interrupted once then re-run: proxy waste = canonical work.
        let text = "\
{\"k\":\"s\",\"t\":10,\"id\":1,\"p\":0,\"f\":64,\"c\":\"x\",\"pr\":0}\n\
{\"k\":\"e\",\"t\":11,\"id\":1,\"w\":8,\"d\":1}\n\
{\"k\":\"s\",\"t\":20,\"id\":2,\"p\":0,\"f\":64,\"c\":\"x\",\"pr\":1}\n\
{\"k\":\"e\",\"t\":21,\"id\":2,\"w\":8,\"d\":1}\n\
{\"k\":\"s\",\"t\":12,\"id\":3,\"p\":1,\"f\":80,\"c\":\"y\",\"pr\":0}\n\
{\"k\":\"s\",\"t\":30,\"id\":4,\"p\":2,\"f\":80,\"c\":\"y\",\"pr\":1}\n\
{\"k\":\"e\",\"t\":33,\"id\":4,\"w\":5,\"d\":3}\n";
        let a = set(text).analyze();
        assert_eq!(a.interrupted, 1);
        // Wasted: first x (8) + one interrupted y at canonical work 5.
        assert_eq!(a.wasted_work, 13);
        assert_eq!(a.useful_work, 13); // canonical x (8) + canonical y (5)
        assert!((a.wasted_ratio - 0.5).abs() < 1e-9);
    }

    #[test]
    fn cross_file_parents_resolve() {
        let mut s = TraceSet::default();
        s.ingest_str(
            "{\"k\":\"m\",\"origin\":1,\"epoch\":1,\"pid\":1}\n\
             {\"k\":\"s\",\"t\":1,\"id\":281474976710657,\"p\":0,\"f\":64,\"c\":\"f\",\"pr\":0}\n\
             {\"k\":\"e\",\"t\":2,\"id\":281474976710657,\"w\":3,\"d\":1}\n",
        );
        // Shard 2 runs a stolen frame whose parent lives in shard 1's file.
        s.ingest_str(
            "{\"k\":\"m\",\"origin\":2,\"epoch\":1,\"pid\":2}\n\
             {\"k\":\"s\",\"t\":3,\"id\":562949953421313,\"p\":281474976710657,\"f\":96,\"c\":\"g\",\"pr\":0}\n\
             {\"k\":\"e\",\"t\":4,\"id\":562949953421313,\"w\":2,\"d\":1}\n",
        );
        let a = s.analyze();
        assert_eq!(a.unresolved_parents, 0);
        assert_eq!(a.depth, 5);
        assert_eq!(a.per_shard, vec![(1, 3), (2, 2)]);
    }

    #[test]
    fn missing_parent_is_flagged() {
        let a = set(
            "{\"k\":\"s\",\"t\":1,\"id\":9,\"p\":12345,\"f\":64,\"c\":\"o\",\"pr\":0}\n\
             {\"k\":\"e\",\"t\":2,\"id\":9,\"w\":1,\"d\":1}\n",
        )
        .analyze();
        assert_eq!(a.unresolved_parents, 1);
        assert_eq!(a.roots, 0);
        // Depth still computes, treating the orphan as a root.
        assert_eq!(a.depth, 1);
    }

    #[test]
    fn dropped_event_summaries_accumulate() {
        let a = set(
            "{\"k\":\"ts\",\"recorded\":100,\"dropped\":24,\"seen\":124}\n\
             {\"k\":\"ts\",\"recorded\":10,\"dropped\":1,\"seen\":11}\n",
        )
        .analyze();
        assert_eq!(a.dropped_events, 25);
        assert!(a.render_report("t").contains("dropped 25 event(s)"));
    }

    #[test]
    fn folded_stacks_collapse_and_aggregate() {
        let text = "\
{\"k\":\"s\",\"t\":1,\"id\":1,\"p\":0,\"f\":64,\"c\":\"r\",\"pr\":0}\n\
{\"k\":\"e\",\"t\":2,\"id\":1,\"w\":4,\"d\":1}\n\
{\"k\":\"s\",\"t\":2,\"id\":2,\"p\":1,\"f\":80,\"c\":\"r\",\"pr\":0}\n\
{\"k\":\"e\",\"t\":3,\"id\":2,\"w\":3,\"d\":1}\n\
{\"k\":\"s\",\"t\":3,\"id\":3,\"p\":2,\"f\":96,\"c\":\"leaf\",\"pr\":0}\n\
{\"k\":\"e\",\"t\":4,\"id\":3,\"w\":5,\"d\":1}\n";
        let folded = folded_stacks(&set(text));
        // Consecutive duplicate `r` frames collapse; work aggregates
        // at each distinct path.
        assert!(folded.contains("r 7\n"), "folded was:\n{folded}");
        assert!(folded.contains("r;leaf 5\n"), "folded was:\n{folded}");
    }

    #[test]
    fn report_renders_phases_and_shards() {
        let rep = set(CHAIN).analyze().render_report("chain");
        assert!(rep.contains("work W       22 units"));
        assert!(rep.contains("parallelism  1.00x"));
        assert!(rep.contains("a/root"));
        assert!(rep.contains("coordinator"));
        assert!(!rep.contains("WARNING"));
    }

    #[test]
    fn manifest_expansion_skips_missing_files() {
        let dir = std::env::temp_dir().join(format!("ppm-manifest-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("a.spans.jsonl"), "").unwrap();
        let man = dir.join("m.manifest");
        std::fs::write(&man, "# files\na.spans.jsonl\nmissing.spans.jsonl\n").unwrap();
        let files = expand_manifest(&man).unwrap();
        assert_eq!(files, vec![dir.join("a.spans.jsonl")]);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
