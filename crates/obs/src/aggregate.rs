//! Multi-scrape aggregation for the sharded runtime: the coordinator
//! scrapes each worker's endpoint, tags every series with the worker's
//! `shard` label, and regroups families so the merged output is still
//! valid Prometheus text exposition (one `# HELP`/`# TYPE` per family,
//! series of a family consecutive).
//!
//! Both passes are plain line transforms over already-rendered text, so
//! a worker whose process is gone keeps contributing its **last-seen**
//! scrape verbatim — exactly the staleness semantics adoption needs.

use std::collections::HashMap;

/// Splits a series line `name{labels} value` / `name value` into
/// `(name, rest-of-line)`.
fn series_name(line: &str) -> (&str, &str) {
    let cut = line.find(['{', ' ']).unwrap_or(line.len());
    (&line[..cut], &line[cut..])
}

/// Injects `key="value"` as the first label of every series line in a
/// rendered scrape, leaving comment lines untouched and lines that
/// already carry `key` unchanged.
pub fn inject_label(text: &str, key: &str, value: &str) -> String {
    let escaped = value.replace('\\', "\\\\").replace('"', "\\\"");
    let mut out = String::with_capacity(text.len() + 64);
    for line in text.lines() {
        if line.is_empty() || line.starts_with('#') {
            out.push_str(line);
            out.push('\n');
            continue;
        }
        let (name, rest) = series_name(line);
        if let Some(inner) = rest.strip_prefix('{') {
            if labels_contain_key(inner, key) {
                out.push_str(line);
            } else {
                out.push_str(name);
                out.push_str(&format!("{{{key}=\"{escaped}\",{inner}"));
            }
        } else {
            out.push_str(name);
            out.push_str(&format!("{{{key}=\"{escaped}\"}}{rest}"));
        }
        out.push('\n');
    }
    out
}

/// Whether the `{...} value` tail already binds `key`.
fn labels_contain_key(inner_and_value: &str, key: &str) -> bool {
    let labels = inner_and_value.split('}').next().unwrap_or(inner_and_value);
    labels.split(',').any(|pair| {
        pair.trim_start()
            .strip_prefix(key)
            .is_some_and(|r| r.trim_start().starts_with('='))
    })
}

struct Family {
    help: Option<String>,
    typ: Option<String>,
    series: Vec<String>,
}

/// Merges several rendered scrapes into one valid exposition: families
/// with the same name are unified (first `# HELP`/`# TYPE` wins, series
/// concatenated in input order, exact-duplicate series dropped).
pub fn merge_scrapes(parts: &[String]) -> String {
    let mut order: Vec<String> = Vec::new();
    let mut families: HashMap<String, Family> = HashMap::new();
    for part in parts {
        for line in part.lines() {
            if line.is_empty() {
                continue;
            }
            let (name, payload) = if let Some(rest) = line.strip_prefix("# HELP ") {
                let (n, h) = rest.split_once(' ').unwrap_or((rest, ""));
                (family_of(n), Some(("help", h)))
            } else if let Some(rest) = line.strip_prefix("# TYPE ") {
                let (n, t) = rest.split_once(' ').unwrap_or((rest, ""));
                (family_of(n), Some(("type", t)))
            } else if line.starts_with('#') {
                continue;
            } else {
                (family_of(series_name(line).0), None)
            };
            let fam = families.entry(name.clone()).or_insert_with(|| {
                order.push(name.clone());
                Family {
                    help: None,
                    typ: None,
                    series: Vec::new(),
                }
            });
            match payload {
                Some(("help", h)) => {
                    fam.help.get_or_insert_with(|| h.to_string());
                }
                Some(("type", t)) => {
                    fam.typ.get_or_insert_with(|| t.to_string());
                }
                _ => {
                    if !fam.series.iter().any(|s| s == line) {
                        fam.series.push(line.to_string());
                    }
                }
            }
        }
    }
    let mut out = String::new();
    for name in order {
        let fam = &families[&name];
        if let Some(h) = &fam.help {
            out.push_str(&format!("# HELP {name} {h}\n"));
        }
        if let Some(t) = &fam.typ {
            out.push_str(&format!("# TYPE {name} {t}\n"));
        }
        for s in &fam.series {
            out.push_str(s);
            out.push('\n');
        }
    }
    out
}

/// Collapses histogram sub-series (`_bucket`/`_sum`/`_count`) onto their
/// family name so a family's pieces stay grouped under one header.
fn family_of(series: &str) -> String {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(stem) = series.strip_suffix(suffix) {
            return stem.to_string();
        }
    }
    series.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inject_adds_first_label() {
        let text = "# HELP m h\n# TYPE m counter\nm 3\nm{proc=\"1\"} 4\n";
        let got = inject_label(text, "shard", "2");
        assert!(got.contains("m{shard=\"2\"} 3"));
        assert!(got.contains("m{shard=\"2\",proc=\"1\"} 4"));
        assert!(got.contains("# HELP m h"));
    }

    #[test]
    fn inject_skips_existing_key() {
        let text = "m{shard=\"9\"} 1\n";
        assert_eq!(inject_label(text, "shard", "2"), text);
    }

    #[test]
    fn merge_groups_families_across_parts() {
        let a = "# HELP m h\n# TYPE m counter\nm{shard=\"0\"} 1\n".to_string();
        let b = "# HELP m h\n# TYPE m counter\nm{shard=\"1\"} 2\n".to_string();
        let got = merge_scrapes(&[a, b]);
        assert_eq!(got.matches("# TYPE m counter").count(), 1);
        let help_at = got.find("# HELP m").unwrap();
        let s0 = got.find("m{shard=\"0\"}").unwrap();
        let s1 = got.find("m{shard=\"1\"}").unwrap();
        assert!(help_at < s0 && s0 < s1);
    }

    #[test]
    fn merge_keeps_histogram_pieces_under_one_family() {
        let a = "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_sum 2\nh_count 1\n".to_string();
        let b = "# TYPE h histogram\nh_bucket{shard=\"1\",le=\"+Inf\"} 3\n".to_string();
        let got = merge_scrapes(&[a, b]);
        assert_eq!(got.matches("# TYPE h histogram").count(), 1);
        assert!(got.contains("h_bucket{shard=\"1\",le=\"+Inf\"} 3"));
    }
}
