//! # `ppm-obs` — observability for the Parallel-PM runtime
//!
//! The paper's cost model (Blelloch, Gibbons, Gu, McGuffey and Shun,
//! SPAA 2018) is defined by counters — faultless work `W` vs. total work
//! `W_f`, maximum capsule work `C`, fault and restart counts — and the
//! runtime grew more (checkpoint skip/retry, shard adoption, lease
//! heartbeats, dirty-page flushing). This crate gives them one export
//! path:
//!
//! * [`MetricsRegistry`] — typed [`Counter`]/[`Gauge`]/[`Histogram`]
//!   handles over relaxed atomics plus scrape-time collector closures,
//!   rendered in the Prometheus text exposition format (0.0.4).
//! * [`MetricsServer`] — a hand-rolled stdlib-`TcpListener` HTTP
//!   endpoint answering `GET /metrics` (the build is offline; no HTTP
//!   framework), with [`http_get`] as the matching one-shot client and
//!   [`inject_label`]/[`merge_scrapes`] so a sharded coordinator can
//!   aggregate per-worker scrapes under `shard` labels — keeping a dead
//!   worker's last-seen series visible through adoption.
//! * [`Tracer`] — a ring-buffered, sampled structured event trace
//!   (run/epoch/capsule/steal/adoption/checkpoint/recovery) flushed to a
//!   JSONL sidecar and summarized as [`TraceSummary`].
//! * [`SpanSink`] + [`profile`] — causal span tracing: every traced
//!   capsule execution streams a span record with a parent edge
//!   (propagated across processes through the persistent frame words),
//!   and the `ppm-trace` binary reconstructs the capsule DAG to measure
//!   the paper's W, D, parallelism, and fault-wasted work on real runs.
//!
//! [`Obs`] bundles one registry plus one tracer plus an optional span
//! sink; a machine owns exactly one `Arc<Obs>` and every subsystem
//! built over that machine registers into it.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod aggregate;
pub mod metrics;
pub mod profile;
pub mod server;
pub mod span;
pub mod trace;

use std::sync::{Arc, Mutex};

pub use aggregate::{inject_label, merge_scrapes};
pub use metrics::{
    Counter, CounterSource, Gauge, GaugeSource, Histogram, MetricsRegistry, HISTOGRAM_BUCKETS,
};
pub use profile::{expand_manifest, folded_stacks, Analysis, SpanExec, TraceSet};
pub use server::{http_get, BodyFn, MetricsServer};
pub use span::SpanSink;
pub use trace::{
    shard_trace_path, TraceEvent, TraceKind, TraceSummary, Tracer, DEFAULT_TRACE_CAPACITY,
    DEFAULT_TRACE_SAMPLE,
};

/// Environment variable selecting the scrape port. Single-process runs
/// serve on exactly this port; a sharded coordinator serves the
/// aggregated view here and worker `s` serves on `port + 1 + s`.
pub const METRICS_PORT_ENV: &str = "PPM_METRICS_PORT";
/// Environment variable naming the JSONL trace sidecar file. Setting it
/// enables the tracer. Cluster workers write `<file>.shard<k>.jsonl`
/// (see [`shard_trace_path`]) and every process additionally streams
/// causal spans to `<file>.spans.jsonl` /
/// `<file>.shard<k>.spans.jsonl` (see [`SpanSink`]); the coordinator
/// writes a `<file>.manifest` naming the whole family for `ppm-trace`.
pub const TRACE_FILE_ENV: &str = "PPM_TRACE_FILE";
/// Environment variable overriding the trace sampling divisor for
/// high-rate kinds (default [`DEFAULT_TRACE_SAMPLE`]).
pub const TRACE_SAMPLE_ENV: &str = "PPM_TRACE_SAMPLE";

/// One machine's observability handle: a metrics registry plus an event
/// tracer plus an optional causal span sink, shared by every subsystem
/// built over that machine.
#[derive(Debug, Default)]
pub struct Obs {
    registry: Arc<MetricsRegistry>,
    tracer: Arc<Tracer>,
    span_sink: Mutex<Option<Arc<SpanSink>>>,
}

impl Obs {
    /// A fresh handle (tracer disabled, default capacity), honoring the
    /// `PPM_TRACE_FILE` / `PPM_TRACE_SAMPLE` environment knobs.
    pub fn new() -> Self {
        let obs = Obs {
            registry: Arc::new(MetricsRegistry::new()),
            tracer: Arc::new(Tracer::new(DEFAULT_TRACE_CAPACITY)),
            span_sink: Mutex::new(None),
        };
        if std::env::var(TRACE_FILE_ENV).is_ok() {
            obs.tracer.enable();
        }
        if let Some(n) = std::env::var(TRACE_SAMPLE_ENV)
            .ok()
            .and_then(|v| v.parse().ok())
        {
            obs.tracer.set_sample(n);
        }
        // Silent trace loss was invisible before this counter: the ring
        // overwrites its oldest events with no signal anywhere. Scrapes
        // now carry the running drop count.
        let tracer = obs.tracer.clone();
        obs.registry.counter_fn(
            "ppm_trace_dropped_total",
            "Trace events lost to ring-buffer capacity overwrites",
            &[],
            move || tracer.dropped(),
        );
        obs
    }

    /// The metrics registry.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// The event tracer.
    pub fn tracer(&self) -> &Arc<Tracer> {
        &self.tracer
    }

    /// Installs the process-wide causal span sink. Every `ProcCtx`
    /// minted from the machine after this point emits span records
    /// into it (see [`SpanSink`]).
    pub fn set_span_sink(&self, sink: Arc<SpanSink>) {
        *self.span_sink.lock().unwrap() = Some(sink);
    }

    /// The installed span sink, if any.
    pub fn span_sink(&self) -> Option<Arc<SpanSink>> {
        self.span_sink.lock().unwrap().clone()
    }

    /// Port requested via `PPM_METRICS_PORT`, if any.
    pub fn metrics_port_from_env() -> Option<u16> {
        std::env::var(METRICS_PORT_ENV).ok()?.parse().ok()
    }

    /// Trace sidecar path requested via `PPM_TRACE_FILE`, if any.
    pub fn trace_file_from_env() -> Option<std::path::PathBuf> {
        std::env::var(TRACE_FILE_ENV).ok().map(Into::into)
    }

    /// Starts a [`MetricsServer`] on `port` rendering this handle's
    /// registry.
    pub fn serve(&self, port: u16) -> std::io::Result<MetricsServer> {
        let reg = self.registry.clone();
        MetricsServer::start(port, Arc::new(move || reg.render()))
    }
}
