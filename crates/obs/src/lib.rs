//! # `ppm-obs` — observability for the Parallel-PM runtime
//!
//! The paper's cost model (Blelloch, Gibbons, Gu, McGuffey and Shun,
//! SPAA 2018) is defined by counters — faultless work `W` vs. total work
//! `W_f`, maximum capsule work `C`, fault and restart counts — and the
//! runtime grew more (checkpoint skip/retry, shard adoption, lease
//! heartbeats, dirty-page flushing). This crate gives them one export
//! path:
//!
//! * [`MetricsRegistry`] — typed [`Counter`]/[`Gauge`]/[`Histogram`]
//!   handles over relaxed atomics plus scrape-time collector closures,
//!   rendered in the Prometheus text exposition format (0.0.4).
//! * [`MetricsServer`] — a hand-rolled stdlib-`TcpListener` HTTP
//!   endpoint answering `GET /metrics` (the build is offline; no HTTP
//!   framework), with [`http_get`] as the matching one-shot client and
//!   [`inject_label`]/[`merge_scrapes`] so a sharded coordinator can
//!   aggregate per-worker scrapes under `shard` labels — keeping a dead
//!   worker's last-seen series visible through adoption.
//! * [`Tracer`] — a ring-buffered, sampled structured event trace
//!   (run/epoch/capsule/steal/adoption/checkpoint/recovery) flushed to a
//!   JSONL sidecar and summarized as [`TraceSummary`].
//!
//! [`Obs`] bundles one registry plus one tracer; a machine owns exactly
//! one `Arc<Obs>` and every subsystem built over that machine registers
//! into it.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod aggregate;
pub mod metrics;
pub mod server;
pub mod trace;

use std::sync::Arc;

pub use aggregate::{inject_label, merge_scrapes};
pub use metrics::{
    Counter, CounterSource, Gauge, GaugeSource, Histogram, MetricsRegistry, HISTOGRAM_BUCKETS,
};
pub use server::{http_get, BodyFn, MetricsServer};
pub use trace::{
    TraceEvent, TraceKind, TraceSummary, Tracer, DEFAULT_TRACE_CAPACITY, DEFAULT_TRACE_SAMPLE,
};

/// Environment variable selecting the scrape port. Single-process runs
/// serve on exactly this port; a sharded coordinator serves the
/// aggregated view here and worker `s` serves on `port + 1 + s`.
pub const METRICS_PORT_ENV: &str = "PPM_METRICS_PORT";
/// Environment variable naming the JSONL trace sidecar file (workers
/// append `.shard<N>`). Setting it enables the tracer.
pub const TRACE_FILE_ENV: &str = "PPM_TRACE_FILE";
/// Environment variable overriding the trace sampling divisor for
/// high-rate kinds (default [`DEFAULT_TRACE_SAMPLE`]).
pub const TRACE_SAMPLE_ENV: &str = "PPM_TRACE_SAMPLE";

/// One machine's observability handle: a metrics registry plus an event
/// tracer, shared by every subsystem built over that machine.
#[derive(Debug, Default)]
pub struct Obs {
    registry: Arc<MetricsRegistry>,
    tracer: Arc<Tracer>,
}

impl Obs {
    /// A fresh handle (tracer disabled, default capacity), honoring the
    /// `PPM_TRACE_FILE` / `PPM_TRACE_SAMPLE` environment knobs.
    pub fn new() -> Self {
        let obs = Obs {
            registry: Arc::new(MetricsRegistry::new()),
            tracer: Arc::new(Tracer::new(DEFAULT_TRACE_CAPACITY)),
        };
        if std::env::var(TRACE_FILE_ENV).is_ok() {
            obs.tracer.enable();
        }
        if let Some(n) = std::env::var(TRACE_SAMPLE_ENV)
            .ok()
            .and_then(|v| v.parse().ok())
        {
            obs.tracer.set_sample(n);
        }
        obs
    }

    /// The metrics registry.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// The event tracer.
    pub fn tracer(&self) -> &Arc<Tracer> {
        &self.tracer
    }

    /// Port requested via `PPM_METRICS_PORT`, if any.
    pub fn metrics_port_from_env() -> Option<u16> {
        std::env::var(METRICS_PORT_ENV).ok()?.parse().ok()
    }

    /// Trace sidecar path requested via `PPM_TRACE_FILE`, if any.
    pub fn trace_file_from_env() -> Option<std::path::PathBuf> {
        std::env::var(TRACE_FILE_ENV).ok().map(Into::into)
    }

    /// Starts a [`MetricsServer`] on `port` rendering this handle's
    /// registry.
    pub fn serve(&self, port: u16) -> std::io::Result<MetricsServer> {
        let reg = self.registry.clone();
        MetricsServer::start(port, Arc::new(move || reg.render()))
    }
}
