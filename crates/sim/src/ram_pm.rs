//! Theorem 3.2: simulating the RAM on the PM model.
//!
//! "The simulation keeps all simulated memory in the persistent memory one
//! word per block. It also keeps two copies of the registers in persistent
//! memory, and the simulation swaps between the two." Each capsule
//! simulates exactly one RAM instruction: it reads the register copy
//! written by the previous capsule, applies the instruction (at most one
//! simulated memory read or write), and writes the other register copy.
//! The capsule is write-after-read conflict free because it reads one copy
//! and writes the other, so restarts are idempotent (Theorem 3.1), and the
//! capsule work is a constant `k`, so for `f ≤ 1/(2k)` the expected total
//! work is `O(t)`.

use ppm_core::{capsule, run_chain, Cont, InstallCtx, Machine, Next};
use ppm_pm::{Fault, Region, Word};

use crate::ram::{from_word, step, to_word, MemPort, RamProgram, NREGS};

/// A [`MemPort`] backed by costed persistent-memory accesses. Faults are
/// captured and re-raised by the capsule body (the `step` interface is
/// infallible; a faulted access returns 0, and the capsule discards all
/// state and restarts anyway).
struct PmMem<'a> {
    ctx: &'a mut ppm_pm::ProcCtx,
    region: Region,
    fault: Option<Fault>,
}

impl MemPort for PmMem<'_> {
    fn load(&mut self, a: usize) -> i64 {
        if self.fault.is_some() {
            return 0;
        }
        match self.ctx.pread(self.region.at(a)) {
            Ok(w) => from_word(w),
            Err(f) => {
                self.fault = Some(f);
                0
            }
        }
    }
    fn store(&mut self, a: usize, v: i64) {
        if self.fault.is_some() {
            return;
        }
        if let Err(f) = self.ctx.pwrite(self.region.at(a), to_word(v)) {
            self.fault = Some(f);
        }
    }
}

/// Persistent layout of one register copy: `NREGS` registers, then the
/// program counter, a halt flag, and the step count.
const COPY_WORDS: usize = NREGS + 3;
const PC_SLOT: usize = NREGS;
const HALT_SLOT: usize = NREGS + 1;
const STEPS_SLOT: usize = NREGS + 2;

/// The simulation's persistent state: two register copies and the
/// simulated memory.
#[derive(Debug, Clone, Copy)]
pub struct RamPmLayout {
    copies: [Region; 2],
    /// The simulated RAM's memory (one simulated word per persistent word).
    pub mem: Region,
}

impl RamPmLayout {
    /// Carves the layout for a simulated memory of `mem_words` words.
    pub fn new(machine: &Machine, mem_words: usize) -> Self {
        RamPmLayout {
            copies: [
                machine.alloc_region(COPY_WORDS),
                machine.alloc_region(COPY_WORDS),
            ],
            mem: machine.alloc_region(mem_words),
        }
    }

    /// Loads the simulated memory with initial contents (uncosted setup).
    pub fn load_memory(&self, machine: &Machine, contents: &[i64]) {
        assert!(contents.len() <= self.mem.len);
        for (i, v) in contents.iter().enumerate() {
            machine.mem().store(self.mem.at(i), to_word(*v));
        }
    }

    /// Reads the simulated memory back (oracle).
    pub fn read_memory(&self, machine: &Machine, len: usize) -> Vec<i64> {
        (0..len)
            .map(|i| from_word(machine.mem().load(self.mem.at(i))))
            .collect()
    }
}

/// Result of a PM-model RAM simulation.
#[derive(Debug, Clone)]
pub struct RamPmReport {
    /// Simulated RAM steps executed.
    pub steps: u64,
    /// Whether the program halted (vs. the step limit).
    pub halted: bool,
    /// Final register file.
    pub regs: [i64; NREGS],
}

/// Builds the capsule simulating one instruction: read registers from
/// `copies[p]`, execute, write `copies[1-p]`.
fn step_capsule_for(
    prog: &std::sync::Arc<RamProgram>,
    layout: RamPmLayout,
    parity: usize,
    steps_done: u64,
    max_steps: u64,
) -> Cont {
    let prog = prog.clone();
    capsule("ram-pm/step", move |ctx| {
        let src = layout.copies[parity];
        let dst = layout.copies[1 - parity];
        // Read the current register copy (constant work).
        let mut regs = [0i64; NREGS];
        for (i, r) in regs.iter_mut().enumerate() {
            *r = from_word(ctx.pread(src.at(i))?);
        }
        let mut pc = ctx.pread(src.at(PC_SLOT))? as usize;

        let instr = prog.instrs.get(pc).copied();
        let halted = match instr {
            None => true,
            Some(instr) => {
                // At most one simulated memory transfer per step.
                let mut port = PmMem {
                    ctx,
                    region: layout.mem,
                    fault: None,
                };
                let cont = step(instr, &mut regs, &mut pc, &mut port);
                if let Some(f) = port.fault {
                    return Err(f);
                }
                !cont
            }
        };
        let done = halted || steps_done + 1 >= max_steps;

        // Write the other copy (the swap that makes the capsule
        // conflict free).
        for (i, r) in regs.iter().enumerate() {
            ctx.pwrite(dst.at(i), to_word(*r))?;
        }
        ctx.pwrite(dst.at(PC_SLOT), pc as Word)?;
        ctx.pwrite(dst.at(HALT_SLOT), halted as Word)?;
        ctx.pwrite(dst.at(STEPS_SLOT), steps_done + 1)?;

        if done {
            Ok(Next::End)
        } else {
            Ok(Next::Jump(step_capsule_for(
                &prog,
                layout,
                1 - parity,
                steps_done + 1,
                max_steps,
            )))
        }
    })
}

/// Simulates `prog` on the PM model (processor 0 of `machine`), with the
/// machine's fault configuration active. Returns the report; `Err` only if
/// the processor hard-faults.
pub fn simulate_ram_on_pm(
    machine: &Machine,
    prog: &RamProgram,
    layout: RamPmLayout,
    max_steps: u64,
) -> Result<RamPmReport, Fault> {
    let prog = std::sync::Arc::new(prog.clone());
    let first = step_capsule_for(&prog, layout, 0, 0, max_steps);
    let mut ctx = machine.ctx(0);
    let mut install = InstallCtx::new(machine.proc_meta(0));
    run_chain(&mut ctx, machine.arena(), &mut install, first)?;

    // The final state lives in whichever copy was written last: the one
    // with the larger step count.
    let mem = machine.mem();
    let pick =
        if mem.load(layout.copies[0].at(STEPS_SLOT)) >= mem.load(layout.copies[1].at(STEPS_SLOT)) {
            layout.copies[0]
        } else {
            layout.copies[1]
        };
    let mut regs = [0i64; NREGS];
    for (i, r) in regs.iter_mut().enumerate() {
        *r = from_word(mem.load(pick.at(i)));
    }
    Ok(RamPmReport {
        steps: mem.load(pick.at(STEPS_SLOT)),
        halted: mem.load(pick.at(HALT_SLOT)) != 0,
        regs,
    })
}

/// Convenience: run a program natively and on the PM model with the same
/// initial memory, and return `(native, pm_report, pm_memory)` for
/// comparison. The PM machine's fault configuration applies.
pub fn run_both(
    machine: &Machine,
    prog: &RamProgram,
    initial_mem: &[i64],
    max_steps: u64,
) -> (crate::ram::RamResult, RamPmReport, Vec<i64>) {
    let mut native_mem = initial_mem.to_vec();
    let native = crate::ram::run_native(prog, &mut native_mem, max_steps);

    let layout = RamPmLayout::new(machine, initial_mem.len());
    layout.load_memory(machine, initial_mem);
    let report = simulate_ram_on_pm(machine, prog, layout, max_steps)
        .expect("single-processor RAM simulation hard-faulted");
    let pm_mem = layout.read_memory(machine, initial_mem.len());
    (native, report, pm_mem)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ram::programs::*;
    use ppm_pm::{FaultConfig, PmConfig};

    fn machine(f: FaultConfig) -> Machine {
        Machine::new(PmConfig::parallel(1, 1 << 20).with_fault(f))
    }

    #[test]
    fn pm_simulation_matches_native_sum() {
        let m = machine(FaultConfig::none());
        let n = 50;
        let mut init: Vec<i64> = (0..n as i64).collect();
        init.push(0);
        let (native, report, pm_mem) = run_both(&m, &sum_array(n), &init, 1 << 20);
        assert!(native.halted && report.halted);
        assert_eq!(pm_mem[n], (0..n as i64).sum::<i64>());
        assert_eq!(report.regs, native.regs);
    }

    #[test]
    fn pm_simulation_matches_native_under_soft_faults() {
        for seed in 0..5 {
            let m = machine(FaultConfig::soft(0.02, seed));
            let mut init: Vec<i64> = (0..30).collect();
            init.push(0);
            let (native, report, pm_mem) = run_both(&m, &sum_array(30), &init, 1 << 20);
            assert!(report.halted, "seed {seed}");
            assert_eq!(report.regs, native.regs, "seed {seed}");
            assert_eq!(pm_mem[30], (0..30).sum::<i64>(), "seed {seed}");
            assert!(m.snapshot().soft_faults > 0, "seed {seed}");
        }
    }

    #[test]
    fn capsule_work_is_constant() {
        let m = machine(FaultConfig::none());
        let mut init: Vec<i64> = (0..40).collect();
        init.push(0);
        let _ = run_both(&m, &sum_array(40), &init, 1 << 20);
        let c = m.snapshot().max_capsule_work;
        // NREGS+2 reads + 1 sim transfer + NREGS+2 writes + install ≤ 24.
        assert!(c <= 24, "max capsule work {c} should be a small constant");
        assert!(c >= 10);
    }

    #[test]
    fn total_work_is_linear_in_t_with_faults() {
        // Theorem 3.2's bound: expected total work O(t), constant factor.
        let work_for = |n: usize, f: f64| -> (u64, u64) {
            let m = machine(if f == 0.0 {
                FaultConfig::none()
            } else {
                FaultConfig::soft(f, 99)
            });
            let mut init: Vec<i64> = (0..n as i64).collect();
            init.push(0);
            let (native, _, _) = run_both(&m, &sum_array(n), &init, 1 << 22);
            (native.steps, m.snapshot().total_work())
        };
        let (t, w0) = work_for(200, 0.0);
        let (_, wf) = work_for(200, 0.01);
        // Faultless: ~21 transfers/step. With f = 0.01 the overhead must
        // stay a small constant factor.
        assert!(
            w0 as f64 / t as f64 <= 25.0,
            "w0/t = {}",
            w0 as f64 / t as f64
        );
        assert!(
            (wf as f64) < 1.8 * w0 as f64,
            "faulty work {wf} should be within a small factor of faultless {w0}"
        );
    }

    #[test]
    fn memset_on_pm_writes_all_words() {
        let m = machine(FaultConfig::soft(0.05, 3));
        let init = vec![0i64; 32];
        let (_, report, pm_mem) = run_both(&m, &memset(32, 9), &init, 1 << 20);
        assert!(report.halted);
        assert!(pm_mem.iter().all(|&v| v == 9), "{pm_mem:?}");
    }

    #[test]
    fn fib_on_pm() {
        let m = machine(FaultConfig::soft(0.03, 17));
        let init = vec![0i64; 4];
        let (_, report, pm_mem) = run_both(&m, &fib(20), &init, 1 << 20);
        assert!(report.halted);
        assert_eq!(pm_mem[0], 6765);
    }
}
