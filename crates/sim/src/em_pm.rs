//! Theorem 3.3: simulating the external-memory machine on the PM model.
//!
//! "The simulation consists of rounds each of which has a simulation
//! capsule and a commit capsule. ... The simulation capsule simulates some
//! number of steps of the source program. It starts by reading in one of
//! the two copies of the ephemeral memory and registers. Then during the
//! simulation ... writes from the ephemeral memory to the persistent
//! memory ... are buffered in the ephemeral memory. This means that all
//! reads from the external memory have to first check the buffer. ...
//! When this count reaches M/B, the simulation closes the capsule ... by
//! writing out the simulated ephemeral memory, the registers, and the
//! write buffer ... The commit capsule reads in the write buffer ... and
//! applies all the writes."
//!
//! Each round costs O(M/B) transfers and simulates M/B source transfers,
//! so the faultless work is O(t); with `f ≤ B/(cM)` each round faults with
//! constant probability and the expected total work stays O(t).

use std::collections::HashMap;
use std::sync::Arc;

use ppm_core::{capsule, run_chain, Cont, InstallCtx, Machine, Next};
use ppm_pm::{Fault, ProcCtx, Region, Word};

use crate::em::{em_step, BlockPort, EmInstr, EmProgram};
use crate::ram::{from_word, to_word};

/// Zero-cost instructions executed per round before closing anyway (a
/// guard so compute-only loops cannot produce unbounded capsules; the cost
/// model is unaffected because those instructions are free).
const INSTR_ROUND_CAP: u64 = 4096;

/// Copy-region metadata slots (in the first block of each copy).
const PC_SLOT: usize = 0;
const HALT_SLOT: usize = 1;
const INSTRS_SLOT: usize = 2;

/// Persistent layout for the EM simulation.
#[derive(Debug, Clone, Copy)]
pub struct EmPmLayout {
    /// Two copies of (metadata block + simulated ephemeral memory).
    copies: [Region; 2],
    /// Write-buffer block numbers.
    buf_meta: Region,
    /// Write-buffer block contents.
    buf_data: Region,
    /// The simulated external memory.
    pub ext: Region,
    /// Simulated M (words) and B (words).
    m: usize,
    b: usize,
}

impl EmPmLayout {
    /// Carves the layout for a program with ephemeral size `m` (the
    /// machine's block size must equal the program's `B`) and an external
    /// memory of `ext_words`.
    pub fn new(machine: &Machine, prog: &EmProgram, ext_words: usize) -> Self {
        let b = machine.cfg().block_size;
        assert_eq!(
            b, prog.b,
            "machine block size must match the EM program's B"
        );
        let m = prog.m;
        let copy_words = b + m; // one metadata block + M ephemeral words
        let buf_entries = (m / b).max(1) + 1;
        EmPmLayout {
            copies: [
                machine.alloc_region(copy_words),
                machine.alloc_region(copy_words),
            ],
            buf_meta: machine.alloc_region(buf_entries),
            buf_data: machine.alloc_region(buf_entries * b),
            ext: machine.alloc_region(ext_words),
            m,
            b,
        }
    }

    /// Loads the simulated external memory (uncosted setup).
    pub fn load_ext(&self, machine: &Machine, contents: &[i64]) {
        assert!(contents.len() <= self.ext.len);
        for (i, v) in contents.iter().enumerate() {
            machine.mem().store(self.ext.at(i), to_word(*v));
        }
    }

    /// Reads the simulated external memory back (oracle).
    pub fn read_ext(&self, machine: &Machine, len: usize) -> Vec<i64> {
        (0..len)
            .map(|i| from_word(machine.mem().load(self.ext.at(i))))
            .collect()
    }
}

/// Report of a PM-model EM simulation.
#[derive(Debug, Clone, Copy)]
pub struct EmPmReport {
    /// Whether the program halted (vs. the instruction limit).
    pub halted: bool,
    /// Simulated instructions executed.
    pub instructions: u64,
}

/// The buffered external-memory port of the simulation capsule.
struct BufferedPort<'a, 'c> {
    ctx: &'a mut ProcCtx,
    ext: Region,
    b: usize,
    buffer: &'a mut HashMap<usize, Vec<i64>>,
    order: &'a mut Vec<usize>,
    fault: &'a mut Option<Fault>,
    _marker: std::marker::PhantomData<&'c ()>,
}

impl BlockPort for BufferedPort<'_, '_> {
    fn read_block(&mut self, blk: usize, buf: &mut [i64]) {
        if self.fault.is_some() {
            return;
        }
        if let Some(data) = self.buffer.get(&blk) {
            buf.copy_from_slice(data);
            return;
        }
        let mut words = vec![0u64; self.b];
        match self
            .ctx
            .read_block_into(self.ext.start + blk * self.b, &mut words)
        {
            Ok(()) => {
                for (d, w) in buf.iter_mut().zip(&words) {
                    *d = from_word(*w);
                }
            }
            Err(f) => *self.fault = Some(f),
        }
    }

    fn write_block(&mut self, blk: usize, data: &[i64]) {
        if self.fault.is_some() {
            return;
        }
        if self.buffer.insert(blk, data.to_vec()).is_none() {
            self.order.push(blk);
        }
    }
}

fn read_copy(
    ctx: &mut ProcCtx,
    copy: Region,
    m: usize,
    b: usize,
) -> Result<(usize, bool, u64, Vec<i64>), Fault> {
    let mut meta = vec![0u64; b.min(copy.len)];
    ctx.read_block_into(copy.start, &mut meta)?;
    let mut eph = vec![0i64; m];
    let mut blkbuf = vec![0u64; b];
    for blk in 0..m.div_ceil(b) {
        let start = copy.start + b + blk * b;
        let words = (m - blk * b).min(b);
        ctx.read_block_into(start, &mut blkbuf[..words])?;
        for j in 0..words {
            eph[blk * b + j] = from_word(blkbuf[j]);
        }
    }
    Ok((
        meta[PC_SLOT] as usize,
        meta[HALT_SLOT] != 0,
        meta[INSTRS_SLOT],
        eph,
    ))
}

fn write_copy(
    ctx: &mut ProcCtx,
    copy: Region,
    pc: usize,
    halted: bool,
    instrs: u64,
    eph: &[i64],
    b: usize,
) -> Result<(), Fault> {
    let mut meta = vec![0u64; b];
    meta[PC_SLOT] = pc as Word;
    meta[HALT_SLOT] = halted as Word;
    meta[INSTRS_SLOT] = instrs;
    ctx.write_block(copy.start, &meta)?;
    let m = eph.len();
    let mut blkbuf = vec![0u64; b];
    for blk in 0..m.div_ceil(b) {
        let words = (m - blk * b).min(b);
        for j in 0..words {
            blkbuf[j] = to_word(eph[blk * b + j]);
        }
        ctx.write_block(copy.start + b + blk * b, &blkbuf[..words])?;
    }
    Ok(())
}

/// One simulation round starting from `copies[parity]`.
fn sim_capsule(prog: &Arc<EmProgram>, layout: EmPmLayout, parity: usize, max_instrs: u64) -> Cont {
    let prog = prog.clone();
    capsule("em-pm/simulate", move |ctx| {
        let (m, b) = (layout.m, layout.b);
        let round_budget = (m / b).max(1) as u64;
        let (mut pc, _, total0, mut eph) = read_copy(ctx, layout.copies[parity], m, b)?;

        let mut buffer: HashMap<usize, Vec<i64>> = HashMap::new();
        let mut order: Vec<usize> = Vec::new();
        let mut fault: Option<Fault> = None;
        let mut transfers = 0u64;
        let mut executed = 0u64;
        let mut halted = false;

        loop {
            if total0 + executed >= max_instrs {
                halted = true; // treat the limit as termination
                break;
            }
            let Some(&instr) = prog.instrs.get(pc) else {
                halted = true;
                break;
            };
            let is_transfer = matches!(
                instr,
                EmInstr::ReadBlock { .. } | EmInstr::WriteBlock { .. }
            );
            if is_transfer && transfers >= round_budget {
                break; // close the round before the next transfer
            }
            let cont = {
                let mut port = BufferedPort {
                    ctx,
                    ext: layout.ext,
                    b,
                    buffer: &mut buffer,
                    order: &mut order,
                    fault: &mut fault,
                    _marker: std::marker::PhantomData,
                };
                em_step(instr, &mut eph, &mut pc, b, &mut port)
            };
            if let Some(f) = fault {
                return Err(f);
            }
            if is_transfer {
                transfers += 1;
            }
            executed += 1;
            if !cont {
                halted = true;
                break;
            }
            if executed >= INSTR_ROUND_CAP {
                break;
            }
        }

        // Close the round: other copy, then the write buffer.
        write_copy(
            ctx,
            layout.copies[1 - parity],
            pc,
            halted,
            total0 + executed,
            &eph,
            b,
        )?;
        let mut blkbuf = vec![0u64; b];
        for (k, blk) in order.iter().enumerate() {
            ctx.pwrite(layout.buf_meta.at(k), *blk as Word)?;
            for (j, v) in buffer[blk].iter().enumerate() {
                blkbuf[j] = to_word(*v);
            }
            ctx.write_block(layout.buf_data.start + k * b, &blkbuf)?;
        }
        Ok(Next::Jump(commit_capsule(
            &prog,
            layout,
            1 - parity,
            order.len(),
            halted,
            max_instrs,
        )))
    })
}

/// The commit capsule: apply the buffered external writes, then install
/// the next simulation round (or finish).
fn commit_capsule(
    prog: &Arc<EmProgram>,
    layout: EmPmLayout,
    parity: usize,
    n_dirty: usize,
    halted: bool,
    max_instrs: u64,
) -> Cont {
    let prog = prog.clone();
    capsule("em-pm/commit", move |ctx| {
        let b = layout.b;
        let mut buf = vec![0u64; b];
        for k in 0..n_dirty {
            let blk = ctx.pread(layout.buf_meta.at(k))? as usize;
            ctx.read_block_into(layout.buf_data.start + k * b, &mut buf)?;
            ctx.write_block(layout.ext.start + blk * b, &buf)?;
        }
        if halted {
            Ok(Next::End)
        } else {
            Ok(Next::Jump(sim_capsule(&prog, layout, parity, max_instrs)))
        }
    })
}

/// Simulates `prog` on the PM model (processor 0), with the machine's
/// fault configuration active. `Err` only on a hard fault.
pub fn simulate_em_on_pm(
    machine: &Machine,
    prog: &EmProgram,
    layout: EmPmLayout,
    max_instrs: u64,
) -> Result<EmPmReport, Fault> {
    let prog = Arc::new(prog.clone());
    let first = sim_capsule(&prog, layout, 0, max_instrs);
    let mut ctx = machine.ctx(0);
    let mut install = InstallCtx::new(machine.proc_meta(0));
    run_chain(&mut ctx, machine.arena(), &mut install, first)?;

    // Read the freshest copy.
    let mem = machine.mem();
    let pick = if mem.load(layout.copies[0].at(INSTRS_SLOT))
        >= mem.load(layout.copies[1].at(INSTRS_SLOT))
    {
        layout.copies[0]
    } else {
        layout.copies[1]
    };
    Ok(EmPmReport {
        halted: mem.load(pick.at(HALT_SLOT)) != 0,
        instructions: mem.load(pick.at(INSTRS_SLOT)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::em::programs::{block_reverse, block_sum_built};
    use crate::em::run_native_em;
    use ppm_pm::{FaultConfig, PmConfig};

    fn machine(f: FaultConfig, b: usize) -> Machine {
        Machine::new(
            PmConfig::parallel(1, 1 << 20)
                .with_block_size(b)
                .with_fault(f),
        )
    }

    fn check(prog: EmProgram, init_ext: Vec<i64>, f: FaultConfig) -> (u64, u64) {
        let mach = machine(f, prog.b);
        let layout = EmPmLayout::new(&mach, &prog, init_ext.len());
        layout.load_ext(&mach, &init_ext);
        let report = simulate_em_on_pm(&mach, &prog, layout, 1 << 22).unwrap();
        assert!(report.halted);
        let pm_ext = layout.read_ext(&mach, init_ext.len());

        let mut native_ext = init_ext.clone();
        let native = run_native_em(&prog, &mut native_ext, 1 << 22);
        assert!(native.halted);
        assert_eq!(pm_ext, native_ext, "external memories must agree");
        assert_eq!(report.instructions, native.instructions);
        (native.transfers, mach.snapshot().total_work())
    }

    #[test]
    fn block_sum_matches_native() {
        let (nb, m, b) = (8usize, 64usize, 8usize);
        let ext: Vec<i64> = (0..((nb + 1) * b) as i64).collect();
        let (t, work) = check(block_sum_built(nb, m, b), ext, FaultConfig::none());
        assert!(t > 0 && work > 0);
    }

    #[test]
    fn block_reverse_matches_native() {
        let (nb, m, b) = (4usize, 32usize, 8usize);
        let ext: Vec<i64> = (0..(2 * nb * b) as i64).collect();
        let _ = check(block_reverse(nb, m, b), ext, FaultConfig::none());
    }

    #[test]
    fn block_sum_matches_native_under_faults() {
        // f <= B/(cM) = 8/(2*64) = 1/16; use 0.01.
        for seed in 0..3 {
            let (nb, m, b) = (8usize, 64usize, 8usize);
            let ext: Vec<i64> = (0..((nb + 1) * b) as i64).collect();
            let _ = check(
                block_sum_built(nb, m, b),
                ext,
                FaultConfig::soft(0.01, seed),
            );
        }
    }

    #[test]
    fn total_work_scales_linearly_with_t() {
        let (m, b) = (64usize, 8usize);
        let run = |nb: usize| {
            let ext: Vec<i64> = vec![1; (nb + 1) * b];
            check(block_sum_built(nb, m, b), ext, FaultConfig::none())
        };
        let (t1, w1) = run(16);
        let (t2, w2) = run(32);
        let cost_ratio = (w2 as f64 / t2 as f64) / (w1 as f64 / t1 as f64);
        assert!(
            (0.5..2.0).contains(&cost_ratio),
            "per-transfer cost should be stable: {cost_ratio}"
        );
    }
}
