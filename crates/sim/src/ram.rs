//! A small RAM virtual machine.
//!
//! Theorem 3.2 quantifies over "any RAM computation"; this module provides
//! a concrete one to quantify over: a classic random-access machine with
//! eight registers, a word-addressed memory, and a minimal integer ISA.
//! [`run_native`] executes a program directly (the baseline `t`);
//! `ram_pm` simulates the same program on the PM model with faults
//! (the theorem's `O(t)` expected total work).

use ppm_pm::Word;

/// Number of general-purpose registers.
pub const NREGS: usize = 8;

/// A register index (0..[`NREGS`]).
pub type Reg = usize;

/// One RAM instruction. `pc`-relative control flow uses absolute targets
/// for simplicity (programs are machine-generated).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instr {
    /// `r[d] = imm`
    LoadImm(Reg, i64),
    /// `r[d] = r[s]`
    Mov(Reg, Reg),
    /// `r[d] = r[a] + r[b]`
    Add(Reg, Reg, Reg),
    /// `r[d] = r[a] - r[b]`
    Sub(Reg, Reg, Reg),
    /// `r[d] = r[a] * r[b]`
    Mul(Reg, Reg, Reg),
    /// `r[d] = mem[r[a]]`
    Load(Reg, Reg),
    /// `mem[r[a]] = r[s]`
    Store(Reg, Reg),
    /// `pc = target`
    Jmp(usize),
    /// `if r[c] == 0 { pc = target }`
    Jz(Reg, usize),
    /// `if r[c] != 0 { pc = target }`
    Jnz(Reg, usize),
    /// `if r[a] < r[b] { pc = target }`
    Jlt(Reg, Reg, usize),
    /// Stop.
    Halt,
}

/// A RAM program: a fixed instruction sequence.
#[derive(Debug, Clone, Default)]
pub struct RamProgram {
    /// The instructions; `pc` starts at 0.
    pub instrs: Vec<Instr>,
}

impl RamProgram {
    /// Creates a program from instructions.
    pub fn new(instrs: Vec<Instr>) -> Self {
        RamProgram { instrs }
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }
}

/// Machine state after a native run.
#[derive(Debug, Clone)]
pub struct RamResult {
    /// RAM time steps executed (the `t` of Theorem 3.2).
    pub steps: u64,
    /// Final register file.
    pub regs: [i64; NREGS],
    /// Whether the program halted (vs. hit the step limit).
    pub halted: bool,
}

/// Memory access port used by [`step`]: the native executor backs it with
/// a slice, the PM simulation with costed persistent accesses (capturing
/// any fault for the caller to re-raise).
pub trait MemPort {
    /// Reads simulated word `a`.
    fn load(&mut self, a: usize) -> i64;
    /// Writes simulated word `a`.
    fn store(&mut self, a: usize, v: i64);
}

/// A [`MemPort`] over a plain slice (the native executor's memory).
pub struct SliceMem<'a>(pub &'a mut [i64]);

impl MemPort for SliceMem<'_> {
    fn load(&mut self, a: usize) -> i64 {
        self.0[a]
    }
    fn store(&mut self, a: usize, v: i64) {
        self.0[a] = v;
    }
}

/// Executes one instruction against registers, memory and pc. Returns
/// `false` on `Halt`. Shared by the native executor and the PM simulation
/// so their semantics cannot drift.
pub fn step(instr: Instr, regs: &mut [i64; NREGS], pc: &mut usize, mem: &mut impl MemPort) -> bool {
    let mut next = *pc + 1;
    match instr {
        Instr::LoadImm(d, v) => regs[d] = v,
        Instr::Mov(d, s) => regs[d] = regs[s],
        Instr::Add(d, a, b) => regs[d] = regs[a].wrapping_add(regs[b]),
        Instr::Sub(d, a, b) => regs[d] = regs[a].wrapping_sub(regs[b]),
        Instr::Mul(d, a, b) => regs[d] = regs[a].wrapping_mul(regs[b]),
        Instr::Load(d, a) => regs[d] = mem.load(regs[a] as usize),
        Instr::Store(s, a) => mem.store(regs[a] as usize, regs[s]),
        Instr::Jmp(t) => next = t,
        Instr::Jz(c, t) => {
            if regs[c] == 0 {
                next = t;
            }
        }
        Instr::Jnz(c, t) => {
            if regs[c] != 0 {
                next = t;
            }
        }
        Instr::Jlt(a, b, t) => {
            if regs[a] < regs[b] {
                next = t;
            }
        }
        Instr::Halt => return false,
    }
    *pc = next;
    true
}

/// Runs a program natively against `mem`, up to `max_steps`.
pub fn run_native(prog: &RamProgram, mem: &mut [i64], max_steps: u64) -> RamResult {
    let mut regs = [0i64; NREGS];
    let mut pc = 0usize;
    let mut steps = 0u64;
    let mut halted = false;
    while steps < max_steps {
        let Some(&instr) = prog.instrs.get(pc) else {
            halted = true;
            break;
        };
        let cont = step(instr, &mut regs, &mut pc, &mut SliceMem(mem));
        steps += 1;
        if !cont {
            halted = true;
            break;
        }
    }
    RamResult {
        steps,
        regs,
        halted,
    }
}

/// Converts a signed simulated word to a persistent-memory word.
pub fn to_word(v: i64) -> Word {
    v as Word
}

/// Converts a persistent-memory word back to a signed simulated word.
pub fn from_word(w: Word) -> i64 {
    w as i64
}

/// Sample programs used by tests, experiments, and benches.
pub mod programs {
    use super::*;

    /// Sums `mem[0..n]` into `r0` and stores the result at `mem[n]`.
    /// Registers: r0 acc, r1 index, r2 limit, r3 scratch, r4 one.
    pub fn sum_array(n: usize) -> RamProgram {
        RamProgram::new(vec![
            Instr::LoadImm(0, 0),        // 0: acc = 0
            Instr::LoadImm(1, 0),        // 1: i = 0
            Instr::LoadImm(2, n as i64), // 2: limit = n
            Instr::LoadImm(4, 1),        // 3: one = 1
            // loop:
            Instr::Jlt(1, 2, 6), // 4: if i < n goto body
            Instr::Jmp(10),      // 5: goto end
            Instr::Load(3, 1),   // 6: scratch = mem[i]
            Instr::Add(0, 0, 3), // 7: acc += scratch
            Instr::Add(1, 1, 4), // 8: i += 1
            Instr::Jmp(4),       // 9: goto loop
            // end:
            Instr::Store(0, 2), // 10: mem[n] = acc
            Instr::Halt,        // 11
        ])
    }

    /// Iterative Fibonacci: computes F(k) into `mem[0]`.
    pub fn fib(k: u64) -> RamProgram {
        RamProgram::new(vec![
            Instr::LoadImm(0, 0),        // 0: a = 0
            Instr::LoadImm(1, 1),        // 1: b = 1
            Instr::LoadImm(2, k as i64), // 2: counter
            Instr::LoadImm(4, 1),        // 3: one
            Instr::LoadImm(5, 0),        // 4: addr 0
            // loop:
            Instr::Jz(2, 11),    // 5: while counter != 0
            Instr::Add(3, 0, 1), // 6: t = a + b
            Instr::Mov(0, 1),    // 7: a = b
            Instr::Mov(1, 3),    // 8: b = t
            Instr::Sub(2, 2, 4), // 9: counter -= 1
            Instr::Jmp(5),       // 10
            Instr::Store(0, 5),  // 11: mem[0] = a
            Instr::Halt,         // 12
        ])
    }

    /// In-place bubble sort of `mem[0..n]` — a Load/Store-heavy program
    /// that stresses the simulated-memory path of the PM simulation.
    /// Registers: r1 i, r2 j, r3 n-1, r4 one, r5 a, r6 b, r7 addr.
    pub fn bubble_sort(n: usize) -> RamProgram {
        let mut p = Vec::new();
        // for i in 0..n-1 { for j in 0..n-1-i { if mem[j] > mem[j+1] swap } }
        p.push(Instr::LoadImm(1, 0)); // 0: i = 0
        p.push(Instr::LoadImm(3, n as i64 - 1)); // 1: n-1
        p.push(Instr::LoadImm(4, 1)); // 2: one
        let outer = p.len(); // 3
        p.push(Instr::Jlt(1, 3, outer + 2)); // if i < n-1 → inner init
        p.push(Instr::Jmp(usize::MAX)); // → end (patched)
        p.push(Instr::LoadImm(2, 0)); // j = 0
        let inner = p.len(); // 6
        p.push(Instr::Sub(0, 3, 1)); // r0 = n-1-i
        p.push(Instr::Jlt(2, 0, inner + 3)); // if j < n-1-i → body
        p.push(Instr::Jmp(usize::MAX)); // → advance i (patched)
        let body = p.len();
        assert_eq!(body, inner + 3);
        p.push(Instr::Load(5, 2)); // body+0: a = mem[j]
        p.push(Instr::Add(7, 2, 4)); // body+1: addr = j+1
        p.push(Instr::Load(6, 7)); // body+2: b = mem[j+1]
        p.push(Instr::Jlt(6, 5, body + 5)); // body+3: if b < a → swap
        p.push(Instr::Jmp(body + 7)); // body+4: → next j
        assert_eq!(p.len(), body + 5);
        p.push(Instr::Store(6, 2)); // body+5: mem[j] = b
        p.push(Instr::Store(5, 7)); // body+6: mem[j+1] = a
        assert_eq!(p.len(), body + 7);
        p.push(Instr::Add(2, 2, 4)); // j += 1
        p.push(Instr::Jmp(inner));
        let advance = p.len();
        p.push(Instr::Add(1, 1, 4)); // i += 1
        p.push(Instr::Jmp(outer));
        let end = p.len();
        p.push(Instr::Halt);
        p[outer + 1] = Instr::Jmp(end);
        p[inner + 2] = Instr::Jmp(advance);
        RamProgram::new(p)
    }

    /// Writes `value` into `mem[0..n]`.
    pub fn memset(n: usize, value: i64) -> RamProgram {
        RamProgram::new(vec![
            Instr::LoadImm(0, value),    // 0: v
            Instr::LoadImm(1, 0),        // 1: i
            Instr::LoadImm(2, n as i64), // 2: n
            Instr::LoadImm(4, 1),        // 3: one
            Instr::Jlt(1, 2, 6),         // 4
            Instr::Halt,                 // 5
            Instr::Store(0, 1),          // 6: mem[i] = v
            Instr::Add(1, 1, 4),         // 7: i += 1
            Instr::Jmp(4),               // 8
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::programs::*;
    use super::*;

    #[test]
    fn sum_array_sums() {
        let n = 100;
        let mut mem: Vec<i64> = (0..n as i64).collect();
        mem.push(0);
        let res = run_native(&sum_array(n), &mut mem, 1_000_000);
        assert!(res.halted);
        assert_eq!(mem[n], (0..n as i64).sum::<i64>());
        assert_eq!(res.regs[0], mem[n]);
    }

    #[test]
    fn fib_computes_fibonacci() {
        let mut mem = vec![0i64; 4];
        let res = run_native(&fib(10), &mut mem, 10_000);
        assert!(res.halted);
        assert_eq!(mem[0], 55);
    }

    #[test]
    fn memset_fills() {
        let mut mem = vec![0i64; 32];
        run_native(&memset(32, 7), &mut mem, 10_000);
        assert!(mem.iter().all(|&v| v == 7));
    }

    #[test]
    fn bubble_sort_sorts() {
        let mut mem: Vec<i64> = vec![5, 3, 8, 1, 9, 2, 7, 4, 6, 0];
        let res = run_native(&bubble_sort(10), &mut mem, 1 << 20);
        assert!(res.halted);
        assert_eq!(mem, (0..10).collect::<Vec<i64>>());
    }

    #[test]
    fn step_counts_are_linear_in_n() {
        let mut m1 = vec![0i64; 101];
        let mut m2 = vec![0i64; 201];
        let t1 = run_native(&sum_array(100), &mut m1, 1 << 20).steps;
        let t2 = run_native(&sum_array(200), &mut m2, 1 << 20).steps;
        let ratio = t2 as f64 / t1 as f64;
        assert!((1.8..2.2).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn step_limit_stops_runaway_programs() {
        let spin = RamProgram::new(vec![Instr::Jmp(0)]);
        let mut mem = vec![0i64; 1];
        let res = run_native(&spin, &mut mem, 1000);
        assert!(!res.halted);
        assert_eq!(res.steps, 1000);
    }

    #[test]
    fn word_conversion_round_trips() {
        for v in [0i64, -1, i64::MIN, i64::MAX, 42] {
            assert_eq!(from_word(to_word(v)), v);
        }
    }
}
