//! The ideal-cache model: trace-driven executor.
//!
//! Theorem 3.4 simulates "any (M,B) ideal cache computation". An
//! ideal-cache computation is fully characterized by its word-access
//! trace, so the substrate here is a family of deterministic
//! [`AccessPattern`]s (the "program") plus an executor that counts cache
//! misses under an LRU replacement policy.
//!
//! The paper's ideal cache uses *optimal* replacement; following the
//! standard resource-augmentation result (Sleator–Tarjan: LRU with twice
//! the capacity is 2-competitive with OPT), we use LRU — the theorem's
//! `O(t)` shape is preserved up to the constant, as recorded in DESIGN.md.

use std::collections::HashMap;

use ppm_pm::Word;

/// A deterministic word-access trace generator.
#[derive(Debug, Clone)]
pub enum AccessPattern {
    /// Sequential read scan of `0..n`, then a write pass storing a
    /// deterministic value at every word.
    SeqScan {
        /// Words scanned.
        n: usize,
    },
    /// Repeated strided reads/writes over a range (cache-unfriendly for
    /// strides ≥ B).
    Strided {
        /// Accesses issued.
        n: usize,
        /// Address stride.
        stride: usize,
        /// Address range (addresses wrap modulo this).
        range: usize,
    },
    /// Uniform random reads and writes over a range.
    Random {
        /// Accesses issued.
        n: usize,
        /// Address range.
        range: usize,
        /// Stream seed.
        seed: u64,
    },
}

pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl AccessPattern {
    /// Number of accesses in the trace.
    pub fn len(&self) -> usize {
        match self {
            AccessPattern::SeqScan { n } => 2 * n,
            AccessPattern::Strided { n, .. } => *n,
            AccessPattern::Random { n, .. } => *n,
        }
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `i`-th access: `(address, is_write, value_if_write)`.
    /// Deterministic — re-running a capsule replays identical accesses.
    pub fn access(&self, i: usize) -> (usize, bool, Word) {
        match self {
            AccessPattern::SeqScan { n } => {
                if i < *n {
                    (i, false, 0)
                } else {
                    let j = i - n;
                    (j, true, splitmix64(j as u64))
                }
            }
            AccessPattern::Strided {
                n: _,
                stride,
                range,
            } => {
                let addr = (i * stride) % range;
                let write = i % 3 == 2;
                (addr, write, splitmix64(i as u64))
            }
            AccessPattern::Random { n: _, range, seed } => {
                let r = splitmix64(seed ^ (i as u64));
                let addr = (r >> 8) as usize % range;
                let write = r & 1 == 1;
                (addr, write, splitmix64(r))
            }
        }
    }

    /// The size of the address space the pattern touches.
    pub fn address_range(&self) -> usize {
        match self {
            AccessPattern::SeqScan { n } => *n,
            AccessPattern::Strided { range, .. } => *range,
            AccessPattern::Random { range, .. } => *range,
        }
    }
}

/// Result of an ideal-cache (LRU) run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheResult {
    /// Accesses issued.
    pub accesses: u64,
    /// Cache misses — the `t` of Theorem 3.4.
    pub misses: u64,
    /// Dirty evictions + final flush writes.
    pub writebacks: u64,
}

/// An LRU cache simulator over blocks, with dirty tracking. Eviction scan
/// is O(resident) — fine for the model sizes used in experiments.
#[derive(Debug)]
pub struct LruCache {
    capacity_blocks: usize,
    resident: HashMap<usize, (u64, bool)>, // block -> (last_use, dirty)
    clock: u64,
}

impl LruCache {
    /// Creates an empty cache of `capacity_blocks` blocks.
    pub fn new(capacity_blocks: usize) -> Self {
        assert!(capacity_blocks > 0);
        LruCache {
            capacity_blocks,
            resident: HashMap::new(),
            clock: 0,
        }
    }

    /// Touches `block`; returns `(miss, evicted_dirty_block)`.
    pub fn touch(&mut self, block: usize, write: bool) -> (bool, Option<usize>) {
        self.clock += 1;
        if let Some((lu, dirty)) = self.resident.get_mut(&block) {
            *lu = self.clock;
            *dirty |= write;
            return (false, None);
        }
        let mut evicted = None;
        if self.resident.len() == self.capacity_blocks {
            let (&victim, &(_, dirty)) = self
                .resident
                .iter()
                .min_by_key(|(_, (lu, _))| *lu)
                .expect("cache non-empty");
            self.resident.remove(&victim);
            if dirty {
                evicted = Some(victim);
            }
        }
        self.resident.insert(block, (self.clock, write));
        (true, evicted)
    }

    /// Blocks currently resident and dirty, sorted.
    pub fn dirty_blocks(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self
            .resident
            .iter()
            .filter(|(_, (_, d))| *d)
            .map(|(b, _)| *b)
            .collect();
        v.sort_unstable();
        v
    }
}

/// Runs a pattern natively under an LRU cache of `m` words with blocks of
/// `b` words, applying writes to `mem`. Returns the miss statistics.
pub fn run_native_cache(
    pattern: &AccessPattern,
    m: usize,
    b: usize,
    mem: &mut [Word],
) -> CacheResult {
    let mut cache = LruCache::new((m / b).max(1));
    let mut res = CacheResult {
        accesses: 0,
        misses: 0,
        writebacks: 0,
    };
    for i in 0..pattern.len() {
        let (addr, write, value) = pattern.access(i);
        let (miss, evicted) = cache.touch(addr / b, write);
        res.accesses += 1;
        if miss {
            res.misses += 1;
        }
        if evicted.is_some() {
            res.writebacks += 1;
        }
        if write {
            mem[addr] = value;
        }
    }
    res.writebacks += cache.dirty_blocks().len() as u64;
    res
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seq_scan_misses_once_per_block_per_pass() {
        let n = 256;
        let (m, b) = (64, 8);
        let mut mem = vec![0u64; n];
        let res = run_native_cache(&AccessPattern::SeqScan { n }, m, b, &mut mem);
        // Read pass: n/B misses; write pass re-scans: another n/B (the
        // cache only holds M/B = 8 of the 32 blocks).
        assert_eq!(res.misses, 2 * (n / b) as u64);
        assert_eq!(res.accesses, 2 * n as u64);
    }

    #[test]
    fn small_working_set_fits_in_cache() {
        let (m, b) = (64, 8);
        let mut mem = vec![0u64; 32];
        let res = run_native_cache(
            &AccessPattern::Strided {
                n: 1000,
                stride: 1,
                range: 32,
            },
            m,
            b,
            &mut mem,
        );
        // 32 words = 4 blocks fit in an 8-block cache: only cold misses.
        assert_eq!(res.misses, 4);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        assert_eq!(c.touch(1, false), (true, None));
        assert_eq!(c.touch(2, true), (true, None));
        assert_eq!(c.touch(1, false), (false, None)); // 1 freshened
                                                      // 3 evicts 2 (LRU), which is dirty.
        assert_eq!(c.touch(3, false), (true, Some(2)));
    }

    #[test]
    fn writes_land_in_memory() {
        let n = 16;
        let mut mem = vec![0u64; n];
        run_native_cache(&AccessPattern::SeqScan { n }, 32, 4, &mut mem);
        for (j, v) in mem.iter().enumerate() {
            assert_eq!(*v, splitmix64(j as u64));
        }
    }

    #[test]
    fn patterns_are_deterministic() {
        let p = AccessPattern::Random {
            n: 100,
            range: 64,
            seed: 9,
        };
        let a: Vec<_> = (0..p.len()).map(|i| p.access(i)).collect();
        let b: Vec<_> = (0..p.len()).map(|i| p.access(i)).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn random_pattern_stays_in_range() {
        let p = AccessPattern::Random {
            n: 1000,
            range: 37,
            seed: 5,
        };
        for i in 0..p.len() {
            let (addr, _, _) = p.access(i);
            assert!(addr < 37);
        }
    }
}
