//! Theorem 3.4: simulating the ideal-cache model on the PM model.
//!
//! "During each simulation capsule a simulated cache of size 2M/B blocks is
//! maintained in the ephemeral memory. The capsule starts by loading the
//! registers, and with an empty cache. During simulation, entries are never
//! evicted, but instead the simulation stops when the cache runs out of
//! space ... The capsule then writes out all dirty cache lines (together
//! with the corresponding persistent memory address for each cache line) to
//! a buffer in persistent memory, saves the registers and installs the
//! commit capsule. The commit capsule reads in the buffer, writes out all
//! the dirty cache lines to their correct locations, and installs the next
//! simulation capsule."
//!
//! The "registers" here are just the trace position, carried in the
//! capsule closures. Each round's capsule work is O(M/B); each round
//! advances the trace past at least M/B ideal-cache misses, giving the
//! theorem's O(t) expected total work.

use std::collections::HashMap;
use std::sync::Arc;

use ppm_core::{capsule, run_chain, Cont, InstallCtx, Machine, Next};
use ppm_pm::{Fault, Region, Word};

use crate::cache::AccessPattern;

/// Persistent layout for the cache simulation.
#[derive(Debug, Clone, Copy)]
pub struct CachePmLayout {
    /// The simulated address space.
    pub data: Region,
    /// Dirty-line buffer: block numbers (one word per entry).
    buf_meta: Region,
    /// Dirty-line buffer: block contents (B words per entry).
    buf_data: Region,
    /// Simulated cache capacity in blocks (2M/B).
    cap_blocks: usize,
    b: usize,
}

impl CachePmLayout {
    /// Carves the layout: a simulated address space of `data_words`, and a
    /// buffer sized for a 2M/B-block capsule cache. The machine's block
    /// size is the simulated `B`.
    pub fn new(machine: &Machine, data_words: usize, m: usize) -> Self {
        let b = machine.cfg().block_size;
        let cap_blocks = (2 * m / b).max(1);
        CachePmLayout {
            data: machine.alloc_region(data_words),
            buf_meta: machine.alloc_region(cap_blocks),
            buf_data: machine.alloc_region(cap_blocks * b),
            cap_blocks,
            b,
        }
    }

    /// Reads the simulated memory back (oracle).
    pub fn read_memory(&self, machine: &Machine, len: usize) -> Vec<Word> {
        (0..len)
            .map(|i| machine.mem().load(self.data.at(i)))
            .collect()
    }
}

/// One simulation round: replay accesses from `pos` with an empty
/// no-evict cache; stop at capacity or end of trace; spill dirty lines.
fn sim_capsule(pattern: &Arc<AccessPattern>, layout: CachePmLayout, pos: usize) -> Cont {
    let pattern = pattern.clone();
    capsule("cache-pm/simulate", move |ctx| {
        let b = layout.b;
        let len = pattern.len();
        // block -> line contents; insertion order preserved separately for
        // deterministic buffer layout.
        let mut lines: HashMap<usize, Vec<Word>> = HashMap::new();
        let mut order: Vec<usize> = Vec::new();
        let mut dirty: HashMap<usize, bool> = HashMap::new();
        let mut i = pos;
        while i < len {
            let (addr, write, value) = pattern.access(i);
            let blk = addr / b;
            if !lines.contains_key(&blk) {
                if lines.len() == layout.cap_blocks {
                    break; // cache full: close the capsule
                }
                let mut buf = vec![0u64; b];
                ctx.read_block_into(layout.data.start + blk * b, &mut buf)?;
                lines.insert(blk, buf);
                order.push(blk);
                dirty.insert(blk, false);
            }
            if write {
                lines.get_mut(&blk).expect("resident")[addr % b] = value;
                dirty.insert(blk, true);
            }
            i += 1;
        }
        // Spill dirty lines (with their block numbers) to the buffer.
        let mut n_dirty = 0usize;
        for blk in &order {
            if dirty[blk] {
                ctx.pwrite(layout.buf_meta.at(n_dirty), *blk as Word)?;
                ctx.write_block(layout.buf_data.start + n_dirty * b, &lines[blk])?;
                n_dirty += 1;
            }
        }
        Ok(Next::Jump(commit_capsule(&pattern, layout, i, n_dirty)))
    })
}

/// The commit round: apply the spilled dirty lines to the simulated
/// address space, then install the next simulation round (or finish).
fn commit_capsule(
    pattern: &Arc<AccessPattern>,
    layout: CachePmLayout,
    next_pos: usize,
    n_dirty: usize,
) -> Cont {
    let pattern = pattern.clone();
    capsule("cache-pm/commit", move |ctx| {
        let b = layout.b;
        for k in 0..n_dirty {
            let blk = ctx.pread(layout.buf_meta.at(k))? as usize;
            let mut buf = vec![0u64; b];
            ctx.read_block_into(layout.buf_data.start + k * b, &mut buf)?;
            ctx.write_block(layout.data.start + blk * b, &buf)?;
        }
        if next_pos >= pattern.len() {
            Ok(Next::End)
        } else {
            Ok(Next::Jump(sim_capsule(&pattern, layout, next_pos)))
        }
    })
}

/// Simulates the trace on the PM model (processor 0), with the machine's
/// fault configuration active. `Err` only on a hard fault.
pub fn simulate_cache_on_pm(
    machine: &Machine,
    pattern: &AccessPattern,
    layout: CachePmLayout,
) -> Result<(), Fault> {
    let pattern = Arc::new(pattern.clone());
    let first = sim_capsule(&pattern, layout, 0);
    let mut ctx = machine.ctx(0);
    let mut install = InstallCtx::new(machine.proc_meta(0));
    run_chain(&mut ctx, machine.arena(), &mut install, first)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::{run_native_cache, AccessPattern};
    use ppm_pm::{FaultConfig, PmConfig};

    fn machine(f: FaultConfig, b: usize, m_eph: usize) -> Machine {
        Machine::new(
            PmConfig::parallel(1, 1 << 20)
                .with_block_size(b)
                .with_ephemeral_words(m_eph)
                .with_fault(f),
        )
    }

    fn check_pattern(pattern: AccessPattern, m: usize, b: usize, f: FaultConfig) {
        let range = pattern.address_range();
        let mach = machine(f, b, m);
        let layout = CachePmLayout::new(&mach, range.next_multiple_of(b), m);
        simulate_cache_on_pm(&mach, &pattern, layout).unwrap();
        let pm_mem = layout.read_memory(&mach, range);

        let mut native_mem = vec![0u64; range];
        let native = run_native_cache(&pattern, m, b, &mut native_mem);
        assert_eq!(pm_mem, native_mem, "final memories must agree");

        // Theorem 3.4's shape: PM total work within a constant factor of
        // native misses (each round costs O(M/B) and covers >= M/B misses).
        let work = mach.snapshot().total_work();
        assert!(
            work <= 8 * native.misses.max(1) + 4 * (2 * m / b) as u64,
            "work {work} vs misses {} out of O(t) shape",
            native.misses
        );
    }

    #[test]
    fn seq_scan_matches_native() {
        check_pattern(
            AccessPattern::SeqScan { n: 256 },
            64,
            8,
            FaultConfig::none(),
        );
    }

    #[test]
    fn random_matches_native() {
        check_pattern(
            AccessPattern::Random {
                n: 500,
                range: 128,
                seed: 3,
            },
            64,
            8,
            FaultConfig::none(),
        );
    }

    #[test]
    fn strided_matches_native_under_faults() {
        // f <= B/(cM): 8/(2*64) = 0.0625; use something smaller.
        check_pattern(
            AccessPattern::Strided {
                n: 400,
                stride: 7,
                range: 128,
            },
            64,
            8,
            FaultConfig::soft(0.01, 42),
        );
    }

    #[test]
    fn seq_scan_matches_native_under_faults() {
        for seed in 0..3 {
            check_pattern(
                AccessPattern::SeqScan { n: 128 },
                32,
                8,
                FaultConfig::soft(0.02, seed),
            );
        }
    }

    #[test]
    fn capsule_work_is_bounded_by_o_m_over_b() {
        let (m, b) = (64usize, 8usize);
        let mach = machine(FaultConfig::none(), b, m);
        let pattern = AccessPattern::Random {
            n: 2000,
            range: 512,
            seed: 1,
        };
        let layout = CachePmLayout::new(&mach, 512, m);
        simulate_cache_on_pm(&mach, &pattern, layout).unwrap();
        let c = mach.snapshot().max_capsule_work;
        // Reads <= 2M/B, spills <= 2 * 2M/B, commit <= 2 * 2M/B + installs.
        let bound = (6 * 2 * m / b + 8) as u64;
        assert!(c <= bound, "capsule work {c} exceeds O(M/B) bound {bound}");
    }
}
