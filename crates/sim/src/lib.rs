//! # `ppm-sim` — Theorems 3.2–3.4 of the Parallel-PM paper
//!
//! Each theorem says "any X computation can be simulated on the PM model
//! with O(t) expected total work". To reproduce them we need concrete X's:
//!
//! * [`ram`] — a RAM virtual machine (ISA + native executor), and
//!   [`ram_pm`] — its PM simulation with two register copies and one
//!   instruction per capsule (Theorem 3.2).
//! * [`em`] — an `(M, B)` external-memory machine, and [`em_pm`] — its PM
//!   simulation with simulation/commit capsule rounds and a buffered write
//!   set (Theorem 3.3).
//! * [`cache`] — an ideal-cache model executor (LRU approximation of OPT),
//!   and [`cache_pm`] — its PM simulation with a 2M/B no-evict capsule
//!   cache (Theorem 3.4).
//!
//! Native runs give the baseline `t`; PM runs under the machine's fault
//! configuration give the expected total work the theorems bound.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cache;
pub mod cache_pm;
pub mod em;
pub mod em_pm;
pub mod ram;
pub mod ram_pm;

pub use cache::{run_native_cache, AccessPattern, CacheResult, LruCache};
pub use cache_pm::{simulate_cache_on_pm, CachePmLayout};
pub use em::{run_native_em, EmInstr, EmProgram, EmResult};
pub use em_pm::{simulate_em_on_pm, EmPmLayout, EmPmReport};
pub use ram::{run_native, Instr, RamProgram, RamResult, NREGS};
pub use ram_pm::{run_both, simulate_ram_on_pm, RamPmLayout, RamPmReport};
