//! An `(M, B)` external-memory machine.
//!
//! Theorem 3.3 quantifies over "any (M,B) external memory computation";
//! this is a concrete one: a machine with an ephemeral memory of `M` words
//! on which all computation happens, an external memory of blocks of `B`
//! words, and two transfer instructions. The native cost `t` is the number
//! of block transfers — exactly the external-memory model of
//! Aggarwal–Vitter, which the PM model generalizes.

/// One EM instruction. Compute instructions address the ephemeral memory
/// (`e*` are ephemeral word indices); transfers move whole blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EmInstr {
    /// `eph[d] = imm`
    Set(usize, i64),
    /// `eph[d] = eph[a] + eph[b]`
    Add(usize, usize, usize),
    /// `eph[d] = eph[a] - eph[b]`
    Sub(usize, usize, usize),
    /// `eph[d] = eph[a] * eph[b]`
    Mul(usize, usize, usize),
    /// `eph[d] = eph[s]`
    Copy(usize, usize),
    /// `eph[d] = eph[eph[a]]` (indirect read, for in-ephemeral indexing)
    LoadI(usize, usize),
    /// `eph[eph[a]] = eph[s]` (indirect write)
    StoreI(usize, usize),
    /// Transfer external block number `eph[blk]` into `eph[dst..dst+B]`.
    /// Costs one unit.
    ReadBlock {
        /// Ephemeral index holding the external block number.
        blk: usize,
        /// Ephemeral destination offset.
        dst: usize,
    },
    /// Transfer `eph[src..src+B]` to external block number `eph[blk]`.
    /// Costs one unit.
    WriteBlock {
        /// Ephemeral index holding the external block number.
        blk: usize,
        /// Ephemeral source offset.
        src: usize,
    },
    /// `pc = target`
    Jmp(usize),
    /// `if eph[c] == 0 { pc = target }`
    Jz(usize, usize),
    /// `if eph[a] < eph[b] { pc = target }`
    Jlt(usize, usize, usize),
    /// Stop.
    Halt,
}

/// An EM program with its machine parameters.
#[derive(Debug, Clone)]
pub struct EmProgram {
    /// Instructions; `pc` starts at 0.
    pub instrs: Vec<EmInstr>,
    /// Ephemeral memory size `M` in words.
    pub m: usize,
    /// Block size `B` in words.
    pub b: usize,
}

/// Result of a native EM run.
#[derive(Debug, Clone)]
pub struct EmResult {
    /// Block transfers performed (the `t` of Theorem 3.3).
    pub transfers: u64,
    /// Instructions executed (zero-cost ones included).
    pub instructions: u64,
    /// Whether the program halted.
    pub halted: bool,
}

/// External-memory port used by [`em_step`]: the native executor backs it
/// with a slice of blocks; the PM simulation backs reads with a
/// write-buffer-then-memory lookup and writes with buffering.
pub trait BlockPort {
    /// Reads external block `blk` into `buf` (`buf.len() == B`).
    fn read_block(&mut self, blk: usize, buf: &mut [i64]);
    /// Writes `data` (`len == B`) to external block `blk`.
    fn write_block(&mut self, blk: usize, data: &[i64]);
}

/// A [`BlockPort`] over a flat slice of words grouped in blocks of `B`.
pub struct SliceBlocks<'a> {
    /// The external memory.
    pub ext: &'a mut [i64],
    /// Block size.
    pub b: usize,
}

impl BlockPort for SliceBlocks<'_> {
    fn read_block(&mut self, blk: usize, buf: &mut [i64]) {
        buf.copy_from_slice(&self.ext[blk * self.b..(blk + 1) * self.b]);
    }
    fn write_block(&mut self, blk: usize, data: &[i64]) {
        self.ext[blk * self.b..(blk + 1) * self.b].copy_from_slice(data);
    }
}

/// Applies one instruction to `(eph, pc)`, transferring blocks through
/// `port`. Shared between the native executor and the PM simulation.
/// Returns `false` on `Halt`.
pub fn em_step(
    instr: EmInstr,
    eph: &mut [i64],
    pc: &mut usize,
    b: usize,
    port: &mut impl BlockPort,
) -> bool {
    let mut next = *pc + 1;
    match instr {
        EmInstr::Set(d, v) => eph[d] = v,
        EmInstr::Add(d, x, y) => eph[d] = eph[x].wrapping_add(eph[y]),
        EmInstr::Sub(d, x, y) => eph[d] = eph[x].wrapping_sub(eph[y]),
        EmInstr::Mul(d, x, y) => eph[d] = eph[x].wrapping_mul(eph[y]),
        EmInstr::Copy(d, s) => eph[d] = eph[s],
        EmInstr::LoadI(d, a) => eph[d] = eph[eph[a] as usize],
        EmInstr::StoreI(a, s) => {
            let idx = eph[a] as usize;
            eph[idx] = eph[s];
        }
        EmInstr::ReadBlock { blk, dst } => {
            let block = eph[blk] as usize;
            let mut buf = vec![0i64; b];
            port.read_block(block, &mut buf);
            eph[dst..dst + b].copy_from_slice(&buf);
        }
        EmInstr::WriteBlock { blk, src } => {
            let block = eph[blk] as usize;
            port.write_block(block, &eph[src..src + b]);
        }
        EmInstr::Jmp(t) => next = t,
        EmInstr::Jz(c, t) => {
            if eph[c] == 0 {
                next = t;
            }
        }
        EmInstr::Jlt(x, y, t) => {
            if eph[x] < eph[y] {
                next = t;
            }
        }
        EmInstr::Halt => return false,
    }
    *pc = next;
    true
}

/// Runs an EM program natively against an external memory of blocks.
pub fn run_native_em(prog: &EmProgram, ext: &mut [i64], max_instrs: u64) -> EmResult {
    let mut eph = vec![0i64; prog.m];
    let mut pc = 0usize;
    let mut transfers = 0u64;
    let mut instructions = 0u64;
    let mut halted = false;
    let b = prog.b;
    while instructions < max_instrs {
        let Some(&instr) = prog.instrs.get(pc) else {
            halted = true;
            break;
        };
        if matches!(
            instr,
            EmInstr::ReadBlock { .. } | EmInstr::WriteBlock { .. }
        ) {
            transfers += 1;
        }
        let cont = em_step(instr, &mut eph, &mut pc, b, &mut SliceBlocks { ext, b });
        instructions += 1;
        if !cont {
            halted = true;
            break;
        }
    }
    EmResult {
        transfers,
        instructions,
        halted,
    }
}

/// Sample EM programs.
pub mod programs {
    use super::*;

    /// Builds the block-sum program programmatically (clearer than hand
    /// numbering). Sums `nblocks` blocks, stores the total in word 0 of
    /// block `nblocks`.
    pub fn block_sum_built(nblocks: usize, m: usize, b: usize) -> EmProgram {
        assert!(m >= 8 + 2 * b, "ephemeral memory too small");
        let buf = 8; // block buffer base
                     // cells: 0 acc, 1 blk, 2 limit, 3 one, 4 j, 5 B, 6 addr, 7 val
        let mut i = vec![
            EmInstr::Set(0, 0),
            EmInstr::Set(1, 0),
            EmInstr::Set(2, nblocks as i64),
            EmInstr::Set(3, 1),
            EmInstr::Set(5, b as i64),
        ];
        let outer = i.len(); // 5
        i.push(EmInstr::Jlt(1, 2, outer + 2)); // if blk < limit → body
        i.push(EmInstr::Jmp(usize::MAX)); // → end (patched)
        let body = i.len();
        assert_eq!(body, outer + 2);
        i.push(EmInstr::ReadBlock { blk: 1, dst: buf });
        i.push(EmInstr::Set(4, 0)); // j = 0
        let inner = i.len();
        i.push(EmInstr::Jlt(4, 5, inner + 2)); // if j < B → add
        i.push(EmInstr::Jmp(usize::MAX)); // → after inner (patched)
        let add = i.len();
        assert_eq!(add, inner + 2);
        i.push(EmInstr::Set(6, buf as i64));
        i.push(EmInstr::Add(6, 6, 4)); // addr = buf + j
        i.push(EmInstr::LoadI(7, 6)); // val = eph[addr]
        i.push(EmInstr::Add(0, 0, 7)); // acc += val
        i.push(EmInstr::Add(4, 4, 3)); // j += 1
        i.push(EmInstr::Jmp(inner));
        let after_inner = i.len();
        i.push(EmInstr::Add(1, 1, 3)); // blk += 1
        i.push(EmInstr::Jmp(outer));
        let end = i.len();
        // Store acc into word 0 of block `nblocks`: build the block in the
        // buffer (acc then zeros) and write it out.
        i.push(EmInstr::Set(6, buf as i64));
        i.push(EmInstr::StoreI(6, 0)); // eph[buf] = acc
                                       // zero the rest of the buffer
        for j in 1..b {
            i.push(EmInstr::Set(buf + j, 0));
        }
        i.push(EmInstr::Set(1, nblocks as i64));
        i.push(EmInstr::WriteBlock { blk: 1, src: buf });
        i.push(EmInstr::Halt);
        // Patch jumps.
        i[outer + 1] = EmInstr::Jmp(end);
        i[inner + 1] = EmInstr::Jmp(after_inner);
        EmProgram { m, b, instrs: i }
    }

    /// Copies `nblocks` blocks from the first half of external memory to
    /// the second half in reverse order (block i → block 2·nblocks-1-i).
    pub fn block_reverse(nblocks: usize, m: usize, b: usize) -> EmProgram {
        assert!(m >= 8 + b);
        let buf = 8;
        // cells: 1 src blk, 2 limit, 3 one, 6 dst blk, 7 total-1
        let mut i = vec![
            EmInstr::Set(1, 0),
            EmInstr::Set(2, nblocks as i64),
            EmInstr::Set(3, 1),
            EmInstr::Set(7, 2 * nblocks as i64 - 1),
        ];
        let loop_top = i.len();
        i.push(EmInstr::Jlt(1, 2, loop_top + 2));
        i.push(EmInstr::Jmp(usize::MAX)); // patched → end
        assert_eq!(i.len(), loop_top + 2);
        i.push(EmInstr::ReadBlock { blk: 1, dst: buf });
        i.push(EmInstr::Sub(6, 7, 1)); // dst = total-1 - src
        i.push(EmInstr::WriteBlock { blk: 6, src: buf });
        i.push(EmInstr::Add(1, 1, 3));
        i.push(EmInstr::Jmp(loop_top));
        let end = i.len();
        i.push(EmInstr::Halt);
        i[loop_top + 1] = EmInstr::Jmp(end);
        EmProgram { m, b, instrs: i }
    }
}

#[cfg(test)]
mod tests {
    use super::programs::*;
    use super::*;

    #[test]
    fn block_sum_native() {
        let (nb, m, b) = (8usize, 64usize, 8usize);
        let mut ext: Vec<i64> = (0..(nb as i64 + 1) * b as i64).collect();
        let prog = block_sum_built(nb, m, b);
        let res = run_native_em(&prog, &mut ext, 1 << 20);
        assert!(res.halted);
        let expect: i64 = (0..(nb * b) as i64).sum();
        assert_eq!(ext[nb * b], expect);
        // Transfers: nb reads + 1 write.
        assert_eq!(res.transfers, nb as u64 + 1);
    }

    #[test]
    fn block_reverse_native() {
        let (nb, m, b) = (4usize, 32usize, 4usize);
        let mut ext: Vec<i64> = (0..(2 * nb * b) as i64).collect();
        let orig = ext.clone();
        let res = run_native_em(&block_reverse(nb, m, b), &mut ext, 1 << 20);
        assert!(res.halted);
        for i in 0..nb {
            let dst = 2 * nb - 1 - i;
            assert_eq!(
                &ext[dst * b..(dst + 1) * b],
                &orig[i * b..(i + 1) * b],
                "block {i}"
            );
        }
        assert_eq!(res.transfers, 2 * nb as u64);
    }

    #[test]
    fn transfers_scale_with_data_not_instructions() {
        let (m, b) = (64usize, 8usize);
        let mut e1: Vec<i64> = vec![1; 9 * b];
        let mut e2: Vec<i64> = vec![1; 17 * b];
        let t1 = run_native_em(&block_sum_built(8, m, b), &mut e1, 1 << 20).transfers;
        let t2 = run_native_em(&block_sum_built(16, m, b), &mut e2, 1 << 20).transfers;
        assert_eq!(t1, 9);
        assert_eq!(t2, 17);
    }
}
