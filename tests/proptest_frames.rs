//! Property tests for the persistent capsule-frame encoding: random
//! `(capsule_id, args)` frames encode → flush → reopen → decode
//! bit-exactly through the file-backed `MmapBackend`, and malformed or
//! unregistered frames are rejected with a clean error, never a panic.
#![cfg(unix)]

use ppm::core::{CapsuleRegistry, RehydrateError};
use ppm::pm::backend::{MmapBackend, Superblock};
use ppm::pm::{
    frame_words, read_frame, store_frame, FrameError, PersistentMemory, PmConfig, MAX_FRAME_ARGS,
};
use proptest::prelude::*;

const WORDS: usize = 2048;

// Guarded temp paths (unique per case): removed on drop, so shrinking
// and failing cases clean up too.
fn unique_tmp() -> ppm::pm::TempMachineFile {
    ppm::pm::TempMachineFile::new("proptest-frames")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Frames written by one machine lifetime decode bit-exactly in the
    /// next, straight off the durable file.
    #[test]
    fn frames_encode_flush_reopen_decode_bit_exactly(
        ids in prop::collection::vec(any::<u64>(), 1..12),
        argss in prop::collection::vec(
            prop::collection::vec(any::<u64>(), 0..MAX_FRAME_ARGS), 1..12),
    ) {
        let path = unique_tmp();
        let sb = Superblock::describe(&PmConfig::parallel(1, WORDS), 64);

        // The writing lifetime: pack the frames back to back.
        let mut expect: Vec<(usize, u64, Vec<u64>)> = Vec::new();
        {
            let backend = MmapBackend::create(&path, sb).unwrap();
            let mem = PersistentMemory::with_backend(Box::new(backend), 8);
            let mut addr = 8usize; // skip the null-guard block
            for (id, args) in ids.iter().zip(argss.iter()) {
                if addr + frame_words(args.len()) > WORDS {
                    break;
                }
                store_frame(&mem, addr, *id, args);
                expect.push((addr, *id, args.clone()));
                addr += frame_words(args.len());
            }
            mem.flush().unwrap();
        }
        prop_assert!(!expect.is_empty());

        // The reading lifetime.
        let (backend, _found) = MmapBackend::open(&path).unwrap();
        let mem = PersistentMemory::with_backend(Box::new(backend), 8);
        for (addr, id, args) in &expect {
            let f = read_frame(&mem, *addr).expect("frame must decode after reopen");
            prop_assert_eq!(f.addr, *addr);
            prop_assert_eq!(f.capsule_id, *id);
            prop_assert_eq!(&f.args, args);
        }
        std::fs::remove_file(&path).unwrap();
    }

    /// Arbitrary non-magic words never decode as frames, and a frame
    /// naming an unregistered capsule id is rejected by the registry with
    /// a clean `UnknownCapsule` error — no panics anywhere.
    #[test]
    fn garbage_and_unknown_ids_are_rejected_cleanly(
        word in any::<u64>(),
        id in any::<u64>(),
        args in prop::collection::vec(any::<u64>(), 0..MAX_FRAME_ARGS),
        probe in 0usize..WORDS,
    ) {
        let mem = PersistentMemory::new(WORDS, 8);
        // A lone arbitrary word: only decodes if it really carries the
        // magic and a sane argc (and then only as an empty-or-short frame
        // of zero-filled args, which is well-formed by construction).
        mem.store(probe, word);
        match read_frame(&mem, probe) {
            Ok(f) => prop_assert!(f.args.len() <= MAX_FRAME_ARGS),
            Err(FrameError::NotAFrame { .. })
            | Err(FrameError::OutOfBounds { .. })
            | Err(FrameError::UnknownCapsule { .. }) => {}
        }
        mem.store(probe, 0);

        // A well-formed frame with an unregistered id: the registry must
        // answer with UnknownCapsule, not a panic.
        let registry = CapsuleRegistry::new();
        store_frame(&mem, 8, id, &args);
        match registry.rehydrate(&mem, 8) {
            Err(RehydrateError::UnknownCapsule { capsule_id, .. }) => {
                prop_assert_eq!(capsule_id, id);
            }
            Err(other) => prop_assert!(false, "unexpected error {other}"),
            Ok(_) => prop_assert!(false, "nothing is registered"),
        }
        // Probing every address of a memory full of arbitrary bytes never
        // panics either.
        prop_assert!(registry.rehydrate(&mem, probe as u64).is_err() || probe == 8);
    }
}
