//! Cross-crate integration: the Theorem 3.2–3.4 simulations match native
//! execution and stay within the O(t) expected-work shape across machine
//! geometries and fault rates.

use ppm::core::Machine;
use ppm::pm::{FaultConfig, PmConfig};
use ppm::sim::em::programs::{block_reverse, block_sum_built};
use ppm::sim::ram::programs::{fib, memset, sum_array};
use ppm::sim::{
    run_both, run_native_cache, run_native_em, simulate_cache_on_pm, simulate_em_on_pm,
    AccessPattern, CachePmLayout, EmPmLayout,
};

#[test]
fn t32_ram_simulation_is_exact_and_linear() {
    // Correctness at several fault rates and a work-per-step constant.
    for (f, seed) in [(0.0, 0), (0.005, 1), (0.02, 2)] {
        let machine = Machine::new(PmConfig::parallel(1, 1 << 21).with_fault(if f == 0.0 {
            FaultConfig::none()
        } else {
            FaultConfig::soft(f, seed)
        }));
        let n = 120;
        let mut init: Vec<i64> = (0..n as i64).collect();
        init.push(0);
        let (native, report, pm_mem) = run_both(&machine, &sum_array(n), &init, 1 << 22);
        assert!(native.halted && report.halted, "f={f}");
        assert_eq!(report.steps, native.steps, "f={f}");
        assert_eq!(pm_mem[n], (0..n as i64).sum::<i64>(), "f={f}");
        let per_step = machine.snapshot().total_work() as f64 / native.steps as f64;
        assert!(per_step < 30.0, "f={f}: {per_step} transfers/step not O(1)");
    }
}

#[test]
fn t32_other_programs() {
    type Check = fn(&[i64]) -> bool;
    let cases: Vec<(_, Vec<i64>, Check)> = vec![
        (fib(25), vec![0i64; 4], |m: &[i64]| m[0] == 75025),
        (memset(64, 3), vec![0i64; 64], |m: &[i64]| {
            m.iter().all(|&v| v == 3)
        }),
    ];
    for (prog, init, check) in cases {
        let machine =
            Machine::new(PmConfig::parallel(1, 1 << 21).with_fault(FaultConfig::soft(0.01, 7)));
        let (_, report, pm_mem) = run_both(&machine, &prog, &init, 1 << 22);
        assert!(report.halted);
        assert!(check(&pm_mem));
    }
}

#[test]
fn t33_em_simulation_across_geometries() {
    for (m_sim, b) in [(32usize, 4usize), (64, 8), (128, 16)] {
        let nb = 10;
        let prog = block_sum_built(nb, m_sim, b);
        let ext: Vec<i64> = (0..((nb + 1) * b) as i64).collect();
        let machine = Machine::new(
            PmConfig::parallel(1, 1 << 21)
                .with_block_size(b)
                .with_fault(FaultConfig::soft(0.005, 3)),
        );
        let layout = EmPmLayout::new(&machine, &prog, ext.len());
        layout.load_ext(&machine, &ext);
        let report = simulate_em_on_pm(&machine, &prog, layout, 1 << 22).unwrap();
        assert!(report.halted, "M={m_sim} B={b}");

        let mut native_ext = ext.clone();
        let native = run_native_em(&prog, &mut native_ext, 1 << 22);
        assert_eq!(
            layout.read_ext(&machine, ext.len()),
            native_ext,
            "M={m_sim} B={b}"
        );

        // O(t): per-transfer cost bounded by a constant multiple of M/B
        // round overhead.
        let per_t = machine.snapshot().total_work() as f64 / native.transfers as f64;
        let bound = 8.0 * (m_sim / b) as f64 + 16.0;
        assert!(per_t < bound, "M={m_sim} B={b}: {per_t} >= {bound}");
    }
}

#[test]
fn t33_reverse_program() {
    let (nb, m_sim, b) = (6usize, 64usize, 8usize);
    let prog = block_reverse(nb, m_sim, b);
    let ext: Vec<i64> = (0..(2 * nb * b) as i64).collect();
    let machine = Machine::new(
        PmConfig::parallel(1, 1 << 21)
            .with_block_size(b)
            .with_fault(FaultConfig::soft(0.01, 11)),
    );
    let layout = EmPmLayout::new(&machine, &prog, ext.len());
    layout.load_ext(&machine, &ext);
    let report = simulate_em_on_pm(&machine, &prog, layout, 1 << 22).unwrap();
    assert!(report.halted);
    let mut native_ext = ext.clone();
    run_native_em(&prog, &mut native_ext, 1 << 22);
    assert_eq!(layout.read_ext(&machine, ext.len()), native_ext);
}

#[test]
fn t34_cache_simulation_matches_and_scales_with_misses() {
    for (pattern, m_sim, b) in [
        (AccessPattern::SeqScan { n: 512 }, 64usize, 8usize),
        (
            AccessPattern::Random {
                n: 1500,
                range: 256,
                seed: 4,
            },
            64,
            8,
        ),
        (
            AccessPattern::Strided {
                n: 900,
                stride: 13,
                range: 256,
            },
            128,
            16,
        ),
    ] {
        let range = pattern.address_range();
        let machine = Machine::new(
            PmConfig::parallel(1, 1 << 21)
                .with_block_size(b)
                .with_ephemeral_words(m_sim)
                .with_fault(FaultConfig::soft(0.005, 5)),
        );
        let layout = CachePmLayout::new(&machine, range.next_multiple_of(b), m_sim);
        simulate_cache_on_pm(&machine, &pattern, layout).unwrap();

        let mut native_mem = vec![0u64; range];
        let native = run_native_cache(&pattern, m_sim, b, &mut native_mem);
        assert_eq!(
            layout.read_memory(&machine, range),
            native_mem,
            "pattern {pattern:?}"
        );
        let work = machine.snapshot().total_work();
        assert!(
            work as f64 <= 10.0 * native.misses.max(1) as f64 + 8.0 * (2 * m_sim / b) as f64,
            "pattern {pattern:?}: work {work} vs misses {}",
            native.misses
        );
    }
}
