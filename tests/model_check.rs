//! Model-checking gates: the faithful protocol models explore clean at
//! the CI depth, every seeded mutation is caught with a minimal
//! counterexample, and the counterexample traces replay as a regression
//! corpus (`ppm_check::replay`).
//!
//! The CI `verify` job runs the same checks through the `ppm-check`
//! binary; these tests pin the behavior into `cargo test` so a local run
//! cannot drift from the workflow.

use ppm::sched::model::{LeaseModel, QuiesceModel, StealModel, StealMutation};
use ppm_check::{replay, Explorer, ExplorerConfig, Model, Report};

/// The depth the CI `verify` job pins (`ppm-check --depth 60`). The
/// deque-only steal space has diameter 35 and the injector-seeded
/// space diameter 46, so depth 60 exhausts both; the lease and quiesce
/// models bottom out earlier on their own tick budgets.
const CI_DEPTH: usize = 60;

fn explore<M: Model>(model: &M, depth: usize) -> Report<M> {
    Explorer::new(ExplorerConfig::depth(depth)).run(model)
}

// ---------------------------------------------------------------------
// Faithful protocols: zero violations at the pinned CI depth.
// ---------------------------------------------------------------------

#[test]
fn steal_protocol_is_clean_and_exhausted_at_ci_depth() {
    let report = explore(&StealModel::default(), CI_DEPTH);
    report.assert_ok();
    assert!(
        !report.truncated,
        "depth {CI_DEPTH} must exhaust the steal model's reachable space"
    );
    assert!(
        report.states > 800,
        "steal state space shrank suspiciously: {} states",
        report.states
    );
}

#[test]
fn injector_steal_protocol_is_clean_and_exhausted_at_ci_depth() {
    let report = explore(&StealModel::with_injector(), CI_DEPTH);
    report.assert_ok();
    assert!(
        !report.truncated,
        "depth {CI_DEPTH} must exhaust the injector-seeded steal space"
    );
    assert!(
        report.states > 1_500,
        "injector state space shrank suspiciously: {} states",
        report.states
    );
}

#[test]
fn lease_protocol_is_clean_at_ci_depth() {
    let report = explore(&LeaseModel::default(), CI_DEPTH);
    report.assert_ok();
    assert!(report.states > 10_000, "lease exploration lost coverage");
}

#[test]
fn quiesce_protocol_is_clean_at_ci_depth() {
    let report = explore(&QuiesceModel::default(), CI_DEPTH);
    report.assert_ok();
    assert!(report.states > 500, "quiesce exploration lost coverage");
}

// ---------------------------------------------------------------------
// Seeded mutations: each deliberately broken variant must be caught,
// and `Report::assert_ok` must panic with the violated invariant's
// name — the `#[should_panic]` hook CI's mutation self-test relies on.
// ---------------------------------------------------------------------

#[test]
#[should_panic(expected = "NoLostTask")]
fn dropping_the_lemma_a10_adoption_arm_loses_a_task() {
    explore(&StealModel::mutated(StealMutation::DropLemmaA10), CI_DEPTH).assert_ok();
}

#[test]
#[should_panic(expected = "NoDoubleExecution")]
fn adopting_a_live_processors_local_double_executes() {
    explore(
        &StealModel::mutated(StealMutation::AdoptLiveLocal),
        CI_DEPTH,
    )
    .assert_ok();
}

#[test]
#[should_panic(expected = "NoLostTask")]
fn dropping_the_rescue_sweep_loses_the_service_job() {
    explore(&StealModel::mutated(StealMutation::DropRescue), CI_DEPTH).assert_ok();
}

#[test]
#[should_panic(expected = "NoDoubleExecution")]
fn rescuing_a_completed_slot_double_resolves_the_job() {
    explore(
        &StealModel::mutated(StealMutation::RescueCompleted),
        CI_DEPTH,
    )
    .assert_ok();
}

#[test]
#[should_panic(expected = "TombstoneSticky")]
fn dropping_the_tombstone_check_resurrects_a_dead_shard() {
    explore(&LeaseModel::mutated(), CI_DEPTH).assert_ok();
}

#[test]
#[should_panic(expected = "NoLiveFrameReclaim")]
fn skipping_the_busy_check_reclaims_a_live_frame() {
    explore(&QuiesceModel::mutated(), CI_DEPTH).assert_ok();
}

// ---------------------------------------------------------------------
// Regression corpus: the minimal counterexample each mutant produces is
// replayed step-by-step through a fresh model instance, asserting the
// invariant holds along the prefix and fails exactly at the last step.
// The pinned lengths are the BFS-minimal trace depths; a protocol or
// explorer change that lengthens (or loses) a counterexample fails
// here before it reaches CI.
// ---------------------------------------------------------------------

fn corpus_roundtrip<M: Model>(model: &M, expected_steps: usize)
where
    M::Action: PartialEq,
{
    let report = explore(model, CI_DEPTH);
    let cex = report
        .violation
        .as_ref()
        .expect("mutant must produce a counterexample");
    assert_eq!(
        cex.trace.len(),
        expected_steps,
        "minimal counterexample length drifted:\n{}",
        cex.render()
    );
    // BFS found the states along the trace; replaying from the initial
    // state that matches the counterexample's first state keeps the
    // corpus honest even for models with several initial states.
    let init = model
        .initial()
        .iter()
        .position(|s| *s == cex.states[0])
        .expect("counterexample must start in an initial state");
    let end = replay(model, init, &cex.trace, true);
    assert_eq!(
        end,
        *cex.states.last().unwrap(),
        "replay must land in the recorded violating state"
    );
}

#[test]
fn corpus_steal_drop_lemma_a10_replays() {
    corpus_roundtrip(&StealModel::mutated(StealMutation::DropLemmaA10), 19);
}

#[test]
fn corpus_steal_adopt_live_local_replays() {
    corpus_roundtrip(&StealModel::mutated(StealMutation::AdoptLiveLocal), 18);
}

#[test]
fn corpus_steal_drop_rescue_replays() {
    corpus_roundtrip(&StealModel::mutated(StealMutation::DropRescue), 4);
}

#[test]
fn corpus_steal_rescue_completed_replays() {
    corpus_roundtrip(&StealModel::mutated(StealMutation::RescueCompleted), 22);
}

#[test]
fn corpus_lease_drop_tombstone_replays() {
    corpus_roundtrip(&LeaseModel::mutated(), 2);
}

#[test]
fn corpus_quiesce_skip_busy_replays() {
    corpus_roundtrip(&QuiesceModel::mutated(), 6);
}

// ---------------------------------------------------------------------
// Counterexamples are inert against the faithful protocol: the recorded
// bug trace of the lease mutant names a transition (tombstoning a
// never-reaped shard) that the real protocol never enables, so the
// replay must reject it rather than reproduce the violation.
// ---------------------------------------------------------------------

#[test]
fn lease_mutant_trace_is_not_enabled_in_the_faithful_protocol() {
    let mutant = LeaseModel::mutated();
    let cex = explore(&mutant, CI_DEPTH)
        .violation
        .expect("mutant counterexample");
    let faithful = LeaseModel::default();
    let mut state = faithful.initial()[0];
    let mut rejected = false;
    for action in &cex.trace {
        if !faithful.actions(&state).iter().any(|a| a == action) {
            rejected = true;
            break;
        }
        state = faithful.step(&state, action);
        faithful
            .invariant(&state)
            .expect("faithful protocol must stay clean along any enabled prefix");
    }
    assert!(
        rejected,
        "the faithful protocol should refuse some step of the mutant's bug trace"
    );
}
