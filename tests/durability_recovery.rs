//! Crash-recovery integration tests: a durable session whose run is cut
//! short (every processor hard-faults, the in-process analogue of the
//! process dying) is reopened and recovered through
//! `Runtime::run_or_replay`, and every task's once-only effect is applied
//! exactly once across the two process lifetimes.
#![cfg(unix)]

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use ppm::core::{comp_step, par_all, Comp, Machine};
use ppm::pm::{FaultConfig, PmConfig, ProcCtx, Region, Word};
use ppm::sched::{Runtime, RuntimeConfig, SchedConfig, SessionMode};

// Guarded temp paths: removed on drop, so failing assertions clean up too.
fn tmp(tag: &str) -> ppm::pm::TempMachineFile {
    ppm::pm::TempMachineFile::new(&format!("recovery-test-{tag}"))
}

const N: usize = 48;

fn cfg() -> PmConfig {
    PmConfig::parallel(4, 1 << 21)
}

fn rt_cfg(pm: PmConfig) -> RuntimeConfig {
    RuntimeConfig::new(pm).with_slots(1 << 10)
}

/// Task `i` CAMs its marker from unset to `i + 1`: a once-only effect.
fn build_comp(markers: Region) -> Comp {
    par_all(
        (0..N)
            .map(|i| {
                comp_step("mark", move |ctx: &mut ProcCtx| {
                    ctx.pcam(markers.at(i), 0, i as Word + 1)
                })
            })
            .collect(),
    )
}

#[test]
fn recovery_after_mid_run_stop_applies_every_task_exactly_once() {
    let path = tmp("midstop");

    // The "crashed" run: all four processors hard-fault mid-computation,
    // which stops the run exactly the way process death does — scheduler
    // state and partial results frozen in the durable words, no flush, no
    // clean shutdown.
    {
        let rt = Runtime::create(
            &path,
            rt_cfg(
                cfg().with_fault(
                    FaultConfig::none()
                        .with_scheduled_hard_fault(0, 350)
                        .with_scheduled_hard_fault(1, 250)
                        .with_scheduled_hard_fault(2, 300)
                        .with_scheduled_hard_fault(3, 200),
                ),
            ),
        )
        .unwrap();
        let markers = rt.machine().alloc_region(N);
        let rep = rt.run_or_replay(&build_comp(markers));
        assert!(
            !rep.completed(),
            "all processors dead: the run must stop early"
        );
        assert_eq!(rep.dead_procs(), 4);
    }

    // The recovering "process": open a session, replay the deterministic
    // setup, recover.
    let rt = Runtime::open(&path, rt_cfg(cfg())).unwrap();
    assert!(rt.is_recovery());
    assert_eq!(rt.machine().epoch(), 2);
    let markers = rt.machine().alloc_region(N);
    let pre: Vec<bool> = (0..N)
        .map(|i| rt.machine().mem().load(markers.at(i)) != 0)
        .collect();
    let pre_count = pre.iter().filter(|b| **b).count();
    assert!(
        pre_count > 0 && pre_count < N,
        "hard-fault schedule must stop the run mid-way (got {pre_count}/{N})"
    );

    // Observe every recovery-time mutation of the marker cells.
    let writes: Arc<Vec<AtomicU64>> = Arc::new((0..N).map(|_| AtomicU64::new(0)).collect());
    let wc = writes.clone();
    rt.machine()
        .mem()
        .set_observer(Some(Arc::new(move |addr, _prev, _new| {
            if markers.contains(addr) {
                wc[addr - markers.start].fetch_add(1, Ordering::Relaxed);
            }
        })));

    let rec = rt.run_or_replay(&build_comp(markers));
    assert!(!rec.already_complete());
    assert!(rec.completed(), "recovery must finish the computation");
    assert_eq!(rec.mode, SessionMode::Replayed);
    assert!(
        rec.found_in_flight() > 0,
        "a mid-run stop leaves in-flight deque entries behind"
    );
    assert_eq!(rec.epoch, 2);

    for i in 0..N {
        assert_eq!(
            rt.machine().mem().load(markers.at(i)),
            i as Word + 1,
            "marker {i} value"
        );
        let w = writes[i].load(Ordering::Relaxed);
        if pre[i] {
            assert_eq!(
                w, 0,
                "marker {i} was set pre-crash; recovery must not rewrite it"
            );
        } else {
            assert_eq!(w, 1, "marker {i} must be written exactly once by recovery");
        }
    }

    rt.mark_clean().unwrap();
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn recovery_of_completed_run_reruns_nothing() {
    let path = tmp("complete");
    {
        let rt = Runtime::create(&path, rt_cfg(cfg())).unwrap();
        let markers = rt.machine().alloc_region(N);
        assert!(rt.run_or_replay(&build_comp(markers)).completed());
        rt.mark_clean().unwrap();
    }
    let rt = Runtime::open(&path, rt_cfg(cfg())).unwrap();
    let markers = rt.machine().alloc_region(N);

    let writes = Arc::new(AtomicU64::new(0));
    let wc = writes.clone();
    rt.machine()
        .mem()
        .set_observer(Some(Arc::new(move |addr, _prev, _new| {
            if markers.contains(addr) {
                wc.fetch_add(1, Ordering::Relaxed);
            }
        })));

    let rec = rt.run_or_replay(&build_comp(markers));
    assert!(rec.already_complete(), "completion flag is persistent");
    assert!(rec.run.is_none(), "nothing re-driven");
    assert!(rec.completed());
    assert_eq!(writes.load(Ordering::Relaxed), 0, "no marker touched");
    for i in 0..N {
        assert_eq!(rt.machine().mem().load(markers.at(i)), i as Word + 1);
    }
    rt.machine().mem().set_observer(None);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn recovery_survives_repeated_crashes() {
    // Crash, recover-under-faults (which also crashes), recover again:
    // effects stay exactly-once across three process lifetimes.
    let path = tmp("repeated");
    {
        let rt = Runtime::create(
            &path,
            rt_cfg(
                cfg().with_fault(
                    FaultConfig::none()
                        .with_scheduled_hard_fault(0, 300)
                        .with_scheduled_hard_fault(1, 250)
                        .with_scheduled_hard_fault(2, 350)
                        .with_scheduled_hard_fault(3, 280),
                ),
            ),
        )
        .unwrap();
        let markers = rt.machine().alloc_region(N);
        assert!(!rt.run_or_replay(&build_comp(markers)).completed());
    }
    {
        // Second lifetime also dies mid-recovery.
        let rt = Runtime::open(
            &path,
            rt_cfg(
                cfg().with_fault(
                    FaultConfig::none()
                        .with_scheduled_hard_fault(0, 400)
                        .with_scheduled_hard_fault(1, 300)
                        .with_scheduled_hard_fault(2, 450)
                        .with_scheduled_hard_fault(3, 350),
                ),
            ),
        )
        .unwrap();
        let markers = rt.machine().alloc_region(N);
        let rec = rt.run_or_replay(&build_comp(markers));
        assert!(!rec.completed(), "this recovery was itself cut short");
    }
    let rt = Runtime::open(&path, rt_cfg(cfg())).unwrap();
    assert_eq!(rt.machine().epoch(), 3);
    let markers = rt.machine().alloc_region(N);
    let rec = rt.run_or_replay(&build_comp(markers));
    assert!(rec.completed());
    for i in 0..N {
        assert_eq!(
            rt.machine().mem().load(markers.at(i)),
            i as Word + 1,
            "marker {i}"
        );
    }
    rt.mark_clean().unwrap();
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn recovery_with_transition_checking_scrubs_without_tripping_the_checker() {
    // The scrub rewrites stale entries (taken -> empty etc.), which the
    // Figure 4 checker would reject as an illegal transition if it were
    // installed during the scrub; recovery must defer it.
    let path = tmp("checked");
    let mut scfg = SchedConfig::with_slots(1 << 10);
    scfg.check_transitions = true;
    {
        let rt = Runtime::create(
            &path,
            rt_cfg(
                cfg().with_fault(
                    FaultConfig::none()
                        .with_scheduled_hard_fault(0, 350)
                        .with_scheduled_hard_fault(1, 250)
                        .with_scheduled_hard_fault(2, 300)
                        .with_scheduled_hard_fault(3, 200),
                ),
            )
            .with_sched(scfg.clone()),
        )
        .unwrap();
        let markers = rt.machine().alloc_region(N);
        assert!(!rt.run_or_replay(&build_comp(markers)).completed());
    }
    let rt = Runtime::open(&path, rt_cfg(cfg()).with_sched(scfg)).unwrap();
    let markers = rt.machine().alloc_region(N);
    let rec = rt.run_or_replay(&build_comp(markers));
    assert!(
        rec.completed(),
        "recovery with the checker on must complete"
    );
    for i in 0..N {
        assert_eq!(
            rt.machine().mem().load(markers.at(i)),
            i as Word + 1,
            "marker {i}"
        );
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn durable_and_volatile_runs_compute_identical_results() {
    let path = tmp("parity");
    let volatile = {
        let rt = Runtime::new(Machine::new(cfg()), SchedConfig::with_slots(1 << 10));
        let markers = rt.machine().alloc_region(N);
        assert!(rt.run_or_replay(&build_comp(markers)).completed());
        rt.machine().mem().to_vec(markers.start, N)
    };
    let durable = {
        let rt = Runtime::create(&path, rt_cfg(cfg())).unwrap();
        let markers = rt.machine().alloc_region(N);
        assert!(rt.run_or_replay(&build_comp(markers)).completed());
        rt.mark_clean().unwrap();
        rt.machine().mem().to_vec(markers.start, N)
    };
    assert_eq!(volatile, durable);
    std::fs::remove_file(&path).unwrap();
}
