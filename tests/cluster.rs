//! Multi-process sharded runtime, exercised in-process: several
//! `Machine::attach`-style attachments to one machine file inside one
//! test process (the `MAP_SHARED` mapping makes them exactly as coherent
//! as separate OS processes — what a real `kill -9` adds is exercised by
//! `examples/sharded_fault.rs`).

#![cfg(unix)]

use std::sync::{Arc, Mutex};

use ppm::core::{dsl, Machine};
use ppm::pm::{PmConfig, Region, TempMachineFile, Word};
use ppm::sched::cluster::{self, ClusterBuilder, ClusterRole, ShardBuild};
use ppm::sched::SessionMode;

const PROCS_PER_SHARD: usize = 2;
const SLICE: usize = 96;
const GRAIN: usize = 8;

/// A sharded marker computation: shard `s` fills its own slice with
/// `i + 1`. The builder records each shard's slice region so the test
/// can verify the output (regions are deterministic across attachments,
/// so every re-invocation records the same addresses).
fn marker_build(slices: Arc<Mutex<Vec<Option<Region>>>>) -> ShardBuild {
    Arc::new(move |m: &Machine, shard: usize, k: Word| {
        let out = m.alloc_region(SLICE);
        slices.lock().unwrap()[shard] = Some(out);
        let mut set = dsl::CapsuleSet::new(m);
        let leaf = set.define("clt/mark", |st: &dsl::Span<Region>, k, ctx| {
            for i in st.lo..st.hi {
                ctx.pwrite(st.env.at(i), i as u64 + 1)?;
            }
            Ok(dsl::Step::Jump(k))
        });
        let split = set.map_grain("clt/split", GRAIN, leaf);
        split
            .setup(
                m,
                &dsl::Span {
                    env: out,
                    lo: 0,
                    hi: SLICE,
                },
                dsl::K(k),
            )
            .0
    })
}

fn cluster_builder(path: &std::path::Path, shards: usize, lease_ms: u64) -> ClusterBuilder {
    ClusterBuilder::new(path)
        .machine(PmConfig::parallel(shards * PROCS_PER_SHARD, 1 << 21))
        .workers(shards)
        .lease_ms(lease_ms)
        .deque_slots(1 << 10)
}

fn assert_slices_filled(machine: &Machine, slices: &Mutex<Vec<Option<Region>>>) {
    for (s, slice) in slices.lock().unwrap().iter().enumerate() {
        let r = slice.expect("builder ran for every shard");
        for i in 0..SLICE {
            assert_eq!(
                machine.mem().load(r.at(i)),
                i as u64 + 1,
                "shard {s} word {i}"
            );
        }
    }
}

#[test]
fn workers_complete_their_shards_independently() {
    let file = TempMachineFile::new("cluster-basic");
    let slices = Arc::new(Mutex::new(vec![None; 2]));
    let build = marker_build(slices.clone());
    cluster_builder(file.path(), 2, 1000).init(&build).unwrap();

    // Two "workers" as threads, each with its own attachment — the same
    // memory semantics as separate processes over the shared mapping.
    let reports: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..2)
            .map(|s| {
                let build = build.clone();
                let path = file.path().to_path_buf();
                scope.spawn(move || cluster::run_worker(&path, s, &build).unwrap())
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for (s, rep) in reports.iter().enumerate() {
        assert!(rep.completed(), "worker {s} must see the run complete");
        assert_eq!(rep.epoch, 1, "attachers share the creating run's epoch");
        let summary = rep.cluster.as_ref().unwrap();
        assert_eq!(summary.role, ClusterRole::Worker(s));
        assert_eq!(summary.shards, 2);
        assert!(
            summary.dead_shards.is_empty(),
            "no worker died; nothing to adopt"
        );
    }

    // Verify the output through a fresh attachment.
    let machine = Machine::attach(
        file.path(),
        ppm::pm::FaultConfig::none(),
        ppm::pm::ValidateMode::Strict,
    )
    .unwrap();
    assert_slices_filled(&machine, &slices);
}

#[test]
fn survivor_adopts_a_shard_that_never_starts() {
    let file = TempMachineFile::new("cluster-adopt");
    let slices = Arc::new(Mutex::new(vec![None; 2]));
    let build = marker_build(slices.clone());
    // Shard 1 never attaches, standing in for a worker that was spawned
    // and immediately SIGKILLed. Its seed lease (10x the window, written
    // by init on the system clock) must expire before worker 0 adopts;
    // instead of sleeping those milliseconds away, hand worker 0 a
    // virtual clock already past every possible seed deadline, so the
    // first monitor tick judges shard 1 dead deterministically.
    let lease_ms = 60;
    cluster_builder(file.path(), 2, lease_ms)
        .init(&build)
        .unwrap();
    let clock = Arc::new(ppm::pm::VirtualClock::starting_at(
        ppm::pm::now_ms() + lease_ms * cluster::STARTUP_LEASE_FACTOR + 1,
    ));

    let rep = cluster::run_worker_with_clock(file.path(), 0, &build, clock).unwrap();
    assert!(
        rep.completed(),
        "the lone survivor must finish the whole run"
    );
    let summary = rep.cluster.as_ref().unwrap();
    assert_eq!(summary.dead_shards, vec![1], "shard 1's lease expired");
    let own = &summary.shard_reports[0];
    assert!(
        own.adopted_jobs >= 1,
        "the dead shard's planted sub-root must be stolen via popTop \
         (adopted_jobs = {})",
        own.adopted_jobs
    );
    assert!(own.subtree_complete, "survivor's own subtree arrived");
    assert!(
        summary.shard_reports[1].subtree_complete,
        "the dead shard's subtree arrived through adoption"
    );
    assert!(
        !summary.shard_reports[1].started,
        "shard 1 never wrote its running marker"
    );

    let machine = Machine::attach(
        file.path(),
        ppm::pm::FaultConfig::none(),
        ppm::pm::ValidateMode::Strict,
    )
    .unwrap();
    assert_slices_filled(&machine, &slices);
}

#[test]
fn recover_finishes_an_abandoned_cluster_file() {
    let file = TempMachineFile::new("cluster-recover");
    let slices = Arc::new(Mutex::new(vec![None; 3]));
    let build = marker_build(slices.clone());
    // Init plants three sub-roots; no worker ever runs (the "every fault
    // domain died at once" outcome).
    cluster_builder(file.path(), 3, 500).init(&build).unwrap();

    let rep = cluster::recover(file.path(), &build).unwrap();
    assert!(rep.completed(), "recovery must finish the computation");
    assert_eq!(
        rep.mode,
        SessionMode::Resumed,
        "the planted sub-roots are a harvestable frontier"
    );
    assert_eq!(rep.found_jobs, 3, "one planted sub-root per shard");
    assert_eq!(rep.resumed, 3);
    assert_eq!(rep.epoch, 2, "recovery is a real reopen: epoch bumps");
    let summary = rep.cluster.as_ref().unwrap();
    assert_eq!(summary.role, ClusterRole::Recovery);
    assert!(summary
        .shard_reports
        .iter()
        .all(|r| r.subtree_complete && !r.started));

    let machine = Machine::reopen(file.path()).unwrap();
    assert_slices_filled(&machine, &slices);

    // A second recover on the finished file is a no-op.
    let again = cluster::recover(file.path(), &build).unwrap();
    assert_eq!(again.mode, SessionMode::AlreadyComplete);
}
