//! The §5 atomically idempotent capsule forms, demonstrated directly:
//! racy-read capsules, racy-write capsules, CAM capsules, and racy
//! multiread capsules, each exercised under repetition (the restart
//! behaviour) and cross-thread races.

use std::sync::Arc;

use ppm::core::{capsule, final_capsule, run_chain, InstallCtx, Machine, Next};
use ppm::pm::{FaultConfig, PmConfig};

fn machine(f: FaultConfig) -> Machine {
    Machine::new(PmConfig::parallel(2, 1 << 18).with_fault(f))
}

/// Theorem 3.1 (dynamic form): a write-after-read conflict free capsule
/// re-run any number of times leaves memory as if it ran once — even when
/// its writes depend on its reads.
#[test]
fn theorem_3_1_rerun_equals_run_once() {
    let m = machine(FaultConfig::none());
    let src = m.alloc_region(8);
    let dst = m.alloc_region(8);
    m.mem().store(src.at(0), 21);
    let c = capsule("double", move |ctx| {
        let v = ctx.pread(src.at(0))?;
        ctx.pwrite(dst.at(0), v * 2)?;
        Ok(Next::End)
    });
    let mut ctx = m.ctx(0);
    // Run the same capsule body many times (what restarts do).
    for _ in 0..7 {
        ctx.begin_capsule("double");
        match c.run(&mut ctx).unwrap() {
            Next::End => {}
            _ => panic!(),
        }
    }
    assert_eq!(m.mem().load(dst.at(0)), 42, "as if run exactly once");
}

/// The racy read capsule: reads a location other threads write, copies it
/// to a private location. Restarts may observe *different* values — but
/// only the final run's value is visible, because nobody reads the private
/// location until a later capsule.
#[test]
fn racy_read_capsule_is_idempotent_under_concurrent_writes() {
    let m = Arc::new(machine(FaultConfig::none()));
    let shared = m.alloc_region(8);
    let private = m.alloc_region(8);

    let writer = {
        let m = m.clone();
        std::thread::spawn(move || {
            let mut ctx = m.ctx(1);
            for v in 1..=100u64 {
                ctx.begin_capsule("w");
                ctx.pwrite(shared.at(0), v).unwrap();
                ctx.complete_capsule();
            }
        })
    };

    // The copy capsule, re-run several times while the writer races.
    let mut ctx = m.ctx(0);
    let copy = capsule("copy", move |ctx| {
        let v = ctx.pread(shared.at(0))?;
        ctx.pwrite(private.at(0), v)?;
        Ok(Next::End)
    });
    for _ in 0..50 {
        ctx.begin_capsule("copy");
        copy.run(&mut ctx).unwrap();
    }
    writer.join().unwrap();

    // The private location holds *some* single value the writer produced
    // (or the initial 0 if the first read won every race) — one coherent
    // copy, exactly once semantics from the reader's side.
    let got = m.mem().load(private.at(0));
    assert!(got <= 100, "a value some run observed: {got}");
}

/// The racy write capsule: its only racing instruction is a write racing
/// with reads. The value transitions old → new exactly once no matter how
/// many times the capsule repeats.
#[test]
fn racy_write_capsule_transitions_once() {
    let m = machine(FaultConfig::none());
    let loc = m.alloc_region(8);
    let c = capsule("pub", move |ctx| {
        ctx.pwrite(loc.at(0), 7)?;
        Ok(Next::End)
    });
    let mut ctx = m.ctx(0);
    let mut transitions = 0;
    let mut last = m.mem().load(loc.at(0));
    for _ in 0..10 {
        ctx.begin_capsule("pub");
        c.run(&mut ctx).unwrap();
        let now = m.mem().load(loc.at(0));
        if now != last {
            transitions += 1;
            last = now;
        }
    }
    assert_eq!(transitions, 1, "0 -> 7 exactly once across 10 re-runs");
}

/// The CAM capsule (Theorem 5.2): a non-reverting CAM repeated under
/// faults succeeds at most once, even racing with another processor's
/// identical attempts.
#[test]
fn cam_capsule_exactly_one_winner_under_faults_and_racing() {
    for seed in 0..10 {
        let m = Arc::new(machine(FaultConfig::soft(0.05, seed)));
        let cell = m.alloc_region(8);
        let winners = m.alloc_region(8);

        let contender = |id: u64, proc: usize, m: Arc<Machine>| {
            std::thread::spawn(move || {
                let mut ctx = m.ctx(proc);
                let mut install = InstallCtx::new(m.proc_meta(proc));
                let claim = final_capsule("claim", move |ctx| {
                    if ctx.pread(cell.at(0))? == id {
                        ctx.pwrite(winners.at(id as usize), 1)?;
                    }
                    Ok(())
                });
                let cam = capsule("cam", move |ctx| {
                    ctx.pcam(cell.at(0), 0, id)?;
                    Ok(Next::Jump(claim.clone()))
                });
                // Soft faults restart; the chain completes regardless.
                run_chain(&mut ctx, m.arena(), &mut install, cam).unwrap();
            })
        };
        let t1 = contender(1, 0, m.clone());
        let t2 = contender(2, 1, m.clone());
        t1.join().unwrap();
        t2.join().unwrap();

        let w1 = m.mem().load(winners.at(1));
        let w2 = m.mem().load(winners.at(2));
        assert_eq!(w1 + w2, 1, "seed {seed}: exactly one winner, got {w1}+{w2}");
        let v = m.mem().load(cell.at(0));
        assert!(v == 1 || v == 2);
        assert_eq!(
            m.mem().load(winners.at(v as usize)),
            1,
            "winner matches cell"
        );
    }
}

/// The racy multiread capsule: several racy reads in one capsule. Not
/// atomic — the values may come from different moments — but idempotent:
/// the last complete run's values win.
#[test]
fn racy_multiread_capsule_last_run_wins() {
    let m = Arc::new(machine(FaultConfig::none()));
    let shared = m.alloc_region(8);
    let private = m.alloc_region(8);

    m.mem().store(shared.at(0), 10);
    m.mem().store(shared.at(1), 20);

    let snap = capsule("multiread", move |ctx| {
        let a = ctx.pread(shared.at(0))?;
        let b = ctx.pread(shared.at(1))?;
        ctx.pwrite(private.at(0), a)?;
        ctx.pwrite(private.at(1), b)?;
        Ok(Next::End)
    });
    let mut ctx = m.ctx(0);
    // First (to-be-discarded) run.
    ctx.begin_capsule("multiread");
    snap.run(&mut ctx).unwrap();
    // "Concurrent" writes between restarts.
    m.mem().store(shared.at(0), 11);
    m.mem().store(shared.at(1), 21);
    // Final run overwrites the partial results entirely.
    ctx.restart_capsule("multiread");
    snap.run(&mut ctx).unwrap();
    assert_eq!(m.mem().to_vec(private.start, 2), vec![11, 21]);
}

/// §4's persistent counter idiom: "placing a commit between reading the
/// old value and writing the new" makes increments exactly-once under
/// faults.
#[test]
fn persistent_counter_with_commit_is_exactly_once() {
    for seed in 0..8 {
        let m = machine(FaultConfig::soft(0.1, seed));
        let cells = m.alloc_region(64); // counter as a chain of cells
        let mut ctx = m.ctx(0);
        let mut install = InstallCtx::new(m.proc_meta(0));
        // 20 increments; increment i reads cell i-1 and writes cell i
        // (the copy-instead-of-overwrite style of §4).
        for i in 0..20usize {
            let inc = final_capsule("inc", move |ctx| {
                let old = if i == 0 {
                    0
                } else {
                    ctx.pread(cells.at(i - 1))?
                };
                ctx.pwrite(cells.at(i), old + 1)
            });
            run_chain(&mut ctx, m.arena(), &mut install, inc).unwrap();
        }
        assert_eq!(m.mem().load(cells.at(19)), 20, "seed {seed}");
    }
}
