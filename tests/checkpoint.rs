//! The checkpoint subsystem end to end: bounded replay from epoch
//! checkpoints, frame-pool GC shrinking peak pool footprints, torn-record
//! fallback, and the checkpoint policies.
//!
//! Deterministic where it matters: single-processor machines with
//! scheduled hard faults give exact capsule schedules, so the
//! replay-distance assertions are inequalities over measured counts, not
//! probabilistic observations.

use ppm::algs::{prefix_sum_seq, samplesort_pool_words, MergeSort, PrefixSum, SampleSort};
use ppm::pm::{FaultConfig, PmConfig, Word};
use ppm::sched::{CheckpointPolicy, Runtime, RuntimeConfig, SessionMode};

const WORDS: usize = 1 << 21;
const SLOTS: usize = 1 << 12;

// Guarded temp paths: removed on drop, so assertion failures and panics
// do not leak machine files into reruns or CI workspaces.
fn tmp(tag: &str) -> ppm::pm::TempMachineFile {
    ppm::pm::TempMachineFile::new(&format!("checkpoint-{tag}"))
}

fn input(n: usize) -> Vec<Word> {
    (0..n as u64).map(|i| i.wrapping_mul(31) % 1009).collect()
}

// ====================================================================
// Bounded replay: resume from the newest checkpoint record
// ====================================================================

const N: usize = 512;
const EPOCH_CAPSULES: u64 = 200;

fn prefix_cfg(pm: PmConfig) -> RuntimeConfig {
    RuntimeConfig::new(pm)
        .with_slots(SLOTS)
        .with_checkpoint(CheckpointPolicy::every_capsules(EPOCH_CAPSULES))
}

/// Capsules and total accesses a complete from-root run performs (P = 1,
/// deterministic). The kill-point tests schedule their hard fault as a
/// fraction of the measured access count, so they keep landing mid-run
/// when per-capsule costs change (coalesced installs, batched frames).
fn full_run_profile() -> (u64, u64) {
    let rt = Runtime::volatile(prefix_cfg(PmConfig::parallel(1, WORDS)));
    let ps = PrefixSum::new(rt.machine(), N);
    ps.load_input(rt.machine(), &input(N));
    let rep = rt.run_or_recover(&ps.pcomp());
    assert!(rep.completed());
    (rep.stats().capsule_completions, rep.stats().total_work())
}

/// A scheduled-fault access index ~60% through the measured from-root
/// run: deterministically past the first checkpoint epochs and short of
/// completion.
fn mid_run_kill_access() -> u64 {
    full_run_profile().1 * 3 / 5
}

#[cfg(unix)]
#[test]
fn unresumable_crash_frontier_resumes_from_checkpoint_with_bounded_replay() {
    let (full, full_work) = full_run_profile();
    let path = tmp("bounded");
    let _ = std::fs::remove_file(&path);
    {
        let pm = PmConfig::parallel(1, WORDS)
            .with_fault(FaultConfig::none().with_scheduled_hard_fault(0, full_work * 13 / 20));
        let rt = Runtime::create(&path, prefix_cfg(pm)).unwrap();
        let ps = PrefixSum::new(rt.machine(), N);
        ps.load_input(rt.machine(), &input(N));
        let rep = rt.run_or_recover(&ps.pcomp());
        assert!(!rep.completed(), "the scheduled kill must land mid-run");
        let ck = &rep.run.as_ref().unwrap().checkpoints;
        assert!(
            ck.records_written >= 2,
            "the dying run must have written checkpoint records, got {ck:?}"
        );
        assert!(ck.words_reclaimed > 0, "GC must have reclaimed churn");
    }

    let rt = Runtime::open(&path, prefix_cfg(PmConfig::parallel(1, WORDS))).unwrap();
    // Point the restart pointer at garbage so the crash frontier cannot
    // resume (the checkpoint frontier's own frames stay intact): the
    // session must fall back to the newest checkpoint, NOT to the root.
    assert_ne!(rt.machine().active_handle(0), 0);
    rt.machine()
        .mem()
        .store(rt.machine().proc_meta(0).active, 0xBAAD_F00D);

    let ps = PrefixSum::new(rt.machine(), N);
    ps.load_input(rt.machine(), &input(N));
    let rec = rt.run_or_recover(&ps.pcomp());
    assert!(rec.completed());
    assert_eq!(
        rec.mode,
        SessionMode::Resumed,
        "checkpoint resume, not replay"
    );
    assert!(rec.fallback_reason.is_none());
    let ckpt = rec
        .checkpoint_resume
        .as_ref()
        .expect("resume must credit the checkpoint record");
    assert!(ckpt.seq >= 1);
    assert!(
        matches!(
            ckpt.crash_frontier,
            ppm::sched::FallbackReason::Rehydrate { .. }
        ),
        "the rejected crash frontier is explained: {:?}",
        ckpt.crash_frontier
    );
    assert!(
        ckpt.capsules_at_checkpoint > 0,
        "the kill landed after the first checkpoint"
    );
    assert_eq!(ps.read_output(rt.machine()), prefix_sum_seq(&input(N)));

    // Replay distance ≤ one epoch: the recovery re-drives the span after
    // the checkpoint (full − capsules_at_checkpoint) plus per-seed claim
    // overhead — never the whole run from the root.
    let recovered = rec.run.as_ref().unwrap().stats.capsule_completions;
    let slack = 4 * rec.resumed as u64 + 64;
    assert!(
        recovered <= full - ckpt.capsules_at_checkpoint + slack,
        "recovery ran {recovered} capsules; checkpoint at {} of {full} allows ≤ {}",
        ckpt.capsules_at_checkpoint,
        full - ckpt.capsules_at_checkpoint + slack
    );
    assert!(
        recovered < full,
        "checkpoint resume ({recovered}) must beat a from-root replay ({full})"
    );
    let _ = std::fs::remove_file(&path);
}

#[cfg(unix)]
#[test]
fn torn_newest_record_falls_back_to_the_previous_checkpoint() {
    use ppm::pm::backend::superblock::{CheckpointRecord, CKPT_SLOT_BYTES, CKPT_SLOT_OFFSETS};
    let path = tmp("torn");
    let _ = std::fs::remove_file(&path);
    {
        let pm = PmConfig::parallel(1, WORDS)
            .with_fault(FaultConfig::none().with_scheduled_hard_fault(0, mid_run_kill_access()));
        let rt = Runtime::create(&path, prefix_cfg(pm)).unwrap();
        let ps = PrefixSum::new(rt.machine(), N);
        ps.load_input(rt.machine(), &input(N));
        assert!(!rt.run_or_recover(&ps.pcomp()).completed());
    }

    // Read both record slots straight off the file and tear the newest —
    // the mid-write machine-failure scenario.
    let bytes = std::fs::read(&path).unwrap();
    let slot_rec = |s: usize| {
        CheckpointRecord::decode(
            &bytes[CKPT_SLOT_OFFSETS[s]..CKPT_SLOT_OFFSETS[s] + CKPT_SLOT_BYTES],
        )
        .ok()
        .flatten()
    };
    let (a, b) = (slot_rec(0), slot_rec(1));
    let newest = match (&a, &b) {
        (Some(a), Some(b)) => {
            if a.seq > b.seq {
                0
            } else {
                1
            }
        }
        _ => panic!("the dying run must have filled both record slots"),
    };
    let newest_seq = [&a, &b][newest].as_ref().unwrap().seq;
    let prev_seq = [&a, &b][1 - newest].as_ref().unwrap().seq;
    assert_eq!(prev_seq + 1, newest_seq);
    {
        use std::os::unix::fs::FileExt;
        let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        // Flip a byte in the middle of the newest record's payload.
        f.write_at(&[0xFF], (CKPT_SLOT_OFFSETS[newest] + 64) as u64)
            .unwrap();
    }

    let rt = Runtime::open(&path, prefix_cfg(PmConfig::parallel(1, WORDS))).unwrap();
    rt.machine()
        .mem()
        .store(rt.machine().proc_meta(0).active, 0xBAAD_F00D);
    let ps = PrefixSum::new(rt.machine(), N);
    ps.load_input(rt.machine(), &input(N));
    let rec = rt.run_or_recover(&ps.pcomp());
    assert!(rec.completed());
    assert_eq!(rec.mode, SessionMode::Resumed);
    assert_eq!(
        rec.checkpoint_resume.as_ref().unwrap().seq,
        prev_seq,
        "a torn newest record must fall back to the previous epoch's"
    );
    assert_eq!(ps.read_output(rt.machine()), prefix_sum_seq(&input(N)));
    let _ = std::fs::remove_file(&path);
}

/// The acceptance scenario: a killed **samplesort** under
/// `every_capsules(K)` resumes in `Resumed` mode replaying at most one
/// epoch of capsules. Death is the all-processors-hard-fault event that
/// models `kill -9` (deterministic at P = 1; the real-SIGKILL version
/// lives in `examples/checkpointed_run.rs`), and the crash frontier is
/// smashed so the resume must come from the checkpoint record.
#[cfg(unix)]
#[test]
fn killed_samplesort_resumes_from_checkpoint_within_one_epoch() {
    const SS_N: usize = 700;
    const K: u64 = 400;
    let data = ss_data(SS_N);
    let mut expect = data.clone();
    expect.sort_unstable();
    let cfg = |fault: FaultConfig| {
        RuntimeConfig::new(
            PmConfig::parallel(1, 1 << 22)
                .with_ephemeral_words(64)
                .with_fault(fault),
        )
        .with_pool_words(samplesort_pool_words(SS_N))
        .with_slots(1 << 13)
        .with_checkpoint(CheckpointPolicy::every_capsules(K))
    };

    // Reference: the full from-root capsule count (volatile, same shape).
    let full = {
        let rt = Runtime::volatile(cfg(FaultConfig::none()));
        let ss = SampleSort::new(rt.machine(), SS_N);
        ss.load_input(rt.machine(), &data);
        let rep = rt.run_or_recover(&ss.pcomp());
        assert!(rep.completed());
        rep.stats().capsule_completions
    };

    let path = tmp("ss-bounded");
    let _ = std::fs::remove_file(&path);
    {
        let rt = Runtime::create(
            &path,
            cfg(FaultConfig::none().with_scheduled_hard_fault(0, 20_000)),
        )
        .unwrap();
        let ss = SampleSort::new(rt.machine(), SS_N);
        ss.load_input(rt.machine(), &data);
        let rep = rt.run_or_recover(&ss.pcomp());
        assert!(!rep.completed(), "the kill must land mid-pipeline");
        assert!(
            rep.run.as_ref().unwrap().checkpoints.records_written >= 1,
            "{:?}",
            rep.run.as_ref().unwrap().checkpoints
        );
    }

    let rt = Runtime::open(&path, cfg(FaultConfig::none())).unwrap();
    assert_ne!(rt.machine().active_handle(0), 0);
    rt.machine()
        .mem()
        .store(rt.machine().proc_meta(0).active, 0xBAAD_F00D);
    let ss = SampleSort::new(rt.machine(), SS_N);
    ss.load_input(rt.machine(), &data);
    let rec = rt.run_or_recover(&ss.pcomp());
    assert!(rec.completed());
    assert_eq!(rec.mode, SessionMode::Resumed);
    let ckpt = rec.checkpoint_resume.as_ref().expect("checkpoint resume");
    assert_eq!(ss.read_output(rt.machine()), expect);
    let recovered = rec.run.as_ref().unwrap().stats.capsule_completions;
    let slack = 4 * rec.resumed as u64 + 64;
    assert!(
        recovered <= full - ckpt.capsules_at_checkpoint + slack,
        "samplesort recovery ran {recovered} capsules; checkpoint at {} of {full} \
         allows ≤ {}",
        ckpt.capsules_at_checkpoint,
        full - ckpt.capsules_at_checkpoint + slack
    );
    assert!(recovered < full);
    let _ = std::fs::remove_file(&path);
}

fn ss_data(n: usize) -> Vec<Word> {
    (0..n as u64)
        .map(|i| {
            let x = i.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(17);
            (x ^ (x >> 31)) % 10_000
        })
        .collect()
}

// ====================================================================
// Frame-pool GC: peak pool usage drops
// ====================================================================

/// Runs a pcomp workload twice — checkpointing off and on — and returns
/// `(peak_without_gc, peak_with_gc, gc_summary)`.
fn peaks<F: Fn(&Runtime) -> ppm::core::PComp>(
    build: F,
    pool_words: usize,
) -> (u64, u64, ppm::sched::CheckpointSummary) {
    let run = |policy: CheckpointPolicy| {
        // Small ephemeral memory forces deep recursion (many frames), the
        // regime the pool GC exists for.
        let rt = Runtime::volatile(
            RuntimeConfig::new(PmConfig::parallel(1, WORDS).with_ephemeral_words(64))
                .with_slots(SLOTS)
                .with_pool_words(pool_words)
                .with_checkpoint(policy),
        );
        let pcomp = build(&rt);
        let rep = rt.run_or_recover(&pcomp);
        assert!(rep.completed());
        let r = rep.run.unwrap();
        (r.stats.max_pool_peak, r.checkpoints)
    };
    let (peak_off, _) = run(CheckpointPolicy::disabled());
    let (peak_on, ck) = run(CheckpointPolicy::every_capsules(150));
    (peak_off, peak_on, ck)
}

#[test]
fn gc_shrinks_prefix_sum_peak_pool_usage() {
    let (off, on, ck) = peaks(
        |rt| {
            let ps = PrefixSum::new(rt.machine(), 2048);
            ps.load_input(rt.machine(), &input(2048));
            ps.pcomp()
        },
        1 << 17,
    );
    assert!(ck.words_reclaimed > 0, "{ck:?}");
    assert!(
        on < off,
        "prefix peak with GC ({on}) must drop below the retain-everything peak ({off})"
    );
}

#[test]
fn gc_shrinks_mergesort_peak_pool_usage() {
    let (off, on, ck) = peaks(
        |rt| {
            let ms = MergeSort::new(rt.machine(), 1500);
            ms.load_input(rt.machine(), &input(1500));
            ms.pcomp()
        },
        1 << 17,
    );
    assert!(ck.words_reclaimed > 0, "{ck:?}");
    assert!(
        on < off,
        "mergesort peak with GC ({on}) must drop below the retain-everything peak ({off})"
    );
}

#[test]
fn gc_shrinks_samplesort_peak_pool_usage_below_the_pr3_formula() {
    let n = 900;
    // The PR-3 sizing formula carried a doubled 72·n frame term for the
    // resume-rebuild worst case; GC makes the retained footprint obsolete.
    let pr3_frame_term = 72 * n;
    let (off, on, ck) = peaks(
        |rt| {
            let ss = SampleSort::new(rt.machine(), n);
            ss.load_input(rt.machine(), &input(n));
            ss.pcomp()
        },
        samplesort_pool_words(n) + pr3_frame_term,
    );
    assert!(ck.words_reclaimed > 0, "{ck:?}");
    assert!(
        on < off,
        "samplesort peak with GC ({on}) must drop below the retain-everything peak ({off})"
    );
    assert!(
        (off as usize) > samplesort_pool_words(n),
        "the retain-everything footprint ({off}) must exceed the tightened budget ({}) — \
         otherwise the PR-3 doubling was never needed and this test proves nothing",
        samplesort_pool_words(n)
    );
}

/// The tightened budget itself is sufficient: with the pool sized by the
/// post-GC formula (smaller than the retain-everything footprint measured
/// above), the run completes — the pressure-triggered GC keeps the bump
/// allocator inside the budget where the PR-3 sizing needed the doubled
/// term.
#[test]
fn tightened_samplesort_budget_completes_under_gc() {
    let n = 900;
    let data = input(n);
    let mut expect = data.clone();
    expect.sort_unstable();
    let rt = Runtime::volatile(
        RuntimeConfig::new(PmConfig::parallel(1, WORDS).with_ephemeral_words(64))
            .with_slots(SLOTS)
            .with_pool_words(samplesort_pool_words(n)),
    );
    let ss = SampleSort::new(rt.machine(), n);
    ss.load_input(rt.machine(), &data);
    let rep = rt.run_or_recover(&ss.pcomp());
    assert!(rep.completed());
    assert_eq!(ss.read_output(rt.machine()), expect);
    let ck = rep.run.unwrap().checkpoints;
    assert!(ck.words_reclaimed > 0, "{ck:?}");
}

/// Satellite regression: the pre-checkpoint hard-fault exhaustion case.
/// A hard-faulted processor's threads are adopted and re-driven by the
/// survivor, whose pool absorbs the re-allocation — under the PR-3
/// formulas this was the case that doubled the budget. With checkpoint
/// GC on (the default) the tightened formula must still complete it.
#[test]
fn tightened_samplesort_budget_survives_hard_fault_adoption() {
    let n = 600;
    let data: Vec<Word> = (0..n as u64)
        .map(|i| {
            let x = i.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(17);
            (x ^ (x >> 31)) % 10_000
        })
        .collect();
    let mut expect = data.clone();
    expect.sort_unstable();
    let rt = Runtime::volatile(
        RuntimeConfig::new(
            PmConfig::parallel(2, 1 << 22)
                .with_ephemeral_words(64)
                .with_fault(FaultConfig::none().with_scheduled_hard_fault(1, 2000)),
        )
        .with_pool_words(samplesort_pool_words(n))
        .with_slots(1 << 13),
    );
    let ss = SampleSort::new(rt.machine(), n);
    ss.load_input(rt.machine(), &data);
    let rep = rt.run_or_recover(&ss.pcomp());
    assert!(rep.completed(), "survivor must finish the adopted work");
    assert_eq!(rep.dead_procs(), 1);
    assert_eq!(ss.read_output(rt.machine()), expect);
}

// ====================================================================
// Policies
// ====================================================================

#[test]
fn disabled_policy_never_checkpoints() {
    let rt = Runtime::volatile(
        RuntimeConfig::new(PmConfig::parallel(1, WORDS))
            .with_slots(SLOTS)
            .with_checkpoint(CheckpointPolicy::disabled()),
    );
    let ps = PrefixSum::new(rt.machine(), N);
    ps.load_input(rt.machine(), &input(N));
    let rep = rt.run_or_recover(&ps.pcomp());
    assert!(rep.completed());
    assert_eq!(
        rep.run.unwrap().checkpoints,
        ppm::sched::CheckpointSummary::default()
    );
}

#[test]
fn every_pool_words_policy_reclaims() {
    let rt = Runtime::volatile(
        RuntimeConfig::new(PmConfig::parallel(1, WORDS))
            .with_slots(SLOTS)
            .with_pool_words(1 << 17)
            .with_checkpoint(CheckpointPolicy::every_pool_words(1 << 12)),
    );
    let ps = PrefixSum::new(rt.machine(), 2048);
    ps.load_input(rt.machine(), &input(2048));
    let rep = rt.run_or_recover(&ps.pcomp());
    assert!(rep.completed());
    let ck = rep.run.unwrap().checkpoints;
    assert!(ck.completed >= 1, "{ck:?}");
    assert!(ck.words_reclaimed > 0, "{ck:?}");
}

#[test]
fn manual_policy_checkpoints_only_on_request() {
    let (policy, trigger) = CheckpointPolicy::manual();
    let rt = Runtime::volatile(
        RuntimeConfig::new(PmConfig::parallel(1, WORDS))
            .with_slots(SLOTS)
            .with_checkpoint(policy),
    );
    let ps = PrefixSum::new(rt.machine(), N);
    ps.load_input(rt.machine(), &input(N));
    // Request before the run: the first capsule boundary takes it.
    trigger.request();
    let rep = rt.run_or_recover(&ps.pcomp());
    assert!(rep.completed());
    let ck = rep.run.unwrap().checkpoints;
    assert_eq!(
        ck.completed, 1,
        "exactly the one requested checkpoint completes: {ck:?}"
    );
}

#[cfg(unix)]
#[test]
fn completed_durable_run_leaves_a_record_behind() {
    let path = tmp("records");
    let _ = std::fs::remove_file(&path);
    let rt = Runtime::create(&path, prefix_cfg(PmConfig::parallel(1, WORDS))).unwrap();
    let ps = PrefixSum::new(rt.machine(), N);
    ps.load_input(rt.machine(), &input(N));
    assert!(rt.run_or_recover(&ps.pcomp()).completed());
    let rec = rt
        .machine()
        .latest_checkpoint_record()
        .expect("a durable checkpointed run leaves its records behind");
    assert!(rec.seq >= 1);
    assert!(rec.capsules > 0);
    let _ = std::fs::remove_file(&path);
}

#[cfg(unix)]
#[test]
fn replay_from_root_clears_stale_checkpoint_records() {
    let path = tmp("clear");
    let _ = std::fs::remove_file(&path);
    {
        // A checkpointed persistent run dies mid-flight, leaving records.
        let pm = PmConfig::parallel(1, WORDS)
            .with_fault(FaultConfig::none().with_scheduled_hard_fault(0, mid_run_kill_access()));
        let rt = Runtime::create(&path, prefix_cfg(pm)).unwrap();
        let ps = PrefixSum::new(rt.machine(), N);
        ps.load_input(rt.machine(), &input(N));
        assert!(!rt.run_or_recover(&ps.pcomp()).completed());
    }
    // A legacy-closure session replays from the root, which resets pool
    // cursors — the stale records' frontiers would dangle, so the replay
    // must invalidate them.
    let rt = Runtime::open(&path, prefix_cfg(PmConfig::parallel(1, WORDS))).unwrap();
    assert!(rt.machine().latest_checkpoint_record().is_some());
    // Replay the dead run's allocation order so the completion flag lands
    // on the same (unset) word, then drive a legacy computation over the
    // instance's own regions.
    let ps = PrefixSum::new(rt.machine(), N);
    let r = ps.output;
    let comp = ppm::core::par_all(
        (0..4)
            .map(|i| {
                ppm::core::comp_step("mark", move |ctx: &mut ppm::pm::ProcCtx| {
                    ctx.pcam(r.at(i), 0, i as Word + 1)
                })
            })
            .collect(),
    );
    let rep = rt.run_or_replay(&comp);
    assert!(rep.completed());
    assert_eq!(rep.mode, SessionMode::Replayed);
    assert!(
        rt.machine().latest_checkpoint_record().is_none(),
        "replay-from-root must clear stale checkpoint records"
    );
    let _ = std::fs::remove_file(&path);
}

// ====================================================================
// Skip-and-retry under contention (the ROADMAP "measure skip rates at
// high P" follow-on)
// ====================================================================

/// At high P with a tiny checkpoint interval, quiesces frequently land
/// in busy windows — a fork mid-push or a steal mid-transfer somewhere
/// on the machine — and the coordinator must *skip* (never reclaim
/// wrongly) and retry at a later boundary. This records the skip counts
/// and asserts the retry policy actually converges: checkpoints still
/// land, within a bounded number of quiesce attempts each.
#[test]
fn skip_and_retry_lands_checkpoints_under_high_p_contention() {
    const P: usize = 8;
    let rt = Runtime::volatile(
        RuntimeConfig::new(PmConfig::parallel(P, 1 << 22).with_ephemeral_words(128))
            .with_slots(SLOTS)
            .with_pool_words(samplesort_pool_words(2048))
            // An interval far below the fork rate: most quiesce requests
            // race live scheduler operations.
            .with_checkpoint(CheckpointPolicy::every_capsules(64)),
    );
    let ss = SampleSort::new(rt.machine(), 2048);
    let data = input(2048);
    ss.load_input(rt.machine(), &data);
    let rep = rt.run_or_recover(&ss.pcomp());
    assert!(rep.completed());
    let mut expect = data;
    expect.sort_unstable();
    assert_eq!(ss.read_output(rt.machine()), expect);

    let ck = rep.run_report().checkpoints;
    println!(
        "P={P} skip-rate sample: attempted={} completed={} skipped_busy={} \
         skipped_untraced={} reclaimed={}",
        ck.attempted, ck.completed, ck.skipped_busy, ck.skipped_untraced, ck.words_reclaimed
    );
    // Accounting identity: every quiesce either completes or is recorded
    // as a skip.
    assert_eq!(
        ck.attempted,
        ck.completed + ck.skipped_busy + ck.skipped_untraced
    );
    // The whole point of skip-and-retry: contention delays reclamation,
    // never starves it. At least one checkpoint must land...
    assert!(
        ck.completed >= 1,
        "no checkpoint landed in {} attempts",
        ck.attempted
    );
    // ...and each landing costs a bounded number of quiesce attempts
    // (the busy-retry backoff paces futile quiesces; 32 is far above the
    // observed worst case and far below pathological thrash).
    assert!(
        ck.attempted <= (ck.completed + 1) * 32,
        "checkpoint quiesces thrash: {} attempts for {} completions",
        ck.attempted,
        ck.completed
    );
    // Untraced skips would mean a DSL capsule lost its tracer.
    assert_eq!(ck.skipped_untraced, 0, "all DSL capsules must be traceable");
}
