//! Cross-crate integration: the four §7 algorithms against their
//! sequential oracles, across machine geometries and fault adversaries.

use ppm::algs::matmul::matmul_pool_words;
use ppm::algs::sort::samplesort_pool_words;
use ppm::algs::{
    matmul_seq, merge_seq, prefix_sum_seq, MatMul, Merge, MergeSort, PrefixSum, SampleSort,
};
use ppm::core::Machine;
use ppm::pm::{FaultConfig, PmConfig};
use ppm::sched::{run_computation, SchedConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn rand_data(seed: u64, n: usize, range: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(0..range)).collect()
}

#[test]
fn prefix_sum_matches_oracle_across_geometries() {
    for (b, m_eph) in [(4usize, 64usize), (8, 256), (16, 1024)] {
        for n in [1usize, 7, 64, 1000] {
            let m = Machine::new(
                PmConfig::parallel(2, 1 << 21)
                    .with_block_size(b)
                    .with_ephemeral_words(m_eph),
            );
            let ps = PrefixSum::new(&m, n);
            let data = rand_data(n as u64 ^ b as u64, n, 1 << 20);
            ps.load_input(&m, &data);
            let rep = run_computation(&m, &ps.comp(), &SchedConfig::with_slots(1 << 12));
            assert!(rep.completed, "B={b} n={n}");
            assert_eq!(ps.read_output(&m), prefix_sum_seq(&data), "B={b} n={n}");
        }
    }
}

#[test]
fn merge_matches_oracle_randomized() {
    for seed in 0..6 {
        let (la, lb) = (500 + seed as usize * 37, 800 - seed as usize * 41);
        let m = Machine::new(PmConfig::parallel(3, 1 << 21));
        let mg = Merge::new(&m, la, lb);
        let mut a = rand_data(seed, la, 5_000);
        let mut b = rand_data(seed + 100, lb, 5_000);
        a.sort_unstable();
        b.sort_unstable();
        mg.load_inputs(&m, &a, &b);
        let rep = run_computation(&m, &mg.comp(), &SchedConfig::with_slots(1 << 12));
        assert!(rep.completed, "seed {seed}");
        assert_eq!(mg.read_output(&m), merge_seq(&a, &b), "seed {seed}");
    }
}

#[test]
fn both_sorts_agree_with_std_sort_under_faults() {
    let n = 1 << 10;
    for seed in 0..3 {
        let input = rand_data(seed, n, 1 << 30);
        let mut expect = input.clone();
        expect.sort_unstable();

        let m = Machine::new(
            PmConfig::parallel(2, 1 << 22)
                .with_ephemeral_words(128)
                .with_fault(FaultConfig::soft(0.002, seed)),
        );
        let ms = MergeSort::new(&m, n);
        ms.load_input(&m, &input);
        let rep = run_computation(&m, &ms.comp(), &SchedConfig::with_slots(1 << 13));
        assert!(rep.completed);
        assert_eq!(ms.read_output(&m), expect, "mergesort seed {seed}");

        let m2 = Machine::with_pool_words(
            PmConfig::parallel(2, 1 << 23)
                .with_ephemeral_words(128)
                .with_fault(FaultConfig::soft(0.002, seed + 50)),
            samplesort_pool_words(n),
        );
        let ss = SampleSort::new(&m2, n);
        ss.load_input(&m2, &input);
        let rep = run_computation(&m2, &ss.comp(), &SchedConfig::with_slots(1 << 14));
        assert!(rep.completed);
        assert_eq!(ss.read_output(&m2), expect, "samplesort seed {seed}");
    }
}

#[test]
fn sort_adversarial_inputs() {
    // Already sorted, reverse sorted, all equal, organ pipe.
    let n = 700;
    let inputs: Vec<Vec<u64>> = vec![
        (0..n as u64).collect(),
        (0..n as u64).rev().collect(),
        vec![7; n],
        (0..n as u64)
            .map(|i| if i < n as u64 / 2 { i } else { n as u64 - i })
            .collect(),
    ];
    for (k, input) in inputs.iter().enumerate() {
        let m = Machine::with_pool_words(
            PmConfig::parallel(2, 1 << 23).with_ephemeral_words(64),
            samplesort_pool_words(n),
        );
        let ss = SampleSort::new(&m, n);
        ss.load_input(&m, input);
        let rep = run_computation(&m, &ss.comp(), &SchedConfig::with_slots(1 << 14));
        assert!(rep.completed, "input {k}");
        let mut expect = input.clone();
        expect.sort_unstable();
        assert_eq!(ss.read_output(&m), expect, "input {k}");
    }
}

#[test]
fn matmul_matches_oracle_with_hard_fault() {
    let n = 20;
    let m_eph = 128;
    let m = Machine::with_pool_words(
        PmConfig::parallel(3, 1 << 23)
            .with_ephemeral_words(m_eph)
            .with_fault(FaultConfig::none().with_scheduled_hard_fault(2, 700)),
        matmul_pool_words(n, m_eph),
    );
    let mm = MatMul::new(&m, n);
    let a = rand_data(1, n * n, 1000);
    let b = rand_data(2, n * n, 1000);
    mm.load_inputs(&m, &a, &b);
    let rep = run_computation(&m, &mm.comp(), &SchedConfig::with_slots(1 << 13));
    assert!(rep.completed);
    assert_eq!(rep.dead_procs(), 1);
    assert_eq!(mm.read_output(&m), matmul_seq(&a, &b, n));
}

#[test]
fn algorithms_compose_on_one_machine() {
    // Prefix-sum the output of a sort — two algorithm instances sharing
    // one machine and one scheduler run each.
    let n = 512;
    let m = Machine::new(PmConfig::parallel(2, 1 << 22).with_ephemeral_words(128));
    let ms = MergeSort::new(&m, n);
    let input = rand_data(5, n, 100);
    ms.load_input(&m, &input);
    let rep = run_computation(&m, &ms.comp(), &SchedConfig::with_slots(1 << 13));
    assert!(rep.completed);
    let sorted = ms.read_output(&m);

    let ps = PrefixSum::new(&m, n);
    ps.load_input(&m, &sorted);
    let rep2 = run_computation(&m, &ps.comp(), &SchedConfig::with_slots(1 << 13));
    assert!(rep2.completed);
    assert_eq!(ps.read_output(&m), prefix_sum_seq(&sorted));
}
