//! Cross-crate integration: the four §7 algorithms against their
//! sequential oracles, across machine geometries and fault adversaries,
//! all driven through `Runtime` sessions.

use ppm::algs::{
    matmul_pool_words, matmul_seq, merge_seq, prefix_sum_seq, samplesort_pool_words, MatMul, Merge,
    MergeSort, PrefixSum, SampleSort,
};
use ppm::core::Machine;
use ppm::pm::{FaultConfig, PmConfig};
use ppm::sched::{Runtime, SchedConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn rand_data(seed: u64, n: usize, range: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(0..range)).collect()
}

#[test]
fn prefix_sum_matches_oracle_across_geometries() {
    for (b, m_eph) in [(4usize, 64usize), (8, 256), (16, 1024)] {
        for n in [1usize, 7, 64, 1000] {
            let rt = Runtime::new(
                Machine::new(
                    PmConfig::parallel(2, 1 << 21)
                        .with_block_size(b)
                        .with_ephemeral_words(m_eph),
                ),
                SchedConfig::with_slots(1 << 12),
            );
            let ps = PrefixSum::new(rt.machine(), n);
            let data = rand_data(n as u64 ^ b as u64, n, 1 << 20);
            ps.load_input(rt.machine(), &data);
            let rep = rt.run_or_replay(&ps.comp());
            assert!(rep.completed(), "B={b} n={n}");
            assert_eq!(
                ps.read_output(rt.machine()),
                prefix_sum_seq(&data),
                "B={b} n={n}"
            );
        }
    }
}

#[test]
fn merge_matches_oracle_randomized() {
    for seed in 0..6 {
        let (la, lb) = (500 + seed as usize * 37, 800 - seed as usize * 41);
        let rt = Runtime::new(
            Machine::new(PmConfig::parallel(3, 1 << 21)),
            SchedConfig::with_slots(1 << 12),
        );
        let mg = Merge::new(rt.machine(), la, lb);
        let mut a = rand_data(seed, la, 5_000);
        let mut b = rand_data(seed + 100, lb, 5_000);
        a.sort_unstable();
        b.sort_unstable();
        mg.load_inputs(rt.machine(), &a, &b);
        let rep = rt.run_or_replay(&mg.comp());
        assert!(rep.completed(), "seed {seed}");
        assert_eq!(
            mg.read_output(rt.machine()),
            merge_seq(&a, &b),
            "seed {seed}"
        );
    }
}

#[test]
fn both_sorts_agree_with_std_sort_under_faults() {
    let n = 1 << 10;
    for seed in 0..3 {
        let input = rand_data(seed, n, 1 << 30);
        let mut expect = input.clone();
        expect.sort_unstable();

        let rt = Runtime::new(
            Machine::new(
                PmConfig::parallel(2, 1 << 22)
                    .with_ephemeral_words(128)
                    .with_fault(FaultConfig::soft(0.002, seed)),
            ),
            SchedConfig::with_slots(1 << 13),
        );
        let ms = MergeSort::new(rt.machine(), n);
        ms.load_input(rt.machine(), &input);
        assert!(rt.run_or_replay(&ms.comp()).completed());
        assert_eq!(
            ms.read_output(rt.machine()),
            expect,
            "mergesort seed {seed}"
        );

        let rt2 = Runtime::new(
            Machine::with_pool_words(
                PmConfig::parallel(2, 1 << 23)
                    .with_ephemeral_words(128)
                    .with_fault(FaultConfig::soft(0.002, seed + 50)),
                samplesort_pool_words(n),
            ),
            SchedConfig::with_slots(1 << 14),
        );
        let ss = SampleSort::new(rt2.machine(), n);
        ss.load_input(rt2.machine(), &input);
        assert!(rt2.run_or_replay(&ss.comp()).completed());
        assert_eq!(
            ss.read_output(rt2.machine()),
            expect,
            "samplesort seed {seed}"
        );
    }
}

#[test]
fn sort_adversarial_inputs() {
    // Already sorted, reverse sorted, all equal, organ pipe.
    let n = 700;
    let inputs: Vec<Vec<u64>> = vec![
        (0..n as u64).collect(),
        (0..n as u64).rev().collect(),
        vec![7; n],
        (0..n as u64)
            .map(|i| if i < n as u64 / 2 { i } else { n as u64 - i })
            .collect(),
    ];
    for (k, input) in inputs.iter().enumerate() {
        let rt = Runtime::new(
            Machine::with_pool_words(
                PmConfig::parallel(2, 1 << 23).with_ephemeral_words(64),
                samplesort_pool_words(n),
            ),
            SchedConfig::with_slots(1 << 14),
        );
        let ss = SampleSort::new(rt.machine(), n);
        ss.load_input(rt.machine(), input);
        let rep = rt.run_or_replay(&ss.comp());
        assert!(rep.completed(), "input {k}");
        let mut expect = input.clone();
        expect.sort_unstable();
        assert_eq!(ss.read_output(rt.machine()), expect, "input {k}");
    }
}

#[test]
fn matmul_matches_oracle_with_hard_fault() {
    let n = 20;
    let m_eph = 128;
    let a = rand_data(1, n * n, 1000);
    let b = rand_data(2, n * n, 1000);
    // The scheduled death fires at proc 2's 700th persistent access,
    // but whether proc 2 *reaches* it before the run completes depends
    // on OS scheduling — a starved thread may never steal that much.
    // The oracle must hold on every attempt; retry until an attempt
    // actually kills the processor mid-run.
    for attempt in 0..10 {
        let rt = Runtime::new(
            Machine::with_pool_words(
                PmConfig::parallel(3, 1 << 23)
                    .with_ephemeral_words(m_eph)
                    .with_fault(FaultConfig::none().with_scheduled_hard_fault(2, 700)),
                matmul_pool_words(n, m_eph),
            ),
            SchedConfig::with_slots(1 << 13),
        );
        let mm = MatMul::new(rt.machine(), n);
        mm.load_inputs(rt.machine(), &a, &b);
        let rep = rt.run_or_replay(&mm.comp());
        assert!(rep.completed());
        assert_eq!(mm.read_output(rt.machine()), matmul_seq(&a, &b, n));
        if rep.dead_procs() == 1 {
            return;
        }
        eprintln!("attempt {attempt}: run finished before proc 2's scheduled death; retrying");
    }
    panic!("the scheduled hard fault never fired in 10 attempts");
}

#[test]
fn algorithms_compose_on_one_machine() {
    // Prefix-sum the output of a sort — two algorithm instances sharing
    // one session and one scheduler run each.
    let n = 512;
    let rt = Runtime::new(
        Machine::new(PmConfig::parallel(2, 1 << 22).with_ephemeral_words(128)),
        SchedConfig::with_slots(1 << 13),
    );
    let ms = MergeSort::new(rt.machine(), n);
    let input = rand_data(5, n, 100);
    ms.load_input(rt.machine(), &input);
    assert!(rt.run_or_replay(&ms.comp()).completed());
    let sorted = ms.read_output(rt.machine());

    let ps = PrefixSum::new(rt.machine(), n);
    ps.load_input(rt.machine(), &sorted);
    assert!(rt.run_or_replay(&ps.comp()).completed());
    assert_eq!(ps.read_output(rt.machine()), prefix_sum_seq(&sorted));
}

#[test]
fn registered_forms_of_all_four_algorithms_complete_on_one_machine() {
    // The typed-DSL pcomps of every §7 algorithm share one machine: the
    // registry allocates disjoint ids per capsule name, so nothing
    // collides (the hazard the old manual id bases carried).
    let n = 256;
    let rt = Runtime::new(
        Machine::with_pool_words(
            PmConfig::parallel(2, 1 << 23).with_ephemeral_words(64),
            samplesort_pool_words(n) + matmul_pool_words(16, 64),
        ),
        SchedConfig::with_slots(1 << 14),
    );
    let data = rand_data(9, n, 10_000);
    let mut expect = data.clone();
    expect.sort_unstable();

    let ps = PrefixSum::new(rt.machine(), n);
    ps.load_input(rt.machine(), &data);
    assert!(rt.run_or_recover(&ps.pcomp()).completed());
    assert_eq!(ps.read_output(rt.machine()), prefix_sum_seq(&data));

    let ms = MergeSort::new(rt.machine(), n);
    ms.load_input(rt.machine(), &data);
    assert!(rt.run_or_recover(&ms.pcomp()).completed());
    assert_eq!(ms.read_output(rt.machine()), expect);

    let ss = SampleSort::new(rt.machine(), n);
    ss.load_input(rt.machine(), &data);
    assert!(rt.run_or_recover(&ss.pcomp()).completed());
    assert_eq!(ss.read_output(rt.machine()), expect);

    let mm = MatMul::new(rt.machine(), 12);
    let a = rand_data(3, 144, 100);
    let b = rand_data(4, 144, 100);
    mm.load_inputs(rt.machine(), &a, &b);
    assert!(rt.run_or_recover(&mm.pcomp()).completed());
    assert_eq!(mm.read_output(rt.machine()), matmul_seq(&a, &b, 12));
}
