//! The ABP baseline comparison and the paper-flagged extensions
//! (footnote 2's Asymmetric PM cost model).

use ppm::core::{comp_step, par_all, Comp, Machine};
use ppm::pm::{PmConfig, ProcCtx, Region};
use ppm::sched::abp::run_computation_abp;
use ppm::sched::{Runtime, SchedConfig};

fn tasks(r: Region, n: usize) -> Comp {
    par_all(
        (0..n)
            .map(|i| comp_step("leaf", move |ctx: &mut ProcCtx| ctx.pwrite(r.at(i), 1)))
            .collect(),
    )
}

#[test]
fn abp_and_fault_tolerant_schedulers_compute_the_same_result() {
    let n = 96;
    for procs in [1usize, 4] {
        let m1 = Machine::new(PmConfig::parallel(procs, 1 << 21));
        let r1 = m1.alloc_region(n);
        let rt1 = Runtime::new(m1, SchedConfig::with_slots(1 << 11));
        assert!(rt1.run_or_replay(&tasks(r1, n)).completed());

        let m2 = Machine::new(PmConfig::parallel(procs, 1 << 21));
        let r2 = m2.alloc_region(n);
        let rep2 = run_computation_abp(&m2, &tasks(r2, n), 1 << 11, 9);
        assert!(rep2.completed);

        for i in 0..n {
            assert_eq!(
                rt1.machine().mem().load(r1.at(i)),
                m2.mem().load(r2.at(i)),
                "P={procs} task {i}"
            );
        }
    }
}

#[test]
fn fault_tolerance_overhead_vs_abp_is_a_constant_factor() {
    // The paper's pitch: fault tolerance "with only a modest increase in
    // the total cost". Compare faultless model work, P = 1 (deterministic).
    let n = 128;
    let ft = {
        let m = Machine::new(PmConfig::parallel(1, 1 << 21));
        let r = m.alloc_region(n);
        let rt = Runtime::new(m, SchedConfig::with_slots(1 << 11));
        let rep = rt.run_or_replay(&tasks(r, n));
        assert!(rep.completed());
        rep.stats().total_work()
    };
    let abp = {
        let m = Machine::new(PmConfig::parallel(1, 1 << 21));
        let r = m.alloc_region(n);
        let rep = run_computation_abp(&m, &tasks(r, n), 1 << 11, 9);
        assert!(rep.completed);
        rep.stats.total_work()
    };
    let ratio = ft as f64 / abp as f64;
    assert!(
        (1.0..4.0).contains(&ratio),
        "fault-tolerant {ft} vs ABP {abp}: overhead {ratio:.2}x should be a modest constant"
    );
}

#[test]
fn asymmetric_pm_accounting_footnote_2() {
    // Writes cost omega times reads (NVM asymmetry). Run a computation and
    // check the weighted accounting brackets sensibly.
    let m = Machine::new(PmConfig::parallel(2, 1 << 21));
    let r = m.alloc_region(64);
    let rt = Runtime::new(m, SchedConfig::with_slots(1 << 11));
    let rep = rt.run_or_replay(&tasks(r, 64));
    assert!(rep.completed());
    let st = rep.stats();
    let w1 = st.asymmetric_work(1);
    let w4 = st.asymmetric_work(4);
    assert_eq!(w1, st.total_work());
    assert!(w4 > w1);
    assert!(w4 <= 4 * w1);
    assert_eq!(w4 - w1, 3 * st.total_writes);
    // Time version is a max over processors, so it is bounded by the
    // weighted total but at least the unweighted time.
    assert!(st.asymmetric_time(4) >= st.time());
    assert!(st.asymmetric_time(4) <= w4);
}

#[test]
fn read_write_split_is_consistent_and_install_heavy() {
    // Capsule installation costs two writes per capsule (closure +
    // restart pointer), so the machinery is write-heavy; the split should
    // be within a small constant either way and sum to the total.
    let rt = Runtime::new(
        Machine::new(PmConfig::parallel(1, 1 << 22)),
        SchedConfig::with_slots(1 << 13),
    );
    let ps = ppm::algs::PrefixSum::new(rt.machine(), 1 << 12);
    ps.load_input(rt.machine(), &vec![1u64; 1 << 12]);
    let rep = rt.run_or_replay(&ps.comp());
    assert!(rep.completed());
    let st = rep.stats();
    assert_eq!(st.total_reads + st.total_writes, st.total_work());
    assert!(st.total_writes >= 2 * st.capsule_completions.saturating_sub(st.capsule_runs / 2));
    assert!(
        st.total_writes <= 6 * st.total_reads.max(1),
        "reads {} writes {}: ratio should stay a small constant",
        st.total_reads,
        st.total_writes
    );
}
