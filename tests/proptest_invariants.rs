//! Property-based tests over the reproduction's core invariants.

use ppm::algs::{merge_seq, prefix_sum_seq, Merge, MergeSort, PrefixSum};
use ppm::core::{comp_step, par_all, Machine};
use ppm::pm::{FaultConfig, PmConfig, ProcCtx};
use ppm::sched::{pack, unpack, EntryKind, EntryVal, Runtime, SchedConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Deque entry packing is a bijection on its domain.
    #[test]
    fn entry_pack_unpack_round_trips(
        tag in any::<u16>(),
        kind in 0usize..4,
        handle in 0u64..(1 << 46),
        proc in 0usize..256,
        slot in 0usize..(1 << 22),
        ttag in any::<u16>(),
    ) {
        let val = match kind {
            0 => EntryVal::Empty,
            1 => EntryVal::Local,
            2 => EntryVal::Job { handle },
            _ => EntryVal::Taken { proc, slot, tag: ttag },
        };
        let w = pack(tag, val);
        prop_assert_eq!(unpack(w), (tag, val));
    }

    /// Distinct (tag, value) pairs pack to distinct words.
    #[test]
    fn entry_packing_is_injective(
        t1 in any::<u16>(), t2 in any::<u16>(),
        h1 in 0u64..(1 << 46), h2 in 0u64..(1 << 46),
    ) {
        let w1 = pack(t1, EntryVal::Job { handle: h1 });
        let w2 = pack(t2, EntryVal::Job { handle: h2 });
        prop_assert_eq!(w1 == w2, t1 == t2 && h1 == h2);
    }

    /// The Figure 4 transition relation is antisymmetric on distinct
    /// states except the job/local pair (the only two-way edge).
    #[test]
    fn transition_table_shape(a in 0usize..4, b in 0usize..4) {
        let ka = EntryKind::from_bits(a as u64);
        let kb = EntryKind::from_bits(b as u64);
        if ka == kb {
            prop_assert!(!ka.can_transition_to(kb), "no self transitions");
        }
        if ka == EntryKind::Taken {
            prop_assert!(!ka.can_transition_to(kb), "taken is terminal");
        }
        if ka.can_transition_to(kb) && kb.can_transition_to(ka) {
            prop_assert!(
                matches!((ka, kb), (EntryKind::Job, EntryKind::Local)
                                 | (EntryKind::Local, EntryKind::Job)
                                 | (EntryKind::Local, EntryKind::Empty)
                                 | (EntryKind::Empty, EntryKind::Local)),
                "two-way edges are only local<->job and local<->empty"
            );
        }
    }

    /// Prefix sums match the oracle on arbitrary inputs.
    #[test]
    fn prefix_sum_correct(data in prop::collection::vec(any::<u64>(), 1..300)) {
        let rt = Runtime::new(
            Machine::new(PmConfig::parallel(2, 1 << 21)),
            SchedConfig::with_slots(1 << 12),
        );
        let ps = PrefixSum::new(rt.machine(), data.len());
        ps.load_input(rt.machine(), &data);
        prop_assert!(rt.run_or_replay(&ps.comp()).completed());
        prop_assert_eq!(ps.read_output(rt.machine()), prefix_sum_seq(&data));
    }

    /// Merging matches the oracle on arbitrary sorted inputs.
    #[test]
    fn merge_correct(
        mut a in prop::collection::vec(0u64..10_000, 0..200),
        mut b in prop::collection::vec(0u64..10_000, 0..200),
    ) {
        a.sort_unstable();
        b.sort_unstable();
        let rt = Runtime::new(
            Machine::new(PmConfig::parallel(2, 1 << 21)),
            SchedConfig::with_slots(1 << 12),
        );
        let mg = Merge::new(rt.machine(), a.len(), b.len());
        mg.load_inputs(rt.machine(), &a, &b);
        prop_assert!(rt.run_or_replay(&mg.comp()).completed());
        prop_assert_eq!(mg.read_output(rt.machine()), merge_seq(&a, &b));
    }

    /// Mergesort matches std sort on arbitrary inputs.
    #[test]
    fn mergesort_correct(data in prop::collection::vec(any::<u64>(), 1..400)) {
        let rt = Runtime::new(
            Machine::new(PmConfig::parallel(2, 1 << 21).with_ephemeral_words(64)),
            SchedConfig::with_slots(1 << 12),
        );
        let ms = MergeSort::new(rt.machine(), data.len());
        ms.load_input(rt.machine(), &data);
        prop_assert!(rt.run_or_replay(&ms.comp()).completed());
        let mut expect = data.clone();
        expect.sort_unstable();
        prop_assert_eq!(ms.read_output(rt.machine()), expect);
    }
}

proptest! {
    // Scheduler runs spawn threads; keep the case count moderate.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Exactly-once execution holds for every (fault seed, fault rate,
    /// task count, processor count) the strategy produces.
    #[test]
    fn scheduler_exactly_once_under_arbitrary_soft_faults(
        seed in any::<u64>(),
        f in 0.0f64..0.04,
        n in 4usize..48,
        procs in 1usize..5,
    ) {
        let fault = if f == 0.0 { FaultConfig::none() } else { FaultConfig::soft(f, seed) };
        let m = Machine::new(PmConfig::parallel(procs, 1 << 21).with_fault(fault));
        let r = m.alloc_region(n);
        // Counter-style tasks: a duplicated execution would overshoot.
        let comp = par_all(
            (0..n)
                .map(|i| comp_step("inc", move |ctx: &mut ProcCtx| ctx.pwrite(r.at(i), 1)))
                .collect(),
        );
        let rt = Runtime::new(m, SchedConfig::with_slots(1 << 11));
        prop_assert!(rt.run_or_replay(&comp).completed());
        for i in 0..n {
            prop_assert_eq!(rt.machine().mem().load(r.at(i)), 1);
        }
    }

    /// A scheduled hard fault anywhere in the root processor's first 400
    /// accesses never loses work (P >= 2).
    #[test]
    fn scheduler_survives_arbitrary_root_death(at in 1u64..400, procs in 2usize..5) {
        let m = Machine::new(
            PmConfig::parallel(procs, 1 << 21)
                .with_fault(FaultConfig::none().with_scheduled_hard_fault(0, at)),
        );
        let n = 24;
        let r = m.alloc_region(n);
        let comp = par_all(
            (0..n)
                .map(|i| comp_step("inc", move |ctx: &mut ProcCtx| ctx.pwrite(r.at(i), 1)))
                .collect(),
        );
        let rt = Runtime::new(m, SchedConfig::with_slots(1 << 11));
        prop_assert!(rt.run_or_replay(&comp).completed());
        for i in 0..n {
            prop_assert_eq!(rt.machine().mem().load(r.at(i)), 1);
        }
    }
}
