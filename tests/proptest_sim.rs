//! Property-based determinism tests for the fault-injection simulator.
//!
//! The whole value of [`ppm::sched::SimSched`] is that a schedule is a
//! *reproducible artifact*: the same seed replays the same interleaving
//! over the real capsule engine, byte for byte and bit for bit. These
//! properties pin that across 64 seeds each, including seeds whose
//! schedules cross boundary crashes and mid-capsule hard faults.

use ppm::core::{comp_step, par_all, Comp, Machine};
use ppm::pm::{FaultConfig, PmConfig, ProcCtx, Region};
use ppm::sched::{SchedConfig, SimOp, SimSched};
use proptest::prelude::*;

fn machine(procs: usize, fault: FaultConfig) -> Machine {
    Machine::new(PmConfig::parallel(procs, 1 << 21).with_fault(fault))
}

fn markers(r: Region, n: usize) -> Comp {
    par_all(
        (0..n)
            .map(|i| {
                comp_step("sim/mark", move |ctx: &mut ProcCtx| {
                    ctx.pwrite(r.at(i), i as u64 + 1)
                })
            })
            .collect(),
    )
}

/// One full seeded run: returns the rendered event trace, the machine
/// digest, and whether the computation completed.
fn seeded_run(procs: usize, tasks: usize, fault: FaultConfig, seed: u64) -> (String, u64, bool) {
    let m = machine(procs, fault);
    let r = m.alloc_region(64);
    let comp = markers(r, tasks);
    let mut sim = SimSched::new_closure(&m, &comp, &SchedConfig::with_slots(256));
    sim.run_seeded(seed, 4_000);
    (sim.render_trace(), sim.digest(), sim.completed())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Same seed ⇒ byte-identical trace and bit-identical machine
    /// digest, for any seed.
    #[test]
    fn same_seed_replays_identically(seed in any::<u64>()) {
        let (t1, d1, c1) = seeded_run(3, 12, FaultConfig::none(), seed);
        let (t2, d2, c2) = seeded_run(3, 12, FaultConfig::none(), seed);
        prop_assert_eq!(t1, t2, "trace must be byte-identical for seed {}", seed);
        prop_assert_eq!(d1, d2, "machine digest must match for seed {}", seed);
        prop_assert_eq!(c1, c2);
        prop_assert!(c1, "fault-free seeded runs must complete (seed {})", seed);
    }

    /// Determinism holds through a scheduled mid-capsule hard fault:
    /// the fault fires at the same persistent access on both runs, so
    /// the Died event lands at the same step of the trace.
    #[test]
    fn same_seed_replays_identically_under_hard_faults(
        seed in any::<u64>(),
        fault_at in 4u64..40,
    ) {
        let f = || FaultConfig::none().with_scheduled_hard_fault(0, fault_at);
        let (t1, d1, c1) = seeded_run(3, 12, f(), seed);
        let (t2, d2, c2) = seeded_run(3, 12, f(), seed);
        prop_assert_eq!(t1, t2);
        prop_assert_eq!(d1, d2);
        prop_assert_eq!(c1, c2);
    }

    /// A scripted prefix composes with a seeded tail without breaking
    /// determinism: crash a processor at a seed-chosen boundary, then
    /// let the survivors run seeded to completion.
    #[test]
    fn scripted_crash_plus_seeded_tail_is_deterministic(
        seed in any::<u64>(),
        warmup in 1usize..8,
    ) {
        let run = || {
            let m = machine(2, FaultConfig::none());
            let r = m.alloc_region(64);
            let comp = markers(r, 8);
            let mut sim = SimSched::new_closure(&m, &comp, &SchedConfig::with_slots(256));
            sim.run_script(&[SimOp::Run(0, warmup), SimOp::Crash(0)]);
            sim.run_seeded(seed, 4_000);
            let completed = sim.completed();
            let trace = sim.render_trace();
            let digest = sim.digest();
            let marks: Vec<u64> = (0..8).map(|i| m.mem().load(r.at(i))).collect();
            (trace, digest, completed, marks)
        };
        let (t1, d1, c1, m1) = run();
        let (t2, d2, c2, m2) = run();
        prop_assert_eq!(t1, t2);
        prop_assert_eq!(d1, d2);
        prop_assert_eq!(c1, c2);
        prop_assert_eq!(&m1, &m2);
        prop_assert!(c1, "the survivor must finish after the scripted crash");
        prop_assert_eq!(m1, (1..=8).collect::<Vec<u64>>(), "exactly-once effects");
    }

    /// Different seeds explore genuinely different interleavings often
    /// enough to matter: a seed and its successor must not collapse to
    /// one schedule (regression guard for the seed-scrambling bug where
    /// `seed | 1` aliased adjacent seeds).
    #[test]
    fn adjacent_seeds_do_not_alias(seed in any::<u64>()) {
        let (t1, _, _) = seeded_run(3, 12, FaultConfig::none(), seed);
        let (t2, _, _) = seeded_run(3, 12, FaultConfig::none(), seed.wrapping_add(1));
        prop_assert_ne!(t1, t2, "seeds {} and +1 produced identical schedules", seed);
    }
}
