//! Property test: arbitrary word writes, `flush()`, drop, `reopen()`
//! round-trip bit-exactly through the file-backed `MmapBackend`.
#![cfg(unix)]

use std::collections::HashMap;

use ppm::pm::backend::{MmapBackend, Superblock};
use ppm::pm::{PersistentMemory, PmConfig};
use proptest::prelude::*;

const WORDS: usize = 1024;

// Guarded temp paths (unique per case): removed on drop, so shrinking
// and failing cases clean up too.
fn unique_tmp() -> ppm::pm::TempMachineFile {
    ppm::pm::TempMachineFile::new("proptest-durability")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every store made before a flush is read back bit-exactly by a later
    /// open of the same file, and unwritten words stay zero.
    #[test]
    fn random_writes_flush_reopen_round_trip_bit_exactly(
        addrs in prop::collection::vec(0usize..WORDS, 1..200),
        vals in prop::collection::vec(any::<u64>(), 1..200),
    ) {
        let path = unique_tmp();
        let sb = Superblock::describe(&PmConfig::parallel(1, WORDS), 64);

        // The writing lifetime: apply the writes in order (later writes to
        // the same address win), flush, drop.
        let mut model: HashMap<usize, u64> = HashMap::new();
        {
            let backend = MmapBackend::create(&path, sb).unwrap();
            let mem = PersistentMemory::with_backend(Box::new(backend), 8);
            for (a, v) in addrs.iter().zip(vals.iter()) {
                mem.store(*a, *v);
                model.insert(*a, *v);
            }
            mem.flush().unwrap();
        }

        // The reading lifetime.
        let (backend, found) = MmapBackend::open(&path).unwrap();
        prop_assert_eq!(found.epoch, 1);
        prop_assert_eq!(found.persistent_words as usize, WORDS);
        let mem = PersistentMemory::with_backend(Box::new(backend), 8);
        for a in 0..WORDS {
            prop_assert_eq!(
                mem.load(a),
                model.get(&a).copied().unwrap_or(0),
                "word {} after reopen", a
            );
        }

        std::fs::remove_file(&path).unwrap();
    }

    /// CAM semantics are preserved across a reopen: a once-only effect
    /// applied in one lifetime cannot be re-applied in the next.
    #[test]
    fn cam_guards_survive_reopen(addr in 0usize..WORDS, val in 1u64..u64::MAX) {
        let path = unique_tmp();
        let sb = Superblock::describe(&PmConfig::parallel(1, WORDS), 64);
        {
            let backend = MmapBackend::create(&path, sb).unwrap();
            let mem = PersistentMemory::with_backend(Box::new(backend), 8);
            mem.cam(addr, 0, val); // effect applies: cell was unset
            mem.flush().unwrap();
        }
        let (backend, _) = MmapBackend::open(&path).unwrap();
        let mem = PersistentMemory::with_backend(Box::new(backend), 8);
        mem.cam(addr, 0, val.wrapping_add(1)); // replay attempt: must fail
        prop_assert_eq!(mem.load(addr), val);
        std::fs::remove_file(&path).unwrap();
    }
}
