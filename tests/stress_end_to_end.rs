//! End-to-end stress: a larger pipeline (sort → prefix-sum → verify)
//! under a combined soft+hard fault adversary with all validators on —
//! the closest thing to the paper's whole story in one run.

use ppm::algs::{prefix_sum_seq, samplesort_pool_words, PrefixSum, SampleSort};
use ppm::core::Machine;
use ppm::pm::{FaultConfig, PmConfig};
use ppm::sched::{Runtime, SchedConfig};

#[test]
fn sort_then_scan_pipeline_survives_combined_adversary() {
    let n = 1 << 11;
    let input: Vec<u64> = (0..n as u64)
        .map(|i| (i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 17) % 50_000)
        .collect();

    // Machine 1: samplesort with soft faults and one mid-run death.
    let m1 = Machine::with_pool_words(
        PmConfig::parallel(4, 1 << 24)
            .with_ephemeral_words(128)
            .with_fault(FaultConfig::soft(0.002, 99).with_scheduled_hard_fault(3, 4_000)),
        samplesort_pool_words(n),
    );
    let mut cfg = SchedConfig::with_slots(1 << 14);
    cfg.check_transitions = true;
    let rt1 = Runtime::new(m1, cfg);
    let ss = SampleSort::new(rt1.machine(), n);
    ss.load_input(rt1.machine(), &input);
    let rep1 = rt1.run_or_replay(&ss.comp());
    assert!(rep1.completed(), "sort must complete");
    let sorted = ss.read_output(rt1.machine());
    let mut expect = input.clone();
    expect.sort_unstable();
    assert_eq!(sorted, expect, "sorted correctly under the adversary");

    // Machine 2: prefix sums over the sorted data, different adversary.
    let m2 = Machine::new(
        PmConfig::parallel(3, 1 << 23)
            .with_fault(FaultConfig::soft(0.003, 5).with_scheduled_hard_fault(1, 2_500)),
    );
    let rt2 = Runtime::new(m2, SchedConfig::with_slots(1 << 14));
    let ps = PrefixSum::new(rt2.machine(), n);
    ps.load_input(rt2.machine(), &sorted);
    let rep2 = rt2.run_or_replay(&ps.comp());
    assert!(rep2.completed(), "scan must complete");
    assert_eq!(ps.read_output(rt2.machine()), prefix_sum_seq(&sorted));

    // The whole pipeline absorbed faults without correctness loss.
    let total_faults = rep1.stats().soft_faults
        + rep1.stats().hard_faults
        + rep2.stats().soft_faults
        + rep2.stats().hard_faults;
    assert!(total_faults > 0, "the adversary must actually have fired");
}
