//! Property-based tests for the Theorem 3.2–3.4 simulations: on arbitrary
//! inputs and fault seeds, the PM-model execution is indistinguishable
//! from the native one.

use ppm::core::Machine;
use ppm::pm::{FaultConfig, PmConfig};
use ppm::sim::ram::programs::{bubble_sort, sum_array};
use ppm::sim::{run_both, run_native_cache, simulate_cache_on_pm, AccessPattern, CachePmLayout};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Theorem 3.2 as a property: any input array, any fault seed —
    /// identical final memory and registers.
    #[test]
    fn ram_simulation_equivalence_sum(
        data in prop::collection::vec(-1000i64..1000, 1..60),
        seed in any::<u64>(),
        f in 0.0f64..0.03,
    ) {
        let machine = Machine::new(PmConfig::parallel(1, 1 << 20).with_fault(
            if f == 0.0 { FaultConfig::none() } else { FaultConfig::soft(f, seed) },
        ));
        let mut init = data.clone();
        init.push(0);
        let (native, report, pm_mem) = run_both(&machine, &sum_array(data.len()), &init, 1 << 22);
        prop_assert!(native.halted && report.halted);
        prop_assert_eq!(report.regs, native.regs);
        prop_assert_eq!(pm_mem[data.len()], data.iter().sum::<i64>());
    }

    /// The Load/Store-heavy program: sorting on the simulated RAM under
    /// faults produces exactly the sorted array.
    #[test]
    fn ram_simulation_equivalence_bubble_sort(
        data in prop::collection::vec(0i64..100, 2..24),
        seed in any::<u64>(),
    ) {
        let machine = Machine::new(
            PmConfig::parallel(1, 1 << 20).with_fault(FaultConfig::soft(0.01, seed)),
        );
        let (native, report, pm_mem) =
            run_both(&machine, &bubble_sort(data.len()), &data, 1 << 22);
        prop_assert!(native.halted && report.halted);
        let mut expect = data.clone();
        expect.sort_unstable();
        prop_assert_eq!(pm_mem, expect);
    }

    /// Theorem 3.4 as a property: arbitrary random traces and geometries —
    /// identical final memory, bounded work.
    #[test]
    fn cache_simulation_equivalence(
        n in 50usize..600,
        range_blocks in 4usize..40,
        seed in any::<u64>(),
        f in 0.0f64..0.01,
    ) {
        let b = 8usize;
        let m_sim = 64usize;
        let range = range_blocks * b;
        let pattern = AccessPattern::Random { n, range, seed };
        let machine = Machine::new(
            PmConfig::parallel(1, 1 << 20)
                .with_block_size(b)
                .with_ephemeral_words(m_sim)
                .with_fault(if f == 0.0 { FaultConfig::none() } else { FaultConfig::soft(f, seed) }),
        );
        let layout = CachePmLayout::new(&machine, range, m_sim);
        simulate_cache_on_pm(&machine, &pattern, layout).unwrap();
        let mut native_mem = vec![0u64; range];
        run_native_cache(&pattern, m_sim, b, &mut native_mem);
        prop_assert_eq!(layout.read_memory(&machine, range), native_mem);
    }
}
