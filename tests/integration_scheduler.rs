//! Cross-crate integration: the fault-tolerant scheduler driving real
//! fork-join computations under randomized soft- and hard-fault
//! adversaries, with strict validation and Figure 4 transition checking.

use ppm::core::{comp_dyn, comp_fork2, comp_nop, comp_step, par_all, Comp, Machine};
use ppm::pm::{FaultConfig, PmConfig, ProcCtx, Region};
use ppm::sched::{ProcOutcome, Runtime, SchedConfig, SessionReport};

fn marker_tasks(r: Region, n: usize) -> Comp {
    par_all(
        (0..n)
            .map(|i| comp_step("mark", move |ctx: &mut ProcCtx| ctx.pwrite(r.at(i), 1)))
            .collect(),
    )
}

fn assert_all_marked(m: &Machine, r: Region, n: usize, tag: &str) {
    for i in 0..n {
        assert_eq!(
            m.mem().load(r.at(i)),
            1,
            "{tag}: task {i} must run exactly once"
        );
    }
}

/// Runs a closure computation on a fresh session over `m`.
fn run(m: Machine, comp: &Comp, cfg: SchedConfig) -> (Runtime, SessionReport) {
    let rt = Runtime::new(m, cfg);
    let rep = rt.run_or_replay(comp);
    (rt, rep)
}

/// An unbalanced recursive computation: a "spine" that forks a leaf at
/// every level — the worst case for steal distribution.
fn skewed(r: Region, i: usize, n: usize) -> Comp {
    if i >= n {
        return comp_nop();
    }
    comp_dyn("spine", move |_ctx| {
        Ok(comp_fork2(
            comp_step("leaf", move |ctx: &mut ProcCtx| ctx.pwrite(r.at(i), 1)),
            skewed(r, i + 1, n),
        ))
    })
}

#[test]
fn balanced_fanout_with_transition_checking_across_proc_counts() {
    for procs in [1, 2, 3, 4, 8] {
        let m = Machine::new(PmConfig::parallel(procs, 1 << 21));
        let n = 96;
        let r = m.alloc_region(n);
        let mut cfg = SchedConfig::with_slots(1 << 11);
        cfg.check_transitions = true;
        let (rt, rep) = run(m, &marker_tasks(r, n), cfg);
        assert!(rep.completed(), "P={procs}");
        assert_all_marked(rt.machine(), r, n, &format!("P={procs}"));
    }
}

#[test]
fn skewed_spine_distributes_over_steals() {
    let m = Machine::new(PmConfig::parallel(4, 1 << 21));
    let n = 64;
    let r = m.alloc_region(n);
    let (rt, rep) = run(m, &skewed(r, 0, n), SchedConfig::with_slots(1 << 11));
    assert!(rep.completed());
    assert_all_marked(rt.machine(), r, n, "skewed");
}

#[test]
fn randomized_soft_fault_storm() {
    // Many seeds, meaningful fault rate: every capsule type in the
    // scheduler gets restarted somewhere across this sweep.
    for seed in 0..12 {
        let m =
            Machine::new(PmConfig::parallel(4, 1 << 21).with_fault(FaultConfig::soft(0.03, seed)));
        let n = 40;
        let r = m.alloc_region(n);
        let mut cfg = SchedConfig::with_slots(1 << 11);
        cfg.check_transitions = true;
        let (rt, rep) = run(m, &marker_tasks(r, n), cfg);
        assert!(rep.completed(), "seed {seed}");
        assert!(rep.stats().soft_faults > 0, "seed {seed} must see faults");
        assert_all_marked(rt.machine(), r, n, &format!("seed {seed}"));
    }
}

#[test]
fn mixed_hard_and_soft_faults_random_placement() {
    // Probabilistic hard faults: up to P-1 processors may die anywhere,
    // including inside scheduler capsules. The run completes unless all
    // die; either way no task is lost or duplicated.
    let mut completed_with_deaths = 0;
    for seed in 0..16 {
        let m = Machine::new(
            PmConfig::parallel(4, 1 << 21).with_fault(FaultConfig::mixed(0.01, 0.02, seed)),
        );
        let n = 48;
        let r = m.alloc_region(n);
        let (rt, rep) = run(m, &marker_tasks(r, n), SchedConfig::with_slots(1 << 11));
        if rep.completed() {
            assert_all_marked(rt.machine(), r, n, &format!("seed {seed}"));
            if rep.dead_procs() > 0 {
                completed_with_deaths += 1;
            }
        } else {
            assert_eq!(rep.dead_procs(), 4, "seed {seed}: only all-dead may fail");
        }
    }
    assert!(
        completed_with_deaths > 0,
        "the sweep should exercise completion despite deaths"
    );
}

#[test]
fn adversarial_hard_fault_placements_on_root() {
    // Kill the root processor at many different points in its life: while
    // running user code, while pushing, while popping, while clearing.
    for at in [5u64, 12, 20, 35, 60, 90, 140, 200, 300] {
        let m = Machine::new(
            PmConfig::parallel(3, 1 << 21)
                .with_fault(FaultConfig::none().with_scheduled_hard_fault(0, at)),
        );
        let n = 32;
        let r = m.alloc_region(n);
        let (rt, rep) = run(m, &marker_tasks(r, n), SchedConfig::with_slots(1 << 11));
        assert!(rep.completed(), "death at access {at}");
        assert_eq!(rep.run_report().outcomes[0], ProcOutcome::Dead);
        assert_all_marked(rt.machine(), r, n, &format!("death@{at}"));
    }
}

#[test]
fn cascading_deaths_during_recovery() {
    // The first thief to adopt a dead processor's thread dies too; the
    // thread must be adopted again (thief-of-thief, Lemma A.9's chain).
    let m = Machine::new(
        PmConfig::parallel(4, 1 << 21).with_fault(
            FaultConfig::none()
                .with_scheduled_hard_fault(0, 30)
                .with_scheduled_hard_fault(1, 120)
                .with_scheduled_hard_fault(2, 260),
        ),
    );
    let n = 48;
    let r = m.alloc_region(n);
    let (rt, rep) = run(m, &marker_tasks(r, n), SchedConfig::with_slots(1 << 11));
    assert!(rep.completed());
    assert_eq!(rep.dead_procs(), 3);
    assert_all_marked(rt.machine(), r, n, "cascade");
}

#[test]
fn deep_sequential_chain_under_faults() {
    // A single thread of many capsules (no forks after the first): tests
    // the install/restart path rather than stealing.
    let m = Machine::new(PmConfig::parallel(2, 1 << 21).with_fault(FaultConfig::soft(0.02, 9)));
    let r = m.alloc_region(256);
    let chain: Vec<Comp> = (0..200)
        .map(|i| {
            comp_step("link", move |ctx: &mut ProcCtx| {
                let prev = if i == 0 { 0 } else { ctx.pread(r.at(i - 1))? };
                ctx.pwrite(r.at(i), prev + 1)
            })
        })
        .collect();
    let (rt, rep) = run(
        m,
        &ppm::core::seq_all(chain),
        SchedConfig::with_slots(1 << 11),
    );
    assert!(rep.completed());
    assert_eq!(
        rt.machine().mem().load(r.at(199)),
        200,
        "each link applied exactly once"
    );
}

#[test]
fn work_term_grows_mildly_with_fault_rate() {
    // Theorem 6.2's work term: E[W_f] <= W / (1 - C f). With C ~ 8 and
    // f = 0.01, the factor is ~1.09. Measured at P = 1 so the total is
    // not polluted by idle processors' steal-loop polling (which scales
    // with wall-clock time, not with the computation's work — the P > 1
    // accounting of that term is ABP's steal-attempt bound, exercised by
    // the E4 experiment instead).
    let work = |f: f64, seed: u64| {
        let m = Machine::new(PmConfig::parallel(1, 1 << 21).with_fault(if f == 0.0 {
            FaultConfig::none()
        } else {
            FaultConfig::soft(f, seed)
        }));
        let n = 64;
        let r = m.alloc_region(n);
        let (_rt, rep) = run(m, &marker_tasks(r, n), SchedConfig::with_slots(1 << 11));
        assert!(rep.completed());
        rep.stats().total_work()
    };
    let w0 = work(0.0, 0);
    let wf: u64 = (0..5).map(|s| work(0.01, s)).sum::<u64>() / 5;
    assert!(
        (wf as f64) < 1.3 * w0 as f64,
        "E[W_f] = {wf} should be within ~1.1x of W = {w0}"
    );
}
