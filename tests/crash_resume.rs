//! Crash **resume**: a run of a registered persistent-capsule computation
//! dies mid-flight, a fresh `Runtime` session opens the durable file, and
//! `Runtime::run_or_recover` rehydrates the persisted deque entries
//! through the capsule registry — resuming the crash frontier instead of
//! replaying from the root.
//!
//! Death is simulated with scheduled hard faults killing every processor
//! (the all-processors-hard-fault event that models `kill -9`), after
//! which the session is dropped and the file reopened exactly as a fresh
//! process would (`examples/crash_resume.rs` performs the real-SIGKILL
//! version of the same scenario). With one processor the access schedule
//! is fully deterministic, so the assertions are exact.
//!
//! All four §7 algorithm families are exercised: prefix sums (the
//! deterministic strict-inequality case), samplesort and matmul (the two
//! newly ported pipelines), and mergesort implicitly inside samplesort.

#![cfg(unix)]

use ppm::algs::{matmul_seq, prefix_sum_seq, samplesort_pool_words, MatMul, PrefixSum, SampleSort};
use ppm::pm::{FaultConfig, PmConfig, Word};
use ppm::sched::{Runtime, RuntimeConfig, SessionMode};

const N: usize = 512;
const WORDS: usize = 1 << 20;
const SLOTS: usize = 1 << 12;

// Guarded temp paths: removed on drop, so failing assertions clean up too.
fn tmp(tag: &str) -> ppm::pm::TempMachineFile {
    ppm::pm::TempMachineFile::new(&format!("crash-resume-{tag}"))
}

fn input() -> Vec<Word> {
    (0..N as u64).map(|i| i.wrapping_mul(31) % 1009).collect()
}

fn cfg_with(pm: PmConfig) -> RuntimeConfig {
    RuntimeConfig::new(pm).with_slots(SLOTS)
}

/// Capsules a complete from-root run of the workload executes (the replay
/// cost a resume must beat).
fn full_run_capsules() -> u64 {
    let rt = Runtime::volatile(cfg_with(PmConfig::parallel(1, WORDS)));
    let ps = PrefixSum::new(rt.machine(), N);
    ps.load_input(rt.machine(), &input());
    let rep = rt.run_or_recover(&ps.pcomp());
    assert!(rep.completed());
    rep.stats().capsule_completions
}

/// Runs the workload on a durable session with a hard fault at access
/// `kill_at` (death mid-run when it fires), then recovers in a fresh
/// session. Returns `(mode, resumed, recovery_capsules)`.
fn crash_and_recover(tag: &str, kill_at: u64) -> Option<(SessionMode, usize, u64)> {
    let path = tmp(tag);
    let _ = std::fs::remove_file(&path);
    let died = {
        let pm = PmConfig::parallel(1, WORDS)
            .with_fault(FaultConfig::none().with_scheduled_hard_fault(0, kill_at));
        let rt = Runtime::create(&path, cfg_with(pm)).expect("create durable session");
        let ps = PrefixSum::new(rt.machine(), N);
        ps.load_input(rt.machine(), &input());
        !rt.run_or_recover(&ps.pcomp()).completed()
    };
    if !died {
        // The schedule outlived the computation; nothing to recover.
        let _ = std::fs::remove_file(&path);
        return None;
    }

    // --- the recovering process's view ---
    let rt = Runtime::open(&path, cfg_with(PmConfig::parallel(1, WORDS))).expect("open session");
    assert!(rt.is_recovery());
    assert_eq!(rt.machine().epoch(), 2);
    let ps = PrefixSum::new(rt.machine(), N);
    // Input is already in the file; the deterministic reload is idempotent.
    ps.load_input(rt.machine(), &input());
    let rec = rt.run_or_recover(&ps.pcomp());
    assert!(rec.completed(), "kill_at={kill_at}: recovery must finish");
    assert!(
        !rec.already_complete(),
        "kill_at={kill_at}: the dead run must not have finished"
    );
    let run = rec.run.as_ref().expect("re-driven run report");
    assert_eq!(
        ps.read_output(rt.machine()),
        prefix_sum_seq(&input()),
        "kill_at={kill_at}: recovered output must match the oracle"
    );
    let _ = std::fs::remove_file(&path);
    Some((rec.mode, rec.resumed, run.stats.capsule_completions))
}

#[test]
fn killed_run_is_resumed_not_replayed() {
    let full = full_run_capsules();
    // Deterministic single-proc schedule: kill points spread across the
    // run. Every recovery must be correct; at least one mid-run kill must
    // take the resume path and beat a from-root replay.
    let mut cheap_resumes = 0usize;
    let mut died_runs = 0usize;
    for (i, kill_at) in [40u64, 400, 1200, 2400, 4000, 6000].into_iter().enumerate() {
        let Some((mode, resumed, capsules)) = crash_and_recover(&format!("k{i}"), kill_at) else {
            continue;
        };
        died_runs += 1;
        if mode == SessionMode::Resumed {
            assert!(
                resumed > 0,
                "kill_at={kill_at}: resumed mode must re-plant entries"
            );
            // A kill at the very first capsules resumes the root itself,
            // costing a full run plus the popBottom capsules that claim
            // each re-planted seed; any later kill must pay only for what
            // was lost.
            let seed_overhead = 4 * resumed as u64;
            assert!(
                capsules <= full + seed_overhead,
                "kill_at={kill_at}: resume ({capsules} capsules) must never exceed \
                 a from-root replay ({full}) plus the per-seed claim cost"
            );
            if capsules < full {
                cheap_resumes += 1;
            }
        }
    }
    assert!(
        died_runs >= 3,
        "kill schedule must catch the run mid-flight"
    );
    assert!(
        cheap_resumes >= 1,
        "at least one mid-run kill must resume with strictly fewer capsules \
         than a from-root replay"
    );
}

#[test]
fn corrupted_frame_falls_back_to_root_replay() {
    // Checkpointing is disabled on both sessions: with records available
    // a smashed frontier would resume from the newest checkpoint instead
    // (tests/checkpoint.rs covers that path); this test pins the
    // last-resort root-replay behavior.
    let no_ckpt =
        |pm: PmConfig| cfg_with(pm).with_checkpoint(ppm::sched::CheckpointPolicy::disabled());
    let path = tmp("fallback");
    let _ = std::fs::remove_file(&path);
    {
        let pm = PmConfig::parallel(1, WORDS)
            .with_fault(FaultConfig::none().with_scheduled_hard_fault(0, 2400));
        let rt = Runtime::create(&path, no_ckpt(pm)).expect("create durable session");
        let ps = PrefixSum::new(rt.machine(), N);
        ps.load_input(rt.machine(), &input());
        let rep = rt.run_or_recover(&ps.pcomp());
        assert!(!rep.completed(), "the run must die mid-flight");
    }

    let rt = Runtime::open(&path, no_ckpt(PmConfig::parallel(1, WORDS))).expect("open session");
    // Smash the restart pointer's frame header: the frontier is no longer
    // fully rehydratable, so recovery must degrade to replay-from-root —
    // cleanly, not with a panic.
    let active = rt.machine().active_handle(0);
    assert_ne!(active, 0, "the dead run left a restart pointer");
    rt.machine().mem().store(active as usize, 0xBAAD_F00D);

    let ps = PrefixSum::new(rt.machine(), N);
    ps.load_input(rt.machine(), &input());
    let rec = rt.run_or_recover(&ps.pcomp());
    assert_eq!(rec.mode, SessionMode::Replayed);
    assert_eq!(rec.resumed, 0);
    let reason = rec.fallback_reason.as_ref().expect("fallback reason");
    assert!(
        matches!(reason, ppm::sched::FallbackReason::Rehydrate { .. }),
        "smashed frame must surface as a structured rehydration failure, got {reason}"
    );
    assert!(rec.completed());
    assert_eq!(ps.read_output(rt.machine()), prefix_sum_seq(&input()));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn multi_proc_crash_recovers_correctly_in_either_mode() {
    // With several OS threads the kill lands nondeterministically, so this
    // asserts correctness (exactly-once effects, oracle-equal output) in
    // whichever mode recovery chose.
    let path = tmp("mp");
    let _ = std::fs::remove_file(&path);
    let died = {
        let pm = PmConfig::parallel(4, WORDS).with_fault(
            FaultConfig::none()
                .with_scheduled_hard_fault(0, 900)
                .with_scheduled_hard_fault(1, 700)
                .with_scheduled_hard_fault(2, 1100)
                .with_scheduled_hard_fault(3, 800),
        );
        let rt = Runtime::create(&path, cfg_with(pm)).expect("create durable session");
        let ps = PrefixSum::new(rt.machine(), N);
        ps.load_input(rt.machine(), &input());
        !rt.run_or_recover(&ps.pcomp()).completed()
    };
    if died {
        let rt =
            Runtime::open(&path, cfg_with(PmConfig::parallel(4, WORDS))).expect("open session");
        let ps = PrefixSum::new(rt.machine(), N);
        ps.load_input(rt.machine(), &input());
        let rec = rt.run_or_recover(&ps.pcomp());
        assert!(rec.completed());
        assert_eq!(ps.read_output(rt.machine()), prefix_sum_seq(&input()));
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn recovering_a_clean_run_reports_already_complete() {
    let path = tmp("clean");
    let _ = std::fs::remove_file(&path);
    {
        let rt = Runtime::create(&path, cfg_with(PmConfig::parallel(2, WORDS))).unwrap();
        let ps = PrefixSum::new(rt.machine(), N);
        ps.load_input(rt.machine(), &input());
        assert!(rt.run_or_recover(&ps.pcomp()).completed());
        rt.mark_clean().unwrap();
    }
    let rt = Runtime::open(&path, cfg_with(PmConfig::parallel(2, WORDS))).unwrap();
    let ps = PrefixSum::new(rt.machine(), N);
    let rec = rt.run_or_recover(&ps.pcomp());
    assert!(rec.already_complete());
    assert_eq!(rec.mode, SessionMode::AlreadyComplete);
    assert!(rec.run.is_none());
    assert_eq!(ps.read_output(rt.machine()), prefix_sum_seq(&input()));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn legacy_closure_session_still_replays_with_unified_report() {
    // The pre-existing closure path keeps working through the same
    // session object, and self-describes as a replay.
    let path = tmp("legacy");
    let _ = std::fs::remove_file(&path);
    let build_comp = |r: ppm::pm::Region| {
        ppm::core::par_all(
            (0..32)
                .map(|i| {
                    ppm::core::comp_step("mark", move |ctx: &mut ppm::pm::ProcCtx| {
                        ctx.pcam(r.at(i), 0, i as Word + 1)
                    })
                })
                .collect(),
        )
    };
    let markers = {
        let pm = PmConfig::parallel(1, WORDS)
            .with_fault(FaultConfig::none().with_scheduled_hard_fault(0, 300));
        let rt = Runtime::create(&path, cfg_with(pm)).unwrap();
        let r = rt.machine().alloc_region(64);
        let rep = rt.run_or_replay(&build_comp(r));
        assert_eq!(rep.mode, SessionMode::FreshRun);
        assert!(!rep.completed());
        r
    };
    let rt = Runtime::open(&path, cfg_with(PmConfig::parallel(1, WORDS))).unwrap();
    let r = rt.machine().alloc_region(64);
    assert_eq!(r, markers);
    let rec = rt.run_or_replay(&build_comp(r));
    assert!(rec.completed());
    assert_eq!(rec.mode, SessionMode::Replayed);
    assert_eq!(rec.resumed, 0);
    assert!(matches!(
        rec.fallback_reason,
        Some(ppm::sched::FallbackReason::LegacyClosures)
    ));
    for i in 0..32 {
        assert_eq!(
            rt.machine().mem().load(r.at(i)),
            i as Word + 1,
            "marker {i}"
        );
    }
    let _ = std::fs::remove_file(&path);
}

// ====================================================================
// Samplesort and matmul: the newly ported pipelines resume too
// ====================================================================

fn ss_input(n: usize) -> Vec<Word> {
    (0..n as u64)
        .map(|i| {
            let x = i.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(17);
            (x ^ (x >> 31)) % 10_000
        })
        .collect()
}

fn samplesort_cfg(n: usize, fault: FaultConfig) -> RuntimeConfig {
    RuntimeConfig::new(
        PmConfig::parallel(1, 1 << 22)
            .with_ephemeral_words(64)
            .with_fault(fault),
    )
    .with_pool_words(samplesort_pool_words(n))
    .with_slots(1 << 13)
}

#[test]
fn killed_samplesort_resumes_mid_pipeline() {
    let n = 700;
    let data = ss_input(n);
    let mut expect = data.clone();
    expect.sort_unstable();
    // Kill points spread across the nine-phase pipeline (row sorts,
    // sampling, pivots, scatter, bucket recursion). Every recovery must
    // sort correctly; at least one must take the Resumed path.
    let mut resumed_runs = 0usize;
    let mut died_runs = 0usize;
    for (i, kill_at) in [600u64, 2000, 6000, 12_000, 20_000].into_iter().enumerate() {
        let path = tmp(&format!("ss{i}"));
        let _ = std::fs::remove_file(&path);
        let died = {
            let fault = FaultConfig::none().with_scheduled_hard_fault(0, kill_at);
            let rt = Runtime::create(&path, samplesort_cfg(n, fault)).unwrap();
            let ss = SampleSort::new(rt.machine(), n);
            ss.load_input(rt.machine(), &data);
            !rt.run_or_recover(&ss.pcomp()).completed()
        };
        if !died {
            let _ = std::fs::remove_file(&path);
            continue;
        }
        died_runs += 1;
        let rt = Runtime::open(&path, samplesort_cfg(n, FaultConfig::none())).unwrap();
        let ss = SampleSort::new(rt.machine(), n);
        ss.load_input(rt.machine(), &data);
        let rec = rt.run_or_recover(&ss.pcomp());
        assert!(rec.completed(), "kill_at={kill_at}");
        assert_eq!(
            ss.read_output(rt.machine()),
            expect,
            "kill_at={kill_at}: recovered sort must match the oracle"
        );
        if rec.mode == SessionMode::Resumed {
            assert!(rec.resumed > 0, "kill_at={kill_at}");
            resumed_runs += 1;
        }
        let _ = std::fs::remove_file(&path);
    }
    assert!(
        died_runs >= 3,
        "kill schedule must catch samplesort mid-run"
    );
    assert!(
        resumed_runs >= 1,
        "at least one samplesort kill must resume with Resumed mode"
    );
}

#[test]
fn killed_matmul_resumes_mid_recursion() {
    let n = 16;
    let m_eph = 64; // base_dim 4: two recursion levels
    let a: Vec<Word> = (0..(n * n) as u64).map(|i| i % 97).collect();
    let b: Vec<Word> = (0..(n * n) as u64).map(|i| (i * 7) % 89).collect();
    let expect = matmul_seq(&a, &b, n);
    let cfg = |fault: FaultConfig| {
        RuntimeConfig::new(
            PmConfig::parallel(1, 1 << 22)
                .with_ephemeral_words(m_eph)
                .with_fault(fault),
        )
        .with_pool_words(ppm::algs::matmul_pool_words(n, m_eph))
        .with_slots(1 << 13)
    };
    let mut resumed_runs = 0usize;
    let mut died_runs = 0usize;
    for (i, kill_at) in [400u64, 1500, 4000, 9000].into_iter().enumerate() {
        let path = tmp(&format!("mm{i}"));
        let _ = std::fs::remove_file(&path);
        let died = {
            let rt = Runtime::create(
                &path,
                cfg(FaultConfig::none().with_scheduled_hard_fault(0, kill_at)),
            )
            .unwrap();
            let mm = MatMul::new(rt.machine(), n);
            mm.load_inputs(rt.machine(), &a, &b);
            !rt.run_or_recover(&mm.pcomp()).completed()
        };
        if !died {
            let _ = std::fs::remove_file(&path);
            continue;
        }
        died_runs += 1;
        let rt = Runtime::open(&path, cfg(FaultConfig::none())).unwrap();
        let mm = MatMul::new(rt.machine(), n);
        mm.load_inputs(rt.machine(), &a, &b);
        let rec = rt.run_or_recover(&mm.pcomp());
        assert!(rec.completed(), "kill_at={kill_at}");
        assert_eq!(
            mm.read_output(rt.machine()),
            expect,
            "kill_at={kill_at}: recovered product must match the oracle"
        );
        if rec.mode == SessionMode::Resumed {
            assert!(rec.resumed > 0, "kill_at={kill_at}");
            resumed_runs += 1;
        }
        let _ = std::fs::remove_file(&path);
    }
    assert!(died_runs >= 2, "kill schedule must catch matmul mid-run");
    assert!(
        resumed_runs >= 1,
        "at least one matmul kill must resume with Resumed mode"
    );
}
