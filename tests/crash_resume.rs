//! Crash **resume**: a run of a registered persistent-capsule computation
//! dies mid-flight, a fresh machine instance reopens the durable file, and
//! `recover_persistent` rehydrates the persisted deque entries through the
//! capsule registry — resuming the crash frontier instead of replaying
//! from the root.
//!
//! Death is simulated with scheduled hard faults killing every processor
//! (the all-processors-hard-fault event that models `kill -9`), after
//! which the `Machine` is dropped and the file reopened exactly as a fresh
//! process would (`examples/crash_resume.rs` performs the real-SIGKILL
//! version of the same scenario). With one processor the access schedule
//! is fully deterministic, so the assertions are exact.

#![cfg(unix)]

use ppm::algs::{prefix_sum_seq, PrefixSum};
use ppm::core::Machine;
use ppm::pm::{FaultConfig, PmConfig, Word};
use ppm::sched::{recover_persistent, run_computation, run_persistent, RecoveryMode, SchedConfig};

const N: usize = 512;
const WORDS: usize = 1 << 20;
const SLOTS: usize = 1 << 12;

fn tmp(tag: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("ppm-crash-resume-{}-{tag}.ppm", std::process::id()));
    p
}

fn input() -> Vec<Word> {
    (0..N as u64).map(|i| i.wrapping_mul(31) % 1009).collect()
}

fn sched_cfg() -> SchedConfig {
    SchedConfig::with_slots(SLOTS)
}

/// Capsules a complete from-root run of the workload executes (the replay
/// cost a resume must beat).
fn full_run_capsules() -> u64 {
    let m = Machine::new(PmConfig::parallel(1, WORDS));
    let ps = PrefixSum::new(&m, N);
    ps.load_input(&m, &input());
    let rep = run_persistent(&m, &ps.pcomp(), &sched_cfg());
    assert!(rep.completed);
    rep.stats.capsule_completions
}

/// Runs the workload on a durable machine with a hard fault at access
/// `kill_at` (death mid-run when it fires), then recovers in a fresh
/// machine instance. Returns `(died, report_mode, resumed, recovery_capsules)`.
fn crash_and_recover(tag: &str, kill_at: u64) -> Option<(RecoveryMode, usize, u64)> {
    let path = tmp(tag);
    let _ = std::fs::remove_file(&path);
    let died = {
        let cfg = PmConfig::parallel(1, WORDS)
            .with_fault(FaultConfig::none().with_scheduled_hard_fault(0, kill_at));
        let m = Machine::create_durable(cfg, &path).expect("create durable machine");
        let ps = PrefixSum::new(&m, N);
        ps.load_input(&m, &input());
        let rep = run_persistent(&m, &ps.pcomp(), &sched_cfg());
        !rep.completed
    };
    if !died {
        // The schedule outlived the computation; nothing to recover.
        let _ = std::fs::remove_file(&path);
        return None;
    }

    // --- the recovering process's view ---
    let m = Machine::reopen(&path).expect("reopen durable file");
    assert_eq!(m.epoch(), 2);
    let ps = PrefixSum::new(&m, N);
    // Input is already in the file; the deterministic reload is idempotent.
    ps.load_input(&m, &input());
    let rec = recover_persistent(&m, &ps.pcomp(), &sched_cfg());
    assert!(rec.completed(), "kill_at={kill_at}: recovery must finish");
    assert!(
        !rec.already_complete,
        "kill_at={kill_at}: the dead run must not have finished"
    );
    let run = rec.run.as_ref().expect("re-driven run report");
    assert_eq!(
        ps.read_output(&m),
        prefix_sum_seq(&input()),
        "kill_at={kill_at}: recovered output must match the oracle"
    );
    let _ = std::fs::remove_file(&path);
    Some((rec.mode, rec.resumed, run.stats.capsule_completions))
}

#[test]
fn killed_run_is_resumed_not_replayed() {
    let full = full_run_capsules();
    // Deterministic single-proc schedule: kill points spread across the
    // run. Every recovery must be correct; at least one mid-run kill must
    // take the resume path and beat a from-root replay.
    let mut cheap_resumes = 0usize;
    let mut died_runs = 0usize;
    for (i, kill_at) in [40u64, 400, 1200, 2400, 4000, 6000].into_iter().enumerate() {
        let Some((mode, resumed, capsules)) = crash_and_recover(&format!("k{i}"), kill_at) else {
            continue;
        };
        died_runs += 1;
        if mode == RecoveryMode::Resumed {
            assert!(
                resumed > 0,
                "kill_at={kill_at}: resumed mode must re-plant entries"
            );
            // A kill at the very first capsules resumes the root itself,
            // costing a full run plus the popBottom capsules that claim
            // each re-planted seed; any later kill must pay only for what
            // was lost.
            let seed_overhead = 4 * resumed as u64;
            assert!(
                capsules <= full + seed_overhead,
                "kill_at={kill_at}: resume ({capsules} capsules) must never exceed \
                 a from-root replay ({full}) plus the per-seed claim cost"
            );
            if capsules < full {
                cheap_resumes += 1;
            }
        }
    }
    assert!(
        died_runs >= 3,
        "kill schedule must catch the run mid-flight"
    );
    assert!(
        cheap_resumes >= 1,
        "at least one mid-run kill must resume with strictly fewer capsules \
         than a from-root replay"
    );
}

#[test]
fn corrupted_frame_falls_back_to_root_replay() {
    let path = tmp("fallback");
    let _ = std::fs::remove_file(&path);
    {
        let cfg = PmConfig::parallel(1, WORDS)
            .with_fault(FaultConfig::none().with_scheduled_hard_fault(0, 2400));
        let m = Machine::create_durable(cfg, &path).expect("create durable machine");
        let ps = PrefixSum::new(&m, N);
        ps.load_input(&m, &input());
        let rep = run_persistent(&m, &ps.pcomp(), &sched_cfg());
        assert!(!rep.completed, "the run must die mid-flight");
    }

    let m = Machine::reopen(&path).expect("reopen durable file");
    // Smash the restart pointer's frame header: the frontier is no longer
    // fully rehydratable, so recovery must degrade to replay-from-root —
    // cleanly, not with a panic.
    let active = m.active_handle(0);
    assert_ne!(active, 0, "the dead run left a restart pointer");
    m.mem().store(active as usize, 0xBAAD_F00D);

    let ps = PrefixSum::new(&m, N);
    ps.load_input(&m, &input());
    let rec = recover_persistent(&m, &ps.pcomp(), &sched_cfg());
    assert_eq!(rec.mode, RecoveryMode::Replayed);
    assert_eq!(rec.resumed, 0);
    assert!(rec.fallback_reason.is_some());
    assert!(rec.completed());
    assert_eq!(ps.read_output(&m), prefix_sum_seq(&input()));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn multi_proc_crash_recovers_correctly_in_either_mode() {
    // With several OS threads the kill lands nondeterministically, so this
    // asserts correctness (exactly-once effects, oracle-equal output) in
    // whichever mode recovery chose.
    let path = tmp("mp");
    let _ = std::fs::remove_file(&path);
    let died = {
        let cfg = PmConfig::parallel(4, WORDS).with_fault(
            FaultConfig::none()
                .with_scheduled_hard_fault(0, 900)
                .with_scheduled_hard_fault(1, 700)
                .with_scheduled_hard_fault(2, 1100)
                .with_scheduled_hard_fault(3, 800),
        );
        let m = Machine::create_durable(cfg, &path).expect("create durable machine");
        let ps = PrefixSum::new(&m, N);
        ps.load_input(&m, &input());
        !run_persistent(&m, &ps.pcomp(), &sched_cfg()).completed
    };
    if died {
        let m = Machine::reopen(&path).expect("reopen durable file");
        let ps = PrefixSum::new(&m, N);
        ps.load_input(&m, &input());
        let rec = recover_persistent(&m, &ps.pcomp(), &sched_cfg());
        assert!(rec.completed());
        assert_eq!(ps.read_output(&m), prefix_sum_seq(&input()));
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn recovering_a_clean_run_reports_already_complete() {
    let path = tmp("clean");
    let _ = std::fs::remove_file(&path);
    {
        let m = Machine::create_durable(PmConfig::parallel(2, WORDS), &path).unwrap();
        let ps = PrefixSum::new(&m, N);
        ps.load_input(&m, &input());
        assert!(run_persistent(&m, &ps.pcomp(), &sched_cfg()).completed);
        m.mark_clean().unwrap();
    }
    let m = Machine::reopen(&path).unwrap();
    let ps = PrefixSum::new(&m, N);
    let rec = recover_persistent(&m, &ps.pcomp(), &sched_cfg());
    assert!(rec.already_complete);
    assert_eq!(rec.mode, RecoveryMode::AlreadyComplete);
    assert!(rec.run.is_none());
    assert_eq!(ps.read_output(&m), prefix_sum_seq(&input()));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn legacy_recovery_still_replays_with_new_report_fields() {
    // The pre-existing closure path keeps working and now self-describes
    // as a replay.
    let path = tmp("legacy");
    let _ = std::fs::remove_file(&path);
    let markers = {
        let cfg = PmConfig::parallel(1, WORDS)
            .with_fault(FaultConfig::none().with_scheduled_hard_fault(0, 300));
        let m = Machine::create_durable(cfg, &path).unwrap();
        let r = m.alloc_region(64);
        let comp = ppm::core::par_all(
            (0..32)
                .map(|i| {
                    ppm::core::comp_step("mark", move |ctx: &mut ppm::pm::ProcCtx| {
                        ctx.pcam(r.at(i), 0, i as Word + 1)
                    })
                })
                .collect(),
        );
        let rep = run_computation(&m, &comp, &sched_cfg());
        assert!(!rep.completed);
        r
    };
    let m = Machine::reopen(&path).unwrap();
    let r = m.alloc_region(64);
    assert_eq!(r, markers);
    let comp = ppm::core::par_all(
        (0..32)
            .map(|i| {
                ppm::core::comp_step("mark", move |ctx: &mut ppm::pm::ProcCtx| {
                    ctx.pcam(r.at(i), 0, i as Word + 1)
                })
            })
            .collect(),
    );
    let rec = ppm::sched::recover_computation(&m, &comp, &sched_cfg());
    assert!(rec.completed());
    assert_eq!(rec.mode, RecoveryMode::Replayed);
    assert_eq!(rec.resumed, 0);
    assert!(rec.fallback_reason.is_some());
    for i in 0..32 {
        assert_eq!(m.mem().load(r.at(i)), i as Word + 1, "marker {i}");
    }
    let _ = std::fs::remove_file(&path);
}
