//! Property tests for the durable injector queue: random job batches
//! are published host-side into a service machine file, every volatile
//! handle is dropped (the "crash" — only the `MmapBackend` file
//! survives), and the file is finished by [`cluster::recover`] through
//! a real reopen. The §5 exactly-once claim at the ticket level: every
//! submitted ticket resolves `Done` through exactly one done-CAM win,
//! every job effect lands, and the ring drains to empty.
//!
//! The submit side uses the external-supervisor deployment shape —
//! [`ClusterBuilder::observe`] + [`ClusterObserver::service_queue`] —
//! so these tests also pin that public surface.

#![cfg(unix)]

use std::collections::BTreeSet;
use std::sync::{Arc, Mutex};

use proptest::prelude::*;

use ppm::core::{dsl, CapsuleId, Machine, Persist};
use ppm::pm::{PmConfig, Region, TempMachineFile, Word};
use ppm::sched::cluster::{self, ClusterBuilder, ShardBuild};
use ppm::sched::{InjectorQueue, JobStatus, JobTicket, ServiceConfig, SessionMode};

const PROCS_PER_SHARD: usize = 2;
/// Words each job fills in the shared output region.
const JOB_SLICE: usize = 8;
/// Upper bound on jobs any strategy generates (sizes the output region).
const MAX_JOBS: usize = 8;

/// What the build closure records for the host side: the output region
/// and the job kind's capsule id. Construction determinism guarantees
/// every attaching session (submit-side observer, recovery) re-records
/// the same values.
#[derive(Clone, Copy, Default)]
struct JobKind {
    out: Option<Region>,
    split: Option<CapsuleId>,
}

/// Registers the job computation: `inj/split` fans a span out into
/// `inj/mark` leaves that fill `out[lo..hi]` with `i + 1`. The returned
/// root (required by the `ShardBuild` contract) is never planted in
/// service mode — the registrations and the region allocation are the
/// point — so it gets an empty span.
fn job_build(shared: Arc<Mutex<JobKind>>) -> ShardBuild {
    Arc::new(move |m: &Machine, _shard: usize, k: Word| {
        let out = m.alloc_region(MAX_JOBS * JOB_SLICE);
        let mut set = dsl::CapsuleSet::new(m);
        let leaf = set.define("inj/mark", |st: &dsl::Span<Region>, k, ctx| {
            for i in st.lo..st.hi {
                ctx.pwrite(st.env.at(i), i as u64 + 1)?;
            }
            Ok(dsl::Step::Jump(k))
        });
        let split = set.map_grain("inj/split", 2, leaf);
        let mut shared = shared.lock().unwrap();
        shared.out = Some(out);
        shared.split = Some(split.id());
        split
            .setup(
                m,
                &dsl::Span {
                    env: out,
                    lo: 0,
                    hi: 0,
                },
                dsl::K(k),
            )
            .0
    })
}

/// Encoded `Span<Region>` argument words for job `j`'s slice.
fn span_args(out: Region, job: usize) -> Vec<Word> {
    let mut args = Vec::new();
    dsl::Span {
        env: out,
        lo: job * JOB_SLICE,
        hi: (job + 1) * JOB_SLICE,
    }
    .encode(&mut args);
    args
}

fn service_builder(path: &std::path::Path, slots: usize) -> ClusterBuilder {
    ClusterBuilder::new(path)
        .machine(PmConfig::parallel(PROCS_PER_SHARD, 1 << 21))
        .workers(1)
        .lease_ms(200)
        .deque_slots(1 << 10)
        .service(true)
        .service_config(ServiceConfig::default().with_slots(slots))
}

/// Post-recovery oracle: reopen the file bare and check every ticket
/// and every job effect. Status reads only decode the durable slot
/// state/ticket words (never a capsule frame), so a bare
/// [`InjectorQueue::attach`] without the session's registration replay
/// is sound here — ids written into frames are never consulted.
fn assert_all_done(path: &std::path::Path, tickets: &[JobTicket], out: Region, jobs: usize) {
    let machine = Machine::reopen(path).unwrap();
    let queue = InjectorQueue::attach(&machine).unwrap();
    assert_eq!(queue.depth(), 0, "ring must drain completely");
    for t in tickets {
        assert!(
            matches!(queue.status(*t), JobStatus::Done { .. }),
            "ticket {t:?} must resolve Done, got {:?}",
            queue.status(*t)
        );
    }
    for i in 0..jobs * JOB_SLICE {
        assert_eq!(machine.mem().load(out.at(i)), i as u64 + 1, "job word {i}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Round-trip: submit a random batch, crash before any worker ever
    /// runs, recover. Every ticket survives the reopen and resolves
    /// `Done` exactly once; the second recover is a no-op.
    #[test]
    fn submitted_jobs_survive_a_crash_and_complete_exactly_once(
        n_jobs in 1usize..MAX_JOBS + 1,
        extra_slots in 0usize..4,
    ) {
        let file = TempMachineFile::new("proptest-injector");
        let shared = Arc::new(Mutex::new(JobKind::default()));
        let build = job_build(shared.clone());
        let builder = service_builder(file.path(), n_jobs + extra_slots);

        let tickets = {
            let observer = builder.observe(&build).unwrap();
            let queue = observer.service_queue().expect("service file has a queue");
            let kind = *shared.lock().unwrap();
            let (out, split) = (kind.out.unwrap(), kind.split.unwrap());
            let tickets: Vec<JobTicket> = (0..n_jobs)
                .map(|j| queue.submit(split, &span_args(out, j)).expect("ring has capacity"))
                .collect();
            prop_assert_eq!(queue.depth(), n_jobs, "every published slot visible");
            let slots: BTreeSet<usize> = tickets.iter().map(|t| t.slot).collect();
            prop_assert_eq!(slots.len(), n_jobs, "tickets occupy distinct slots");
            for t in &tickets {
                prop_assert!(
                    matches!(queue.status(*t), JobStatus::InFlight(_)),
                    "pre-crash status must be in flight"
                );
            }
            tickets
        }; // Drop the observer and queue: the crash.

        let rep = cluster::recover(file.path(), &build).unwrap();
        prop_assert!(rep.completed(), "recovery must drain the ring");
        prop_assert_eq!(
            rep.mode,
            SessionMode::Replayed,
            "no frontier exists before any worker ran: service replay scavenges"
        );

        let again = cluster::recover(file.path(), &build).unwrap();
        prop_assert_eq!(again.mode, SessionMode::AlreadyComplete);

        let out = shared.lock().unwrap().out.unwrap();
        assert_all_done(file.path(), &tickets, out, n_jobs);
    }

    /// A full ring backpressures: `submit` returns `WouldBlock` rather
    /// than silently dropping, and the accepted prefix still completes.
    #[test]
    fn a_full_ring_backpressures_and_the_accepted_prefix_completes(
        slots in 2usize..5,
        over in 1usize..4,
    ) {
        let file = TempMachineFile::new("proptest-injector-full");
        let shared = Arc::new(Mutex::new(JobKind::default()));
        let build = job_build(shared.clone());
        let builder = service_builder(file.path(), slots);

        let tickets = {
            let observer = builder.observe(&build).unwrap();
            let queue = observer.service_queue().unwrap();
            let kind = *shared.lock().unwrap();
            let (out, split) = (kind.out.unwrap(), kind.split.unwrap());
            let tickets: Vec<JobTicket> = (0..slots)
                .map(|j| queue.submit(split, &span_args(out, j)).expect("within capacity"))
                .collect();
            for j in 0..over {
                let err = queue
                    .submit(split, &span_args(out, slots + j))
                    .expect_err("full ring must refuse");
                prop_assert_eq!(err.kind(), std::io::ErrorKind::WouldBlock);
            }
            prop_assert_eq!(queue.depth(), slots, "rejected submits left no residue");
            tickets
        };

        let rep = cluster::recover(file.path(), &build).unwrap();
        prop_assert!(rep.completed());
        let out = shared.lock().unwrap().out.unwrap();
        assert_all_done(file.path(), &tickets, out, slots);
    }

    /// Concurrent submitters race the publish CAM: every thread's
    /// tickets land in distinct slots, nothing is lost or double-
    /// published, and recovery completes all of them.
    #[test]
    fn concurrent_submitters_get_distinct_durable_slots(
        threads in 2usize..5,
        per_thread in 1usize..3,
    ) {
        let total = threads * per_thread;
        let file = TempMachineFile::new("proptest-injector-mpmc");
        let shared = Arc::new(Mutex::new(JobKind::default()));
        let build = job_build(shared.clone());
        let builder = service_builder(file.path(), total);

        let tickets = {
            let observer = builder.observe(&build).unwrap();
            let queue = observer.service_queue().unwrap();
            let kind = *shared.lock().unwrap();
            let (out, split) = (kind.out.unwrap(), kind.split.unwrap());
            let tickets: Vec<JobTicket> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..threads)
                    .map(|t| {
                        let queue = queue.clone();
                        scope.spawn(move || {
                            (0..per_thread)
                                .map(|i| {
                                    queue
                                        .submit(split, &span_args(out, t * per_thread + i))
                                        .expect("capacity == total submissions")
                                })
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().unwrap())
                    .collect()
            });
            let slots: BTreeSet<usize> = tickets.iter().map(|t| t.slot).collect();
            prop_assert_eq!(slots.len(), total, "publish CAM must never double-grant a slot");
            let nums: BTreeSet<u64> = tickets.iter().map(|t| t.ticket).collect();
            prop_assert_eq!(nums.len(), total, "ticket numbers are unique");
            prop_assert_eq!(queue.depth(), total);
            tickets
        };

        let rep = cluster::recover(file.path(), &build).unwrap();
        prop_assert!(rep.completed());
        let out = shared.lock().unwrap().out.unwrap();
        assert_all_done(file.path(), &tickets, out, total);
    }
}
