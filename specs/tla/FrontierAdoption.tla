------------------------- MODULE FrontierAdoption -------------------------
(***************************************************************************)
(* TLA+ twin of `crates/sched/src/model/steal.rs`: the Figure 3           *)
(* popTop/helpPopTop steal protocol plus hard-fault adoption of a dead     *)
(* processor's frozen frontier (Appendix A, Lemma A.10).                   *)
(*                                                                         *)
(* This spec abstracts the Rust model one level further: instead of        *)
(* tracking every capsule pc, it tracks where each task *handle* lives —   *)
(* in a deque Job entry, latched in a thief's private continuation, being  *)
(* executed, or frozen on a dead processor — and checks the two            *)
(* conservation laws the explorer enforces:                                *)
(*                                                                         *)
(*   NoLostTask (W1): a spawned, unfinished task is always reachable       *)
(*     from some live processor or adoptable from a dead one.              *)
(*   NoDoubleExecution (W2): a task's work capsule commits at most once.   *)
(*                                                                         *)
(* The names match the Rust model's violation strings and the TLC          *)
(* INVARIANT declarations in FrontierAdoption.cfg one-to-one.              *)
(***************************************************************************)
EXTENDS Naturals, FiniteSets

CONSTANTS Procs,       \* processor ids, e.g. {0, 1}
          Tasks,       \* task handles, e.g. {0, 1}
          CrashBudget  \* how many hard faults to inject, e.g. 1

VARIABLES loc,       \* task -> "Unspawned" | "Deque" | "Latched" | "Exec"
                     \*       | "Frozen" | "Done"
          holder,    \* task -> proc whose deque/latch/frontier holds it
          alive,     \* proc -> BOOLEAN
          adopted,   \* proc -> BOOLEAN (dead frontier already adopted)
          execCount, \* task -> number of times its work capsule committed
          crashes    \* hard faults injected so far

vars == <<loc, holder, alive, adopted, execCount, crashes>>

SomeProc == CHOOSE p \in Procs : TRUE

Init ==
    /\ loc = [t \in Tasks |-> "Unspawned"]
    /\ holder = [t \in Tasks |-> SomeProc]
    /\ alive = [p \in Procs |-> TRUE]
    /\ adopted = [p \in Procs |-> FALSE]
    /\ execCount = [t \in Tasks |-> 0]
    /\ crashes = 0

\* pushBottom: a live processor spawns a task into its own deque.
Spawn(p, t) ==
    /\ alive[p]
    /\ loc[t] = "Unspawned"
    /\ loc' = [loc EXCEPT ![t] = "Deque"]
    /\ holder' = [holder EXCEPT ![t] = p]
    /\ UNCHANGED <<alive, adopted, execCount, crashes>>

\* popTop commit: a thief's CAM on the top entry lands, latching the
\* handle into the thief's private continuation (the Then::CheckJob pc
\* in the Rust model). The Job entry becomes Taken atomically with the
\* latch, so the handle moves rather than duplicates.
StealCommit(thief, t) ==
    /\ alive[thief]
    /\ loc[t] = "Deque"
    /\ loc' = [loc EXCEPT ![t] = "Latched"]
    /\ holder' = [holder EXCEPT ![t] = thief]
    /\ UNCHANGED <<alive, adopted, execCount, crashes>>

\* popBottom commit: the owner takes its own bottom entry straight to
\* execution (no latch interlude on the owner path).
PopBottom(p, t) ==
    /\ alive[p]
    /\ loc[t] = "Deque"
    /\ holder[t] = p
    /\ loc' = [loc EXCEPT ![t] = "Exec"]
    /\ UNCHANGED <<holder, alive, adopted, execCount, crashes>>

\* A latched thief begins executing the stolen task.
BeginExec(p, t) ==
    /\ alive[p]
    /\ loc[t] = "Latched"
    /\ holder[t] = p
    /\ loc' = [loc EXCEPT ![t] = "Exec"]
    /\ UNCHANGED <<holder, alive, adopted, execCount, crashes>>

\* The work capsule commits exactly once; re-execution after a soft
\* fault replays into the same commit (idempotence), so the count only
\* moves 0 -> 1 here. A protocol bug that let two processors hold the
\* same handle would drive execCount to 2 via two distinct Finish paths.
Finish(p, t) ==
    /\ alive[p]
    /\ loc[t] = "Exec"
    /\ holder[t] = p
    /\ loc' = [loc EXCEPT ![t] = "Done"]
    /\ execCount' = [execCount EXCEPT ![t] = execCount[t] + 1]
    /\ UNCHANGED <<holder, alive, adopted, crashes>>

\* Hard fault: the processor dies at a capsule boundary. Everything it
\* holds (deque entries, latched handles, in-flight execution) freezes
\* into its persistent frontier — nothing is lost, because deque state
\* and the latched continuation both live in persistent memory.
Crash(p) ==
    /\ alive[p]
    /\ crashes < CrashBudget
    /\ alive' = [alive EXCEPT ![p] = FALSE]
    /\ loc' = [t \in Tasks |->
                 IF holder[t] = p /\ loc[t] \in {"Deque", "Latched", "Exec"}
                 THEN "Frozen" ELSE loc[t]]
    /\ crashes' = crashes + 1
    /\ UNCHANGED <<holder, adopted, execCount>>

\* Lemma A.10 adoption: a live survivor adopts the *entire* frozen
\* frontier of a dead, not-yet-adopted processor in one step (the Rust
\* model's adoption CAM on the dead proc's seat). Frozen deque entries
\* rejoin the survivor's deque; a frozen latch or execution resumes from
\* its persisted capsule, which replays idempotently (execCount does not
\* advance here — only Finish commits).
Adopt(survivor, dead) ==
    /\ alive[survivor]
    /\ ~alive[dead]
    /\ ~adopted[dead]
    /\ adopted' = [adopted EXCEPT ![dead] = TRUE]
    /\ loc' = [t \in Tasks |->
                 IF holder[t] = dead /\ loc[t] = "Frozen"
                 THEN IF execCount[t] = 0 THEN "Deque" ELSE "Done"
                 ELSE loc[t]]
    /\ holder' = [t \in Tasks |->
                    IF holder[t] = dead /\ loc[t] = "Frozen"
                    THEN survivor ELSE holder[t]]
    /\ UNCHANGED <<alive, execCount, crashes>>

Next ==
    \/ \E p \in Procs, t \in Tasks :
        Spawn(p, t) \/ StealCommit(p, t) \/ PopBottom(p, t)
            \/ BeginExec(p, t) \/ Finish(p, t)
    \/ \E p \in Procs : Crash(p)
    \/ \E s, d \in Procs : s # d /\ Adopt(s, d)

Spec == Init /\ [][Next]_vars

---------------------------------------------------------------------------
(* Invariants — names match the Rust explorer's violation strings. *)

\* W1: every spawned, unfinished task is either held by a live processor
\* or frozen on a dead processor whose frontier is still adoptable.
NoLostTask ==
    \A t \in Tasks :
        loc[t] \in {"Deque", "Latched", "Exec"} => alive[holder[t]]

FrozenAdoptable ==
    \A t \in Tasks :
        loc[t] = "Frozen" => ~alive[holder[t]] /\ ~adopted[holder[t]]

\* W2: the work capsule of each task commits at most once.
NoDoubleExecution ==
    \A t \in Tasks : execCount[t] <= 1

TypeOK ==
    /\ \A t \in Tasks :
        loc[t] \in {"Unspawned", "Deque", "Latched", "Exec", "Frozen", "Done"}
    /\ \A t \in Tasks : holder[t] \in Procs
    /\ crashes \in 0..CrashBudget

===========================================================================
