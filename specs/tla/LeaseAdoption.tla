-------------------------- MODULE LeaseAdoption --------------------------
(***************************************************************************)
(* TLA+ twin of `crates/sched/src/model/lease.rs`: the cross-process      *)
(* lease/heartbeat/tombstone oracle of the sharded runtime                 *)
(* (`crates/sched/src/cluster.rs`).                                        *)
(*                                                                         *)
(* Each shard's worker renews an Alive lease with a deadline; an observer  *)
(* judges a sibling dead when its lease is a tombstone or an expired       *)
(* Alive; the coordinator reaps crashed workers into sticky tombstones;    *)
(* survivors adopt a dead sibling's pending work through a CAM-guarded     *)
(* claim.                                                                  *)
(*                                                                         *)
(* The invariant names match the Rust model's violation strings and the    *)
(* README's verification table one-to-one: TombstoneSticky, NoDoubleClaim, *)
(* NoDoneAdoption.                                                         *)
(***************************************************************************)
EXTENDS Naturals, FiniteSets

CONSTANTS Shards,      \* e.g. {0, 1}
          LeaseTicks,  \* lease validity window in ticks, e.g. 2
          MaxTicks     \* bound on the virtual clock, e.g. 6

VARIABLES now,         \* virtual clock (the Rust Clock trait's now_ms)
          lease,       \* shard -> [state: {"Blank","Alive","Done","Dead"}, deadline: Nat]
          proc,        \* shard -> {"Running","Crashed","Reaped","Exited"}
          marked,      \* observer -> observed -> BOOLEAN (sticky death verdicts)
          work,        \* shard -> "Pending" | shard that claimed it
          tombstoned,  \* shard -> BOOLEAN (ever tombstoned; history)
          doneJudged   \* TRUE if an observer ever judged a Done lease dead

vars == <<now, lease, proc, marked, work, tombstoned, doneJudged>>

Pending == CHOOSE x : x \notin Shards   \* sentinel: work not yet claimed

IsDead(l, t) ==
    \/ l.state = "Dead"
    \/ l.state = "Alive" /\ t > l.deadline

Init ==
    /\ now = 0
    /\ lease = [s \in Shards |-> [state |-> "Alive", deadline |-> LeaseTicks]]
    /\ proc = [s \in Shards |-> "Running"]
    /\ marked = [o \in Shards |-> [s \in Shards |-> FALSE]]
    /\ work = [s \in Shards |-> Pending]
    /\ tombstoned = [s \in Shards |-> FALSE]
    /\ doneJudged = FALSE

Tick ==
    /\ now < MaxTicks
    /\ now' = now + 1
    /\ UNCHANGED <<lease, proc, marked, work, tombstoned, doneJudged>>

\* A running worker renews its own lease (cluster.rs lease_monitor_loop).
Renew(s) ==
    /\ proc[s] = "Running"
    /\ lease' = [lease EXCEPT ![s] = [state |-> "Alive", deadline |-> now + LeaseTicks]]
    /\ UNCHANGED <<now, proc, marked, work, tombstoned, doneJudged>>

\* A running worker claims its own pending work.
ClaimOwn(s) ==
    /\ proc[s] = "Running"
    /\ work[s] = Pending
    /\ work' = [work EXCEPT ![s] = s]
    /\ UNCHANGED <<now, lease, proc, marked, tombstoned, doneJudged>>

\* A worker finishes: lease goes Done, process exits.
Finish(s) ==
    /\ proc[s] = "Running"
    /\ work[s] = s
    /\ lease' = [lease EXCEPT ![s] = [state |-> "Done", deadline |-> 0]]
    /\ proc' = [proc EXCEPT ![s] = "Exited"]
    /\ UNCHANGED <<now, marked, work, tombstoned, doneJudged>>

Crash(s) ==
    /\ proc[s] = "Running"
    /\ proc' = [proc EXCEPT ![s] = "Crashed"]
    /\ UNCHANGED <<now, lease, marked, work, tombstoned, doneJudged>>

\* The coordinator reaps a crashed worker's exit status.
Reap(s) ==
    /\ proc[s] = "Crashed"
    /\ proc' = [proc EXCEPT ![s] = "Reaped"]
    /\ UNCHANGED <<now, lease, marked, work, tombstoned, doneJudged>>

\* The coordinator tombstones a reaped worker's lease. The faithful
\* protocol only tombstones reaped (certainly-dead) workers; the Rust
\* model's drop_tombstone_check mutation removes that guard, and the
\* explorer then produces the 2-step resurrection trace.
Tombstone(s) ==
    /\ proc[s] = "Reaped"
    /\ lease[s].state # "Dead"
    /\ lease' = [lease EXCEPT ![s] = [state |-> "Dead", deadline |-> 0]]
    /\ tombstoned' = [tombstoned EXCEPT ![s] = TRUE]
    /\ UNCHANGED <<now, proc, marked, work, doneJudged>>

\* Observer o judges sibling s dead from its lease (expiry or tombstone).
\* The verdict is sticky. History flag: judging a Done lease dead would
\* let a survivor adopt completed work.
Observe(o, s) ==
    /\ o # s
    /\ proc[o] = "Running"
    /\ ~marked[o][s]
    /\ IsDead(lease[s], now)
    /\ marked' = [marked EXCEPT ![o][s] = TRUE]
    /\ doneJudged' = (doneJudged \/ lease[s].state = "Done")
    /\ UNCHANGED <<now, lease, proc, work, tombstoned>>

\* Observer o adopts dead sibling s's pending work (CAM-guarded claim).
Adopt(o, s) ==
    /\ o # s
    /\ proc[o] = "Running"
    /\ marked[o][s]
    /\ work[s] = Pending
    /\ work' = [work EXCEPT ![s] = o]
    /\ UNCHANGED <<now, lease, proc, marked, tombstoned, doneJudged>>

Next ==
    \/ Tick
    \/ \E s \in Shards :
        Renew(s) \/ ClaimOwn(s) \/ Finish(s) \/ Crash(s) \/ Reap(s) \/ Tombstone(s)
    \/ \E o, s \in Shards : Observe(o, s) \/ Adopt(o, s)

Spec == Init /\ [][Next]_vars

---------------------------------------------------------------------------
(* Invariants — names match the Rust explorer's violation strings. *)

\* Once tombstoned, a lease is Dead forever (no resurrected tombstone).
TombstoneSticky ==
    \A s \in Shards : tombstoned[s] => lease[s].state = "Dead"

\* A sibling only holds s's work if it first recorded a death verdict.
NoDoubleClaim ==
    \A s \in Shards :
        work[s] \notin Shards \/ work[s] = s \/ marked[work[s]][s]

\* No observer ever judged a cleanly-completed (Done) shard dead.
NoDoneAdoption == ~doneJudged

TypeOK ==
    /\ now \in 0..MaxTicks
    /\ \A s \in Shards : lease[s].state \in {"Blank", "Alive", "Done", "Dead"}
    /\ \A s \in Shards : proc[s] \in {"Running", "Crashed", "Reaped", "Exited"}

===========================================================================
