//! Offline shim for the subset of the `proptest` API this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this replacement. It keeps the call-site grammar of the real
//! crate — `proptest! { #![proptest_config(..)] #[test] fn f(x in S) {..} }`,
//! `any::<T>()`, ranges as strategies, `prop::collection::vec`,
//! `prop_assert!` / `prop_assert_eq!` — and runs each property as a
//! deterministic loop of sampled cases. Unlike upstream there is no
//! shrinking: a failing case reports its case index and seed, which is
//! enough to replay it under a debugger since sampling is deterministic.

use std::ops::Range;

/// Runner configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic per-case random source handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Derives a generator from a test-unique seed and the case index.
    pub fn for_case(test_seed: u64, case: u32) -> Self {
        let mut sm = test_seed ^ ((case as u64).wrapping_mul(0xD1B5_4A32_D192_ED03));
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// The next 64 uniformly random bits (xoshiro256**).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        let zone = u64::MAX - (u64::MAX % span);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % span;
            }
        }
    }
}

/// A source of sampled values.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;
    /// Draws one sample.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

/// Strategy for "any value of `T`" — see [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Types with an `any::<T>()` strategy.
pub trait Arbitrary {
    /// Builds a value from 64 uniform bits.
    fn from_bits(bits: u64) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {
        $(impl Arbitrary for $t {
            fn from_bits(bits: u64) -> Self { bits as $t }
        })*
    };
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn from_bits(bits: u64) -> Self {
        bits & 1 == 1
    }
}

/// The strategy producing uniformly arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::from_bits(rng.next_u64())
    }
}

macro_rules! impl_strategy_range_uint {
    ($($t:ty),*) => {
        $(impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        })*
    };
}
impl_strategy_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_strategy_range_int {
    ($($t:ty as $u:ty),*) => {
        $(impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        })*
    };
}
impl_strategy_range_int!(i8 as u8, i16 as u16, i32 as u32, i64 as u64, isize as usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// Combinator strategies, mirroring upstream's `prop` module.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::ops::Range;

        /// Strategy for `Vec<S::Value>` with a length drawn from a range.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            elem: S,
            len: Range<usize>,
        }

        /// `Vec` strategy: `len` elements of `elem`, `len` drawn from `size`.
        pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
            assert!(size.start < size.end, "empty vec length range");
            VecStrategy { elem, len: size }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = self.len.clone().sample_len(rng);
                (0..n).map(|_| self.elem.sample(rng)).collect()
            }
        }

        trait SampleLen {
            fn sample_len(self, rng: &mut TestRng) -> usize;
        }

        impl SampleLen for Range<usize> {
            fn sample_len(self, rng: &mut TestRng) -> usize {
                <Range<usize> as Strategy>::sample(&self, rng)
            }
        }
    }
}

/// FNV-1a over the test path, giving each property its own base seed.
pub fn seed_for(test_path: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in test_path.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Runs `cases` deterministic cases of a property. Reports the case index
/// and seed on failure, then re-raises the panic.
pub fn run_cases<F: FnMut(&mut TestRng)>(test_path: &str, cases: u32, mut case_fn: F) {
    let base = seed_for(test_path);
    for case in 0..cases {
        let mut rng = TestRng::for_case(base, case);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            case_fn(&mut rng);
        }));
        if let Err(payload) = outcome {
            eprintln!(
                "proptest {test_path}: case {case}/{cases} failed \
                 (base seed {base:#018x}; sampling is deterministic)"
            );
            std::panic::resume_unwind(payload);
        }
    }
}

/// Property assertion; shim-equivalent to `assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Property equality assertion; shim-equivalent to `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Property inequality assertion; shim-equivalent to `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property tests: each `fn name(pat in strategy, ..) { body }`
/// becomes a `#[test]` running the body over sampled cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest! { @with_config ($cfg) $($rest)* }
    };
    (
        @with_config ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($pat:pat_param in $strategy:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let path = concat!(module_path!(), "::", stringify!($name));
                $crate::run_cases(path, config.cases, |rng| {
                    $(let $pat = $crate::Strategy::sample(&($strategy), rng);)*
                    $body
                });
            }
        )*
    };
    ( $($rest:tt)* ) => {
        $crate::proptest! {
            @with_config ($crate::ProptestConfig::default()) $($rest)*
        }
    };
}

/// One-import convenience module, mirroring upstream.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{any, Arbitrary, ProptestConfig, Strategy, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in -5i64..5, f in 0.0f64..0.25) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!((0.0..0.25).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_range(v in prop::collection::vec(0u64..10, 2..9)) {
            prop_assert!((2..9).contains(&v.len()));
            prop_assert!(v.iter().all(|x| *x < 10));
        }

        #[test]
        fn mut_patterns_work(mut v in prop::collection::vec(0u64..100, 1..20)) {
            v.sort_unstable();
            prop_assert!(v.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    proptest! {
        #[test]
        fn default_config_applies(x in any::<u16>()) {
            let _ = x;
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        let mut a = TestRng::for_case(1, 2);
        let mut b = TestRng::for_case(1, 2);
        let s = prop::collection::vec(0u64..1000, 5..50);
        assert_eq!(s.sample(&mut a), s.sample(&mut b));
    }
}
