//! Offline shim for the subset of the `rand` API this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this deterministic replacement. [`rngs::StdRng`] here is an
//! xoshiro256** generator seeded through SplitMix64 — the statistical
//! quality is ample for fault-injection streams and randomized test
//! inputs. The stream differs from upstream `rand`'s `StdRng`, which is
//! fine: every consumer in this workspace treats the stream as an opaque
//! deterministic function of the seed.

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The sampling interface: the subset of `rand::Rng` used here.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A Bernoulli trial with probability `p` of `true`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range [0,1]");
        // 53 uniform mantissa bits, matching upstream's f64 construction.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    /// Uniform sample from a half-open range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// A uniformly random value of a supported primitive type.
    fn gen<T: Standard>(&mut self) -> T {
        T::from_bits(self.next_u64())
    }
}

/// Types sampleable uniformly from all 64 random bits ([`Rng::gen`]).
pub trait Standard {
    /// Builds a value from 64 uniform bits.
    fn from_bits(bits: u64) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {
        $(impl Standard for $t {
            fn from_bits(bits: u64) -> Self {
                bits as $t
            }
        })*
    };
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn from_bits(bits: u64) -> Self {
        bits & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased uniform integer in `[0, span)` by rejection sampling.
fn uniform_below<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {
        $(impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        })*
    };
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty as $u:ty),*) => {
        $(impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        })*
    };
}
impl_sample_range_int!(i8 as u8, i16 as u16, i32 as u32, i64 as u64, isize as usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty gen_range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256** generator (SplitMix64-seeded).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: usize = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w: i64 = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&w));
            let f: f64 = r.gen_range(0.25f64..0.5);
            assert!((0.25..0.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_respects_probability_extremes() {
        let mut r = StdRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits={hits}");
    }
}
