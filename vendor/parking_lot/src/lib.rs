//! Offline shim for the subset of the `parking_lot` API this workspace
//! uses, backed by `std::sync` primitives.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this drop-in replacement instead of the real crate. The shim
//! preserves `parking_lot`'s panic-free guard API (`lock()` / `read()` /
//! `write()` return guards directly, never `Result`s) by treating lock
//! poisoning the way `parking_lot` does: a panic while holding the lock
//! does not poison it for later users.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;

/// A mutual-exclusion lock with `parking_lot`'s non-poisoning API.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: e.into_inner(),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// A reader-writer lock with `parking_lot`'s non-poisoning API.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// RAII guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

/// RAII guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RwLock { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_shared_and_exclusive() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn panic_while_locked_does_not_poison() {
        let m = Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
