//! Offline shim for the subset of the `criterion` API this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this replacement. It keeps the call-site API (`criterion_group!`,
//! `criterion_main!`, `Criterion::benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`) and two behaviors of the real crate:
//!
//! * under `cargo bench` (the harness receives `--bench`) each benchmark is
//!   measured over `sample_size` timed samples and a mean/min/max line is
//!   printed;
//! * under `cargo test` each benchmark body runs exactly once as a smoke
//!   test, so benches stay compiled and correct without slowing the suite.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of the standard black box, matching upstream's `black_box`.
pub use std::hint::black_box;

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    measure: bool,
    samples: usize,
    /// Per-sample wall-clock durations from the last `iter` call.
    last_samples: Vec<Duration>,
}

impl Bencher {
    /// Runs `routine` under the timer (or once, in smoke-test mode).
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        self.last_samples.clear();
        if !self.measure {
            black_box(routine());
            return;
        }
        // One untimed warmup pass.
        black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.last_samples.push(start.elapsed());
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Benchmarks `routine` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Display, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{id}", self.name);
        self.run(&label, |b| routine(b));
        self
    }

    /// Benchmarks `routine` with a borrowed input under `id`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{id}", self.name);
        self.run(&label, |b| routine(b, input));
        self
    }

    fn run(&mut self, label: &str, mut routine: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            measure: self.criterion.measure,
            samples: self.sample_size,
            last_samples: Vec::new(),
        };
        routine(&mut bencher);
        if self.criterion.measure {
            report(label, &bencher.last_samples);
        }
    }

    /// Ends the group (upstream drops internal state; the shim's prints are
    /// immediate, so this is shape-compatibility only).
    pub fn finish(self) {}
}

fn report(label: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{label}: no samples (routine never called iter)");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().expect("non-empty");
    let max = samples.iter().max().expect("non-empty");
    println!(
        "{label}: mean {mean:?} min {min:?} max {max:?} ({} samples)",
        samples.len()
    );
}

/// Benchmark driver, constructed by [`macro@criterion_group`].
pub struct Criterion {
    measure: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench` invokes the harness with `--bench`; `cargo test`
        // runs it bare (smoke-test mode), like upstream criterion.
        let measure = std::env::args().any(|a| a == "--bench");
        Criterion { measure }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            criterion: self,
        }
    }

    /// Benchmarks `routine` directly on the driver.
    pub fn bench_function<F>(&mut self, id: impl Display, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.to_string();
        let mut group = self.benchmark_group(label.clone());
        group.run(&label, |b| routine(b));
        self
    }
}

/// Declares a group function running each listed benchmark.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::new("param", 4), &4u64, |b, &n| {
            b.iter(|| n * 2)
        });
        g.finish();
    }

    #[test]
    fn group_runs_in_smoke_mode() {
        let mut c = Criterion { measure: false };
        sample_bench(&mut c);
    }

    #[test]
    fn group_runs_in_measure_mode() {
        let mut c = Criterion { measure: true };
        sample_bench(&mut c);
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
        assert_eq!(BenchmarkId::from_parameter(0.5).to_string(), "0.5");
    }
}
